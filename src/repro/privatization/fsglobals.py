"""FSglobals: per-rank binary copies on a shared filesystem + dlopen.

Same idea as PIPglobals, but instead of relocating code in memory with
``dlmopen`` namespaces, the PIE binary is *copied on the shared
filesystem* once per virtual rank and each copy is opened with plain
POSIX ``dlopen`` (distinct paths -> distinct link maps -> distinct
segments).

Trade-offs reproduced:

* portable beyond glibc, and no namespace limit — full SMP support;
* startup does per-rank filesystem I/O contended across the whole job,
  so it *grows with node count* (the one method in Figure 5 that does);
* shared objects are unsupported (each dependency would need per-rank
  copies and per-rank search paths);
* **no migration**, for the same loader-mmap reason as PIPglobals.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING

from repro.errors import PrivatizationError, UnsupportedToolchain
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import unpack_funcptr_shim
from repro.machine import MachineModel
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout
    from repro.charm.vrank import VirtualRank


class FsGlobals(PrivatizationMethod):
    name = "fsglobals"
    capabilities = Capabilities(
        method="FSglobals",
        automation="Good",
        portability="Shared file system needed",
        smp_support="Yes",
        migration="No",
        is_runtime_method=True,
    )
    supports_migration = False
    migration_blocker = (
        "cannot intercept the mmap calls made by the system dlopen, so "
        "per-rank code/data segments are not in Isomalloc"
    )
    uses_funcptr_shim = True

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        return base.with_(pie=True)

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if not machine.has_shared_fs:
            raise UnsupportedToolchain(
                "FSglobals needs a shared filesystem visible to all nodes"
            )

    def validate_binary(self, binary: Binary) -> None:
        if not binary.is_pie:
            raise UnsupportedToolchain(
                "FSglobals requires the program to be built as a PIE"
            )
        if binary.image.needed:
            raise PrivatizationError(
                "FSglobals does not support shared-object dependencies "
                f"(binary needs: {', '.join(binary.image.needed)}); each "
                "dependency would require per-rank copies and per-rank "
                "search paths"
            )

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        if env.sharedfs is None:
            raise PrivatizationError("FSglobals requires a SharedFileSystem")
        fs = env.sharedfs
        clk = env.process.startup_clock
        original = f"{env.job_tag}/{binary.name}"
        if not fs.exists(original):
            fs.write_file(original, binary.image.file_size, clk,
                          env.concurrent_procs)

        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            copy_name = f"{original}.vp{rank.vp}"
            fs.copy_file(original, copy_name, clk, env.concurrent_procs)
            # dlopen of a distinct path -> a distinct link map.  Model the
            # path distinction with a renamed (otherwise identical) image.
            per_rank_image = dc_replace(binary.image,
                                        name=f"{binary.name}.vp{rank.vp}")
            t0 = env.loader.clock.now
            lm = env.loader.dlopen(per_rank_image)
            clk.advance(env.loader.clock.now - t0)
            rank.method_data["linkmap"] = lm
            rank.method_data["fs_copy"] = copy_name
            for m in lm.mappings:
                m.owner_rank = rank.vp

            calltable = unpack_funcptr_shim(lm.data, env)

            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            tls_priv = binary.image.tls.instantiate(lm.rodata.end)
            for name in tls_priv.image.var_names():
                routes[name] = AccessRoute(tls_priv, AccessKind.TLS)

            wirings[rank.vp] = RankWiring(
                routes=routes, code=lm.code, tls_instance=tls_priv,
                shim_calltable=calltable,
            )
        return wirings


register("fsglobals", FsGlobals)
