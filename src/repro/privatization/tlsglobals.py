"""TLSglobals: thread-local-storage segment switching.

The user tags mutable globals/statics ``thread_local`` (``__thread`` in
C, OpenMP ``threadprivate`` in Fortran); each rank gets its own TLS
segment copy and the runtime swaps the TLS segment pointer at every ULT
context switch.

Reproduced properties:

* automation is *Mediocre* — any unsafe variable the user forgot to tag
  stays shared and silently produces wrong results (the wiring routes it
  to the shared instance, and the capability probes catch it);
* requires GCC or Clang >= 10 for ``-mno-tls-direct-seg-refs``;
* adds ~10 ns of TLS-pointer work per context switch (Figure 6);
* per-access indirection exists at ``-O0`` but is optimized away at
  ``-O2`` (Figure 7);
* migration works: TLS copies live in the rank's Isomalloc slot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnsupportedToolchain
from repro.machine import MachineModel, Os
from repro.mem.address_space import MapKind
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import clone_instance_private, load_base
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout
    from repro.charm.vrank import VirtualRank


class TlsGlobals(PrivatizationMethod):
    name = "tlsglobals"
    capabilities = Capabilities(
        method="TLSglobals",
        automation="Mediocre",
        portability="Compiler-specific",
        smp_support="Yes",
        migration="Yes",
        is_runtime_method=True,
    )
    supports_migration = True

    def privatizes_var(self, var) -> bool:
        return var.tls

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        return base.with_(tls_seg_refs=True)

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if not machine.toolchain.supports_tls_seg_refs_flag:
            raise UnsupportedToolchain(
                "TLSglobals needs GCC or Clang >= 10 "
                "(-mno-tls-direct-seg-refs); this toolchain is "
                f"{machine.toolchain.compiler}"
            )
        if machine.os not in (Os.LINUX, Os.MACOS):
            raise UnsupportedToolchain(
                f"TLSglobals is implemented on Linux and macOS, not "
                f"{machine.os.value}"
            )

    def context_switch_extra_ns(self, costs) -> int:
        return costs.tls_segment_switch_ns

    def untagged_unsafe_vars(self, binary: Binary) -> list[str]:
        """Mutable globals/statics the user failed to tag (still shared)."""
        return [v.name for v in binary.image.data.vars.values() if v.unsafe]

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        lm = load_base(env, binary)
        tls_initial = binary.image.tls.instantiate(lm.rodata.end)

        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            tls_priv, _ = clone_instance_private(
                env, rank, tls_initial, MapKind.TLS, f"tls:seg[{rank.vp}]"
            )
            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                # Untagged: still the shared copy — the tagging gap.
                routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            for name in tls_priv.image.var_names():
                routes[name] = AccessRoute(tls_priv, AccessKind.TLS)
            wirings[rank.vp] = RankWiring(routes=routes, code=lm.code,
                                          tls_instance=tls_priv)
        return wirings


register("tlsglobals", TlsGlobals)
