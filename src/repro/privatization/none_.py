"""Baseline: no privatization.

Every rank in a process shares one copy of all globals/statics/TLS.
This is the configuration that produces the Figure 2/3 bug ("rank: 1"
printed twice), and the performance baseline every method is compared
against in Figures 5-7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import load_base, route_shared_from_linkmap
from repro.program.binary import Binary

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank


class NoPrivatization(PrivatizationMethod):
    name = "none"
    capabilities = Capabilities(
        method="none (baseline)",
        automation="n/a",
        portability="Good",
        smp_support="Yes",
        migration="Yes",
        handles_globals=False,
        handles_statics=False,
        is_runtime_method=True,
    )
    supports_migration = True

    def privatizes_var(self, var) -> bool:
        return False

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        lm = load_base(env, binary)
        tls_shared = binary.image.tls.instantiate(lm.rodata.end)
        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            routes = route_shared_from_linkmap(lm, tls_shared)
            wirings[rank.vp] = RankWiring(
                routes=routes, code=lm.code, tls_instance=None
            )
        return wirings


register("none", NoPrivatization)
