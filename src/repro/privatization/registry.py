"""Name -> method registry (factories, so each job gets fresh bookkeeping)."""

from __future__ import annotations

from typing import Callable

from repro.errors import PrivatizationError
from repro.privatization.base import PrivatizationMethod

_REGISTRY: dict[str, Callable[[], PrivatizationMethod]] = {}


def register(name: str, factory: Callable[[], PrivatizationMethod]) -> None:
    if name in _REGISTRY:
        raise PrivatizationError(f"method {name!r} already registered")
    _REGISTRY[name] = factory


def get_method(name_or_method: "str | PrivatizationMethod") -> PrivatizationMethod:
    """Resolve a method by name, or pass an instance through."""
    if isinstance(name_or_method, PrivatizationMethod):
        return name_or_method
    try:
        return _REGISTRY[name_or_method]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PrivatizationError(
            f"unknown privatization method {name_or_method!r}; "
            f"known: {known}"
        ) from None


def method_names() -> list[str]:
    return sorted(_REGISTRY)
