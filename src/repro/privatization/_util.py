"""Shared helpers for privatization method implementations."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.elf.loader import LinkMap
from repro.mem.address_space import MapKind, Mapping
from repro.mem.segments import SegmentInstance
from repro.privatization.base import SetupEnv
from repro.program.binary import Binary

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank

#: data-segment variables the AMPI function-pointer shim injects
SHIM_PREFIX = "__ampi_fp_"


def load_base(env: SetupEnv, binary: Binary) -> LinkMap:
    """dlopen the program once per process (refcounted across methods).

    The loader runs on its own clock; the elapsed time is transferred to
    the process startup clock so Figure 5 accounting sees it.
    """
    t0 = env.loader.clock.now
    lm = env.loader.dlopen(binary.image)
    env.process.startup_clock.advance(env.loader.clock.now - t0)
    return lm


def clone_instance_private(
    env: SetupEnv,
    rank: "VirtualRank",
    src: SegmentInstance,
    kind: MapKind,
    tag: str,
) -> tuple[SegmentInstance, Mapping]:
    """Give ``rank`` a private, Isomalloc-backed copy of a segment.

    The copy inherits the *current* values of ``src`` (i.e. after static
    constructors ran), is placed inside the rank's Isomalloc slot (hence
    migratable), and its creation cost (allocation + memcpy) is charged to
    the process startup clock.
    """
    mapping = env.process.isomalloc.alloc(
        rank.vp, max(src.image.size, 8), kind, tag=tag
    )
    inst = src.clone_at(mapping.start)
    mapping.payload = inst
    clk = env.process.startup_clock
    t0 = clk.now
    clk.advance(env.costs.isomalloc_alloc_ns)
    clk.advance(env.costs.memcpy_ns(src.image.size))
    if env.trace is not None:
        env.trace.span(
            f"clone:{kind.value}", "priv", t0, clk.now - t0,
            pid=env.trace_pid, tid=rank.vp,
            args={"nbytes": src.image.size, "tag": tag},
        )
    return inst, mapping


def route_shared_from_linkmap(
    lm: LinkMap, tls_shared: SegmentInstance | None
) -> dict[str, "AccessRoute"]:
    """Routes where every name resolves to the link map's single instances
    (plus an optional shared TLS instance) — the unprivatized layout."""
    from repro.program.context import AccessKind, AccessRoute

    routes: dict[str, AccessRoute] = {}
    for name in lm.data.image.var_names():
        routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
    for name in lm.rodata.image.var_names():
        routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
    if tls_shared is not None:
        for name in tls_shared.image.var_names():
            routes[name] = AccessRoute(tls_shared, AccessKind.TLS)
    return routes


def unpack_funcptr_shim(
    data_instance: SegmentInstance, env: SetupEnv
) -> dict[str, object] | None:
    """Populate the shim's function-pointer slots in one data instance.

    Models ``AMPI_FuncPtr_Unpack`` (Figure 4): the loader utility passes a
    transport struct of pointers into the single runtime; the shim stores
    them in its per-instance globals.  Returns the resulting calltable, or
    None when the binary was not built with the shim.
    """
    transport = env.funcptr_transport
    if transport is None:
        return None
    calltable: dict[str, object] = {}
    found = False
    for api_name, fn in transport.items():
        slot = SHIM_PREFIX + api_name
        if slot in data_instance.image:
            data_instance.write(slot, fn)
            calltable[api_name] = fn
            found = True
    if not found:
        return None
    clk = env.process.startup_clock
    t0 = clk.now
    clk.advance(env.costs.dlsym_ns * 2)
    if env.trace is not None:
        env.trace.span(
            "shim:AMPI_FuncPtr_Unpack", "priv", t0, clk.now - t0,
            pid=env.trace_pid, args={"entries": len(calltable)},
        )
    return calltable
