"""Swapglobals: runtime ELF Global Offset Table switching.

Each rank gets a private copy of every GOT-addressed global variable and
a private GOT whose entries point at those copies; the scheduler swaps
the process's *active GOT* at each context switch.  Documented holes,
all reproduced here:

* **static variables** are local symbols with no GOT entries — they stay
  shared (wrong results if mutable);
* needs **ld <= 2.23 or a patched linker**, otherwise the GOT reference
  at each access is optimized away (enforced at link time);
* **no SMP mode**: only one GOT can be active per OS process, so multiple
  concurrent scheduler threads are impossible;
* x86 + ELF only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SmpUnsupportedError, UnsupportedToolchain
from repro.machine import Arch, MachineModel, Os
from repro.mem.address_space import MapKind
from repro.mem.segments import SegmentImage, SegmentKind
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import load_base
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout
    from repro.charm.vrank import VirtualRank


class Swapglobals(PrivatizationMethod):
    name = "swapglobals"
    capabilities = Capabilities(
        method="Swapglobals",
        automation="No static vars",
        portability="Linker-specific",
        smp_support="No",
        migration="Yes",
        handles_statics=False,
        is_runtime_method=True,
    )
    supports_migration = True

    def privatizes_var(self, var) -> bool:
        # Only GOT-addressed symbols: global, non-TLS, mutable data.
        return var.unsafe and not var.static and not var.tls

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        return base.with_(swapglobals=True)

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if machine.arch is not Arch.X86_64:
            raise UnsupportedToolchain(
                f"swapglobals only works on x86 ELF systems, not "
                f"{machine.arch.value}"
            )
        if machine.os is not Os.LINUX:
            raise UnsupportedToolchain("swapglobals requires an ELF OS")
        if not machine.toolchain.linker_keeps_got_refs:
            raise UnsupportedToolchain(
                "swapglobals needs ld <= 2.23 or a patched newer ld"
            )
        if layout.smp_mode:
            raise SmpUnsupportedError(
                "swapglobals cannot run in SMP mode: only one GOT can be "
                "active per OS process, but SMP mode runs multiple "
                "user-level schedulers per process"
            )

    def context_switch_extra_ns(self, costs) -> int:
        return costs.got_swap_ns

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        lm = load_base(env, binary)
        tls_shared = binary.image.tls.instantiate(lm.rodata.end)

        # Layout of the per-rank privatized storage: only GOT-covered vars.
        got_var_names = [s.symbol for s in binary.image.got if not s.is_func]
        got_vars = [binary.image.data.vars[n] for n in got_var_names]
        priv_image = SegmentImage(SegmentKind.DATA, got_vars)

        wirings: dict[int, RankWiring] = {}
        clk = env.process.startup_clock
        for rank in ranks:
            mapping = env.process.isomalloc.alloc(
                rank.vp, max(priv_image.size, 8), MapKind.DATA,
                tag=f"swap:data[{rank.vp}]",
            )
            priv = priv_image.instantiate(mapping.start)
            for name in got_var_names:
                priv.values[name] = lm.data.read(name)
            mapping.payload = priv
            clk.advance(env.costs.isomalloc_alloc_ns)
            clk.advance(env.costs.memcpy_ns(priv_image.size))

            # Clone + repoint the rank's GOT.
            got = lm.got.clone()
            for name in got_var_names:
                got.resolve(name, priv.addr_of(name))
            clk.advance(env.costs.reloc_ns_per_entry * len(got.template))
            rank.method_data["got"] = got

            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                if name in priv_image:
                    # global: one GOT hop to the rank-private copy
                    routes[name] = AccessRoute(priv, AccessKind.GOT)
                else:
                    # static: NOT in the GOT -> still the shared copy (bug!)
                    routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            for name in tls_shared.image.var_names():
                routes[name] = AccessRoute(tls_shared, AccessKind.TLS)

            wirings[rank.vp] = RankWiring(routes=routes, code=lm.code)
        return wirings


register("swapglobals", Swapglobals)
