"""Common interface for privatization methods.

A method participates at three points in a job's life:

1. **Build time** — it adjusts :class:`~repro.program.compiler.CompileOptions`
   (force PIE, tag TLS, keep GOT refs, ...) and validates toolchain/OS
   requirements.
2. **Startup** — :meth:`PrivatizationMethod.setup_process` runs once per
   OS process; it creates whatever per-rank storage the method uses and
   returns each rank's *wiring*: which segment instance every global name
   routes to, which code segment the rank executes, and its TLS instance.
   All work is charged to the process's startup clock (Figure 5).
3. **Steady state** — a per-context-switch surcharge
   (:meth:`context_switch_extra_ns`, Figure 6) and migration support
   (Figure 8), including any method-specific blockers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import MigrationUnsupportedError
from repro.machine import MachineModel
from repro.mem.segments import CodeInstance, SegmentInstance
from repro.perf.costs import CostModel
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout, OsProcess
    from repro.charm.vrank import VirtualRank
    from repro.elf.loader import DynamicLoader
    from repro.fs.sharedfs import SharedFileSystem


@dataclass(frozen=True)
class Capabilities:
    """Feature-matrix row (Tables 1 and 3)."""

    method: str
    automation: str          #: "Poor" / "Mediocre" / "Good" / "Fortran-specific" / ...
    portability: str
    smp_support: str         #: "Yes" / "No" / "Limited w/o patched glibc"
    migration: str           #: "Yes" / "No" / "Not implemented, but possible" / "Unknown"
    handles_globals: bool = True
    handles_statics: bool = True
    requires_source_changes: bool = False
    is_runtime_method: bool = False


@dataclass
class RankWiring:
    """What setup produced for one rank."""

    routes: dict[str, AccessRoute]
    code: CodeInstance
    tls_instance: SegmentInstance | None = None
    #: MPI entry table from the function-pointer shim (funcptr builds) —
    #: name -> callable into the *single* runtime instance.
    shim_calltable: dict[str, Callable] | None = None


@dataclass
class SetupEnv:
    """Everything a method may touch while setting up one OS process."""

    process: "OsProcess"
    loader: "DynamicLoader"
    machine: MachineModel
    layout: "JobLayout"
    costs: CostModel
    sharedfs: "SharedFileSystem | None" = None
    #: concurrent processes hammering the shared FS at startup (FSglobals)
    concurrent_procs: int = 1
    job_tag: str = "job0"
    optimized: bool = True
    #: the AMPI API transport handed to funcptr shims (one per process;
    #: identical bound methods everywhere == the runtime is NOT privatized)
    funcptr_transport: dict[str, Callable] | None = None
    #: optional :class:`repro.trace.TraceRecorder` (None == tracing off)
    trace: Any = None
    #: pid of this process's startup track in the trace
    trace_pid: int = 0


class PrivatizationMethod(abc.ABC):
    """Base class; subclasses are stateless policy + per-job bookkeeping."""

    name: str = "abstract"
    capabilities: Capabilities
    #: whether the program must be linked against the AMPI function-pointer
    #: shim (Figure 4) because its code is duplicated per rank
    uses_funcptr_shim: bool = False

    # -- build time ---------------------------------------------------------------

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        """Adjust build flags (default: unchanged)."""
        return base

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        """Raise a specific error if this machine/layout cannot run the
        method (portability checks executed, not tabulated)."""

    def validate_binary(self, binary: Binary) -> None:
        """Raise if the build product is unusable with this method."""

    # -- startup --------------------------------------------------------------------

    @abc.abstractmethod
    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        """Materialize per-rank state for every rank in this process."""

    # -- steady state ------------------------------------------------------------------

    def context_switch_extra_ns(self, costs: CostModel) -> int:
        """Extra work at each ULT context switch (on top of the baseline)."""
        return 0

    # -- migration ------------------------------------------------------------------------

    #: whether the method can migrate ranks at all
    supports_migration: bool = True
    #: human-readable reason when it cannot
    migration_blocker: str = ""

    def check_migratable(self, rank: "VirtualRank") -> None:
        if not self.supports_migration:
            raise MigrationUnsupportedError(
                f"{self.name}: {self.migration_blocker or 'migration unsupported'}"
            )

    def migration_discount_bytes(self, rank: "VirtualRank",
                                 dest_process: "OsProcess") -> int:
        """Bytes of the rank's payload that need not cross the wire
        because the destination already holds identical content (e.g.
        deduplicated code segments).  Default: none."""
        return 0

    # -- correctness probe metadata -----------------------------------------------------------

    def privatizes_var(self, var) -> bool:
        """Whether a given VarDef gets a private per-rank copy.

        Used by capability probes; the authoritative answer is what the
        wiring actually routes, this is the method's *claim*.
        """
        return var.unsafe

    # -- misc ------------------------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
