"""Privatization methods — the paper's core contribution surface.

Eight methods are implemented behind one interface
(:class:`~repro.privatization.base.PrivatizationMethod`):

=================  ==========================================================
``none``           baseline: all ranks share globals (the Figure 2/3 bug)
``manual``         manual code refactoring (globals -> per-rank struct)
``photran``        source-to-source refactoring, Fortran only
``swapglobals``    per-rank GOT swapped at context switch (no statics, no SMP)
``tlsglobals``     user-tagged thread_local vars, TLS pointer swapped
``mpc``            ``-fmpc-privatize``: compiler auto-tags everything as TLS
``pipglobals``     dlmopen namespace per rank (glibc limit, no migration)
``fsglobals``      per-rank binary copy on a shared FS + dlopen (no migration)
``pieglobals``     manual PIE code+data copies via Isomalloc (migratable)
=================  ==========================================================
"""

from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import get_method, method_names, register
from repro.privatization.none_ import NoPrivatization
from repro.privatization.manual import ManualRefactoring, Photran
from repro.privatization.swapglobals import Swapglobals
from repro.privatization.tlsglobals import TlsGlobals
from repro.privatization.mpc import MpcPrivatize
from repro.privatization.pipglobals import PipGlobals
from repro.privatization.fsglobals import FsGlobals
from repro.privatization.pieglobals import PieGlobals

__all__ = [
    "Capabilities",
    "PrivatizationMethod",
    "RankWiring",
    "SetupEnv",
    "get_method",
    "method_names",
    "register",
    "NoPrivatization",
    "ManualRefactoring",
    "Photran",
    "Swapglobals",
    "TlsGlobals",
    "MpcPrivatize",
    "PipGlobals",
    "FsGlobals",
    "PieGlobals",
]
