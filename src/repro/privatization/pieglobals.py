"""PIEglobals: manual PIE segment copies through Isomalloc — the paper's
most fully automated *and* migratable method.

Startup, per OS process (once, SMP-safe), then per rank:

1. ``dl_iterate_phdr`` before and after a single ``dlopen`` of the PIE
   locates the freshly mapped code/data segments;
2. each rank receives a contiguous **Isomalloc** allocation holding
   private copies of the code, data, and rodata segments at the original
   relative offsets (PIE data sits right after code, so IP-relative
   global access keeps working in the copy);
3. the rank's GOT and data segment are *scanned* for values that look
   like pointers into the original segments and rebased by the copy
   delta — fast, but vulnerable to false positives (an integer variable
   whose value happens to fall in the range is corrupted; the paper plans
   a more robust scheme, available here as ``robust_scan=True`` which
   rebases only relocation-known slots);
4. heap allocations made by C++ static constructors at ``dlopen`` time are
   replicated into the rank's heap, with interior data pointers and
   function pointers rebased;
5. TLS variables are handled by composing with TLSglobals (per-rank TLS
   segment, pointer swap at context switch).

Because everything a rank owns — code and data copies included — lives in
its Isomalloc slot, dynamic migration works: the slot is copied and
re-installed at identical virtual addresses on the destination.

Extras implemented from the paper:

* ``MPI_Op`` function pointers are stored as *offsets from the rank's
  code base* and rebased against a resident rank when applied on another
  PE; a PE with no resident ranks raises
  :class:`~repro.errors.ReductionOffsetError` (Section 3.3);
* :meth:`PieGlobals.pieglobalsfind` translates a privatized address back
  to the loader's original mapping for debugger symbolication;
* ``share_rodata=True`` is the future-work read-only dedup optimization
  (skips per-rank rodata copies), available for ablation.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    PrivatizationError,
    ReductionOffsetError,
    UnsupportedToolchain,
)
from repro.machine import MachineModel, Os
from repro.mem.address_space import MapKind
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import clone_instance_private, unpack_funcptr_shim
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout, Pe
    from repro.charm.vrank import VirtualRank


@dataclass(frozen=True)
class PieRegion:
    """One rank's privatized image copy (for pieglobalsfind and MPI_Op)."""

    vp: int
    new_base: int
    size: int
    orig_base: int

    def contains(self, addr: int) -> bool:
        return self.new_base <= addr < self.new_base + self.size

    def to_original(self, addr: int) -> int:
        return addr - self.new_base + self.orig_base


@dataclass
class ScanReport:
    """What one data-segment pointer scan did."""

    slots_scanned: int = 0
    segment_pointers_fixed: int = 0
    heap_pointers_fixed: int = 0
    got_entries_fixed: int = 0


class PieGlobals(PrivatizationMethod):
    name = "pieglobals"
    capabilities = Capabilities(
        method="PIEglobals",
        automation="Good",
        portability="Implemented w/ GNU libc extension",
        smp_support="Yes",
        migration="Yes",
        is_runtime_method=True,
    )
    supports_migration = True
    uses_funcptr_shim = True

    def __init__(self, *, share_rodata: bool = False,
                 robust_scan: bool = False,
                 dedup_migration: bool = False,
                 mmap_code_sharing: bool = False):
        self.share_rodata = share_rodata
        self.robust_scan = robust_scan
        #: future-work optimization: code segments are identical across
        #: ranks, so a migration to a process that already hosts another
        #: rank's copy only transfers the data portion
        self.dedup_migration = dedup_migration
        #: future-work optimization (Section 6): per-rank code *mappings*
        #: come from one file descriptor, so the physical pages are
        #: shared — rss and migration wire bytes drop by the code size
        self.mmap_code_sharing = mmap_code_sharing
        self._regions: list[PieRegion] = []
        self.scan_reports: dict[int, ScanReport] = {}
        self._binary_code_bytes: int = 0
        self._code_only_bytes: int = 0

    # -- build time ----------------------------------------------------------

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        opts = base.with_(pie=True)
        # Compose with TLSglobals where the toolchain supports it.
        if machine.toolchain.supports_tls_seg_refs_flag:
            opts = opts.with_(tls_seg_refs=True)
        return opts

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if machine.os is not Os.LINUX:
            raise UnsupportedToolchain(
                "PIEglobals is implemented for GNU/Linux (glibc loader "
                "extensions, stable since 2005); macOS support is future work"
            )
        if not machine.toolchain.has_dl_iterate_phdr:
            raise UnsupportedToolchain(
                "PIEglobals requires dl_iterate_phdr"
            )

    def validate_binary(self, binary: Binary) -> None:
        if not binary.is_pie:
            raise UnsupportedToolchain(
                "PIEglobals requires building with -pieglobals (PIE mode)"
            )

    def context_switch_extra_ns(self, costs) -> int:
        # PIEglobals implies TLSglobals for TLS variables, so it pays the
        # TLS segment-pointer swap at every switch (Figure 6).
        return costs.tls_segment_switch_ns

    # -- startup -----------------------------------------------------------------

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        loader = env.loader
        clk = env.process.startup_clock

        # dl_iterate_phdr diff around a single dlopen finds the segments.
        t0 = loader.clock.now
        before = {(i.name, i.lmid) for i in loader.dl_iterate_phdr()}
        lm = loader.dlopen(binary.image)
        new_infos = [
            i for i in loader.dl_iterate_phdr()
            if (i.name, i.lmid) not in before
        ]
        clk.advance(loader.clock.now - t0)
        if new_infos:
            info = new_infos[0]
            orig_base, orig_end = info.code_start, (
                info.rodata_start + info.rodata_size
            )
        else:
            # Already open (SMP: another PE's setup did it).  Reuse it.
            orig_base, orig_end = lm.segment_span()

        image = binary.image
        copy_span = orig_end - orig_base
        self._binary_code_bytes = image.code.size + image.rodata.size
        self._code_only_bytes = image.code.size
        tls_initial = image.tls.instantiate(lm.rodata.end)

        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            wirings[rank.vp] = self._setup_rank(
                env, binary, rank, lm, orig_base, copy_span, tls_initial
            )
        return wirings

    def _setup_rank(self, env: SetupEnv, binary: Binary,
                    rank: "VirtualRank", lm, orig_base: int,
                    copy_span: int, tls_initial) -> RankWiring:
        image = binary.image
        clk = env.process.startup_clock
        iso = env.process.isomalloc

        # One contiguous allocation preserving the original relative
        # layout (code, then data, then rodata).  With the read-only
        # dedup option the rodata tail is neither copied nor mapped.
        if self.share_rodata:
            alloc_span = lm.rodata.base - orig_base
        else:
            alloc_span = copy_span
        # With mmap code sharing, the code pages of every rank's mapping
        # are file-backed views of one physical copy: virtual size is
        # unchanged, resident bytes exclude the code span, and the code
        # is *mapped* (page tables) rather than memcpy'd.
        rss = (alloc_span - image.code.size if self.mmap_code_sharing
               else None)
        mapping = iso.alloc(
            rank.vp, alloc_span, MapKind.CODE,
            tag=f"pie:image[{rank.vp}]", rss_bytes=rss,
        )
        new_base = mapping.start
        delta = new_base - orig_base

        code_priv = image.code.instantiate(new_base)
        data_priv = lm.data.clone_at(lm.data.base + delta)
        if self.share_rodata:
            rodata_priv = lm.rodata
            copied = alloc_span
        else:
            rodata_priv = lm.rodata.clone_at(lm.rodata.base + delta)
            copied = copy_span
        if self.mmap_code_sharing:
            copied = max(0, copied - image.code.size)
            clk.advance(env.costs.remap_resident_ns(image.code.size))
        mapping.payload = {
            "code": code_priv, "data": data_priv, "rodata": rodata_priv
        }
        t_copy = clk.now
        clk.advance(env.costs.isomalloc_alloc_ns)
        clk.advance(env.costs.memcpy_ns(copied))
        if env.trace is not None:
            env.trace.span(
                "pie:image-copy", "priv", t_copy, clk.now - t_copy,
                pid=env.trace_pid, tid=rank.vp,
                args={"nbytes": copied, "share_rodata": self.share_rodata,
                      "mmap_code_sharing": self.mmap_code_sharing},
            )

        region = PieRegion(vp=rank.vp, new_base=new_base, size=copy_span,
                           orig_base=orig_base)
        self._regions.append(region)

        # Replicate constructor-made heap allocations, then fix pointers.
        t_ctor = clk.now
        heap_map = self._replicate_ctor_allocations(env, rank, lm)
        if env.trace is not None and heap_map:
            env.trace.span(
                "pie:ctor-replicate", "priv", t_ctor, clk.now - t_ctor,
                pid=env.trace_pid, tid=rank.vp,
                args={"allocations": len(heap_map)},
            )
        t_scan = clk.now
        got_priv = lm.got.clone()
        report = self._scan_and_fixup(
            env, binary, rank, data_priv, got_priv, orig_base,
            orig_base + copy_span, delta, heap_map,
        )
        if env.trace is not None:
            env.trace.span(
                "pie:pointer-scan", "priv", t_scan, clk.now - t_scan,
                pid=env.trace_pid, tid=rank.vp,
                args={"slots_scanned": report.slots_scanned,
                      "segment_pointers_fixed": report.segment_pointers_fixed,
                      "heap_pointers_fixed": report.heap_pointers_fixed,
                      "got_entries_fixed": report.got_entries_fixed,
                      "robust_scan": self.robust_scan},
            )
        self.scan_reports[rank.vp] = report
        rank.method_data.update(
            pie_region=region, got=got_priv, orig_base=orig_base
        )

        # TLSglobals composition: per-rank TLS segment.
        tls_priv = None
        if len(image.tls.vars):
            tls_priv, _ = clone_instance_private(
                env, rank, tls_initial, MapKind.TLS, f"pie:tls[{rank.vp}]"
            )

        calltable = unpack_funcptr_shim(data_priv, env)

        routes: dict[str, AccessRoute] = {}
        for name in data_priv.image.var_names():
            routes[name] = AccessRoute(data_priv, AccessKind.DIRECT)
        for name in rodata_priv.image.var_names():
            routes[name] = AccessRoute(rodata_priv, AccessKind.DIRECT)
        if tls_priv is not None:
            for name in tls_priv.image.var_names():
                routes[name] = AccessRoute(tls_priv, AccessKind.TLS)

        return RankWiring(routes=routes, code=code_priv,
                          tls_instance=tls_priv, shim_calltable=calltable)

    def _replicate_ctor_allocations(self, env: SetupEnv,
                                    rank: "VirtualRank", lm) -> dict[int, int]:
        """Copy every dlopen-time constructor allocation into the rank's
        heap; returns old address -> new address."""
        heap_map: dict[int, int] = {}
        if rank.heap is None or not lm.ctor_allocations:
            return heap_map
        clk = env.process.startup_clock
        for alloc in lm.ctor_allocations:
            new = rank.heap.malloc(
                alloc.nbytes,
                data=_copy.deepcopy(alloc.data),
                tag=f"pie-ctor:{alloc.tag}",
            )
            new.ptr_slots = dict(alloc.ptr_slots)
            new.fn_ptr_slots = dict(alloc.fn_ptr_slots)
            heap_map[alloc.addr] = new.addr
            clk.advance(env.costs.memcpy_ns(alloc.nbytes))
        return heap_map

    def _scan_and_fixup(self, env: SetupEnv, binary: Binary,
                        rank: "VirtualRank", data_priv,
                        got_priv, orig_start: int, orig_end: int,
                        delta: int, heap_map: dict[int, int]) -> ScanReport:
        """Rebase pointers into the original image found in the rank's
        private data segment, GOT, and replicated constructor allocations.

        The default mode mirrors the paper: *scan for anything that looks
        like a pointer* into [orig_start, orig_end).  ``robust_scan``
        instead trusts relocation records only (no false positives).
        """
        report = ScanReport()
        clk = env.process.startup_clock
        costs = env.costs

        known_slots: set[str] | None = None
        if self.robust_scan:
            known_slots = set(binary.image.addr_inits)

        scan_ns = costs.pointer_scan_ns_per_slot
        for addr, name, value in data_priv.slots():
            report.slots_scanned += 1
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if known_slots is not None and name not in known_slots:
                continue
            if orig_start <= value < orig_end:
                data_priv.values[name] = value + delta
                report.segment_pointers_fixed += 1
            elif value in heap_map:
                data_priv.values[name] = heap_map[value]
                report.heap_pointers_fixed += 1

        # One batched advance — charging per slot inside the loop summed
        # to the identical simulated time but cost a clock call per slot.
        clk.advance(scan_ns * report.slots_scanned)
        report.got_entries_fixed = got_priv.rebase(orig_start, orig_end, delta)
        clk.advance(scan_ns * len(got_priv.template))

        # Interior pointers of replicated constructor allocations: data
        # pointers may reference the original segments or *other* ctor
        # allocations; function pointers (vtables) reference original code.
        if heap_map and rank.heap is not None:
            for new_addr in heap_map.values():
                alloc = rank.heap.allocations[new_addr]
                for slot, value in list(alloc.ptr_slots.items()):
                    clk.advance(costs.pointer_scan_ns_per_slot)
                    if orig_start <= value < orig_end:
                        alloc.ptr_slots[slot] = value + delta
                        report.heap_pointers_fixed += 1
                    elif value in heap_map:
                        alloc.ptr_slots[slot] = heap_map[value]
                        report.heap_pointers_fixed += 1
                for slot, value in list(alloc.fn_ptr_slots.items()):
                    clk.advance(costs.pointer_scan_ns_per_slot)
                    if orig_start <= value < orig_end:
                        alloc.fn_ptr_slots[slot] = value + delta
                        report.heap_pointers_fixed += 1
        return report

    # -- differential migration (Section 6 future work) ------------------------------

    def migration_discount_bytes(self, rank, dest_process) -> int:
        """Bytes that need not cross the wire on migration.

        * ``mmap_code_sharing``: the code pages are file-backed — the
          destination re-maps them from the same descriptor, always.
        * ``dedup_migration``: code+rodata are skipped whenever the
          destination process already hosts another rank of the same
          binary (identical content is already resident there).
        """
        discount = 0
        if self.mmap_code_sharing:
            discount = self._code_only_bytes
        if self.dedup_migration:
            residents = dest_process.resident_ranks()
            if any(r.vp != rank.vp and "pie_region" in r.method_data
                   for r in residents):
                discount = max(discount, self._binary_code_bytes)
        return discount

    # -- MPI_Op offset translation (Section 3.3) ------------------------------------

    def fnptr_to_offset(self, rank: "VirtualRank", addr: int) -> int:
        region: PieRegion | None = rank.method_data.get("pie_region")
        if region is None or not region.contains(addr):
            raise PrivatizationError(
                f"address {addr:#x} is not in rank {rank.vp}'s code copy"
            )
        return addr - region.new_base

    def offset_to_fnptr(self, pe: "Pe", offset: int) -> int:
        """Rebase a stored op offset against *some* rank resident on ``pe``."""
        rank = pe.any_resident()
        if rank is None:
            raise ReductionOffsetError(
                f"PE {pe.index} has no resident virtual ranks: cannot "
                "rebase a user-defined reduction function offset "
                "(PIEglobals requires at least one rank per PE during "
                "reduction processing)"
            )
        region: PieRegion = rank.method_data["pie_region"]
        return region.new_base + offset

    # -- debugging (Section 3.3, pieglobalsfind) ---------------------------------------

    def pieglobalsfind(self, addr: int) -> tuple[int, int]:
        """Translate a privatized address back to the loader's original
        mapping; returns (original address, owning vp).

        Call from "inside a debugger" to symbolicate backtraces that point
        into a rank's manually copied code segment.
        """
        for region in self._regions:
            if region.contains(addr):
                return region.to_original(addr), region.vp
        raise PrivatizationError(
            f"pieglobalsfind: {addr:#x} is not inside any privatized "
            "code/data copy"
        )


register("pieglobals", PieGlobals)
register("pieglobals-shared-rodata",
         lambda: PieGlobals(share_rodata=True))
register("pieglobals-robust-scan",
         lambda: PieGlobals(robust_scan=True))
register("pieglobals-dedup-migration",
         lambda: PieGlobals(dedup_migration=True))
register("pieglobals-mmap-code",
         lambda: PieGlobals(mmap_code_sharing=True))
