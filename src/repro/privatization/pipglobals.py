"""PIPglobals: dlmopen link-map namespaces, one per virtual rank.

The program is built as a PIE and linked against the AMPI function-
pointer shim.  At startup a loader utility calls glibc's ``dlmopen`` with
a fresh namespace per rank, duplicating the PIE's code and data segments;
``dlsym`` finds ``AMPI_FuncPtr_Unpack`` in each namespace and hands it the
runtime's API pointers, then the entry point is called.  Globals *and*
statics appear privatized with zero context-switch or per-access cost.

Reproduced limitations:

* ~12 namespaces per process on stock glibc
  (:class:`~repro.errors.NamespaceLimitError`), which particularly hurts
  SMP mode; PIP's patched glibc lifts it (``BRIDGES2_PATCHED_GLIBC``);
* GNU/Linux only (``dlmopen`` is not POSIX);
* **no migration**: the segments were mapped by ``ld-linux.so``'s internal
  mmap, which Isomalloc cannot intercept.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnsupportedToolchain
from repro.machine import MachineModel, Os
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import unpack_funcptr_shim
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout
    from repro.charm.vrank import VirtualRank


class PipGlobals(PrivatizationMethod):
    name = "pipglobals"
    capabilities = Capabilities(
        method="PIPglobals",
        automation="Good",
        portability="Requires GNU libc extension",
        smp_support="Limited w/o patched glibc",
        migration="No",
        is_runtime_method=True,
    )
    supports_migration = False
    migration_blocker = (
        "cannot intercept the mmap calls made inside ld-linux.so during "
        "dlmopen, so the per-rank code/data segments are not in Isomalloc"
    )
    uses_funcptr_shim = True

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        return base.with_(pie=True)

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if machine.os is not Os.LINUX or not machine.toolchain.has_dlmopen:
            raise UnsupportedToolchain(
                "PIPglobals requires glibc's dlmopen (GNU/Linux only)"
            )

    def validate_binary(self, binary: Binary) -> None:
        if not binary.is_pie:
            raise UnsupportedToolchain(
                "PIPglobals requires the program to be built as a PIE"
            )

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        wirings: dict[int, RankWiring] = {}
        clk = env.process.startup_clock
        for rank in ranks:
            # One dlmopen per rank; raises NamespaceLimitError past the
            # glibc cap.  Time is charged by the loader onto its clock.
            t0 = env.loader.clock.now
            lm = env.loader.dlmopen(binary.image)
            clk.advance(env.loader.clock.now - t0)
            rank.method_data["linkmap"] = lm
            # Mark the loader-mapped segments as logically belonging to
            # this rank: exactly the mappings migration will choke on.
            for m in lm.mappings:
                m.owner_rank = rank.vp

            calltable = unpack_funcptr_shim(lm.data, env)

            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            tls_priv = binary.image.tls.instantiate(lm.rodata.end)
            for name in tls_priv.image.var_names():
                routes[name] = AccessRoute(tls_priv, AccessKind.TLS)

            wirings[rank.vp] = RankWiring(
                routes=routes, code=lm.code, tls_instance=tls_priv,
                shim_calltable=calltable,
            )
        return wirings


register("pipglobals", PipGlobals)
