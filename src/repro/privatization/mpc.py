"""-fmpc-privatize: compiler-automated TLS variable tagging (MPC).

The compiler treats *every* unsafe global/static as if it were declared
``thread_local`` — full automation, same runtime behaviour as TLSglobals.
Costs: requires the Intel compiler or a patched GCC, requires recompiling
every dependent library from source, and rank migration was never
implemented for MPC (the paper's Table rates it "Not implemented, but
possible").

MPC additionally supports **hierarchical local storage** (HLS,
Section 2.3.5): variables annotated with a coarser level share one copy
per node, or per process/core group, instead of one per ULT — trading
privacy granularity for memory footprint.  Honoured here via
``VarDef.hls_level``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnsupportedToolchain
from repro.machine import MachineModel
from repro.mem.address_space import MapKind
from repro.mem.segments import SegmentImage, SegmentKind
from repro.privatization.base import Capabilities, RankWiring, SetupEnv
from repro.privatization.registry import register
from repro.privatization.tlsglobals import TlsGlobals
from repro.privatization._util import clone_instance_private, load_base
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import JobLayout
    from repro.charm.vrank import VirtualRank


class MpcPrivatize(TlsGlobals):
    name = "mpc"
    capabilities = Capabilities(
        method="-fmpc-privatize",
        automation="Good",
        portability="Compiler-specific",
        smp_support="Yes",
        migration="Not implemented, but possible",
        is_runtime_method=False,
    )
    supports_migration = False
    migration_blocker = (
        "MPC's -fmpc-privatize has no rank-migration implementation "
        "(possible in principle, never built)"
    )

    def privatizes_var(self, var) -> bool:
        # The compiler pass tags everything unsafe, statics included.
        return var.unsafe

    def compile_options(self, base: CompileOptions,
                        machine: MachineModel) -> CompileOptions:
        return base.with_(fmpc_privatize=True)

    def check_supported(self, machine: MachineModel,
                        layout: "JobLayout") -> None:
        if not machine.toolchain.mpc_privatize_support:
            raise UnsupportedToolchain(
                "-fmpc-privatize needs the Intel compiler or a patched GCC"
            )
        # Note: deliberately NOT calling the TLSglobals check — MPC's
        # codegen does not rely on -mno-tls-direct-seg-refs.

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        tls_vars = list(binary.image.tls.vars.values())
        if all(v.hls_level == "rank" for v in tls_vars):
            return super().setup_process(env, binary, ranks)
        return self._setup_with_hls(env, binary, ranks, tls_vars)

    def _setup_with_hls(self, env: SetupEnv, binary: Binary,
                        ranks: list["VirtualRank"], tls_vars
                        ) -> dict[int, RankWiring]:
        """Wire each HLS level to its own storage granularity."""
        lm = load_base(env, binary)
        by_level = {
            level: SegmentImage(
                SegmentKind.TLS,
                [v for v in tls_vars if v.hls_level == level],
            )
            for level in ("rank", "process", "node")
        }
        # One copy per process / per node, created lazily per process.
        proc_inst = by_level["process"].instantiate(0x7E00_0000)
        node_key = f"hls_node_{env.process.node.index}"
        node_inst = self._node_instances.setdefault(
            node_key, by_level["node"].instantiate(0x7E10_0000)
        )
        env.process.startup_clock.advance(
            env.costs.memcpy_ns(by_level["process"].size
                                + by_level["node"].size)
        )

        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            rank_inst, _ = clone_instance_private(
                env, rank, by_level["rank"].instantiate(0),
                MapKind.TLS, f"mpc-hls:rank[{rank.vp}]",
            )
            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                routes[name] = AccessRoute(lm.data, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            for v in tls_vars:
                inst = {"rank": rank_inst, "process": proc_inst,
                        "node": node_inst}[v.hls_level]
                routes[v.name] = AccessRoute(inst, AccessKind.TLS)
            wirings[rank.vp] = RankWiring(routes=routes, code=lm.code,
                                          tls_instance=rank_inst)
        return wirings

    def __init__(self):
        self._node_instances: dict[str, object] = {}

    def hls_footprint_bytes(self, binary: Binary, ranks_per_process: int,
                            processes_per_node: int = 1) -> int:
        """Predicted per-node TLS storage under the HLS levels."""
        per_rank = sum(v.size for v in binary.image.tls.vars.values()
                       if v.hls_level == "rank")
        per_proc = sum(v.size for v in binary.image.tls.vars.values()
                       if v.hls_level == "process")
        per_node = sum(v.size for v in binary.image.tls.vars.values()
                       if v.hls_level == "node")
        return (per_rank * ranks_per_process * processes_per_node
                + per_proc * processes_per_node + per_node)


register("mpc", MpcPrivatize)
