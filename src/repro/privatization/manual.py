"""Manual code refactoring and Photran-style source-to-source refactoring.

Both encapsulate all mutable global/static state into a per-rank
structure (allocated on the rank's heap) and route every former-global
access to it.  The semantic result is full privatization with direct
access cost; the difference is *who does the work*:

* **manual** — a human rewrites the code; automation is Poor, and
  :meth:`ManualRefactoring.refactoring_effort` quantifies the burden the
  paper describes (hundreds of variables in legacy codes).
* **photran** — an automated AST refactoring, but only for Fortran.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PrivatizationError
from repro.mem.address_space import MapKind
from repro.privatization.base import (
    Capabilities,
    PrivatizationMethod,
    RankWiring,
    SetupEnv,
)
from repro.privatization.registry import register
from repro.privatization._util import clone_instance_private, load_base
from repro.program.binary import Binary
from repro.program.context import AccessKind, AccessRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank


class ManualRefactoring(PrivatizationMethod):
    name = "manual"
    capabilities = Capabilities(
        method="Manual refactoring",
        automation="Poor",
        portability="Good",
        smp_support="Yes",
        migration="Yes",
        requires_source_changes=True,
    )
    supports_migration = True

    @staticmethod
    def refactoring_effort(binary: Binary) -> int:
        """Number of declarations a human must move into the state struct."""
        return len(binary.source.unsafe_vars())

    def setup_process(self, env: SetupEnv, binary: Binary,
                      ranks: list["VirtualRank"]) -> dict[int, RankWiring]:
        lm = load_base(env, binary)
        tls_shared = binary.image.tls.instantiate(lm.rodata.end)
        wirings: dict[int, RankWiring] = {}
        for rank in ranks:
            # The refactored program allocates its state struct on the
            # heap at startup; we model it as a private copy of the data
            # and TLS layouts living in the rank's Isomalloc slot.
            data_priv, _ = clone_instance_private(
                env, rank, lm.data, MapKind.DATA, f"manual:struct[{rank.vp}]"
            )
            tls_priv = None
            if len(binary.image.tls.vars):
                tls_priv, _ = clone_instance_private(
                    env, rank, tls_shared, MapKind.DATA,
                    f"manual:tls[{rank.vp}]",
                )
            routes: dict[str, AccessRoute] = {}
            for name in lm.data.image.var_names():
                routes[name] = AccessRoute(data_priv, AccessKind.DIRECT)
            for name in lm.rodata.image.var_names():
                routes[name] = AccessRoute(lm.rodata, AccessKind.DIRECT)
            for name in tls_shared.image.var_names():
                routes[name] = AccessRoute(tls_priv or tls_shared,
                                           AccessKind.DIRECT)
            wirings[rank.vp] = RankWiring(routes=routes, code=lm.code,
                                          tls_instance=tls_priv)
        return wirings


class Photran(ManualRefactoring):
    """Photran's automated refactoring — Fortran codes only."""

    name = "photran"
    capabilities = Capabilities(
        method="Photran",
        automation="Fortran-specific",
        portability="Good",
        smp_support="Yes",
        migration="Yes",
        requires_source_changes=True,
    )

    def validate_binary(self, binary: Binary) -> None:
        if binary.source.language != "fortran":
            raise PrivatizationError(
                f"photran only refactors Fortran sources; "
                f"{binary.source.name!r} is {binary.source.language}"
            )


register("manual", ManualRefactoring)
register("photran", Photran)
