"""Set-associative instruction-cache simulator.

Stands in for the PAPI hardware counters in the paper's Section 4.5
instruction-cache study.  Privatization methods change the *address trace*
of instruction fetches (shared code vs. per-rank duplicated code); this
model turns a fetch trace into hit/miss counts under a given cache
geometry, with true LRU replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.counters import CounterSet, PAPI_L1_ICA, PAPI_L1_ICM


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line description of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                "size must be a multiple of associativity * line size"
            )
        n_sets = self.size_bytes // (self.associativity * self.line_bytes)
        if n_sets & (n_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


class SetAssociativeCache:
    """True-LRU set-associative cache over simulated addresses."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        g = geometry
        self._set_mask = g.n_sets - 1
        self._line_shift = g.line_bytes.bit_length() - 1
        # tags[set, way]; -1 == invalid.  stamp[set, way] for LRU ordering.
        self._tags = np.full((g.n_sets, g.associativity), -1, dtype=np.int64)
        self._stamp = np.zeros((g.n_sets, g.associativity), dtype=np.int64)
        self._tick = 0
        self.counters = CounterSet()

    # -- core ---------------------------------------------------------------

    def access(self, address: int) -> bool:
        """Fetch one address; returns True on hit, False on miss."""
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> 0  # full line number as tag (set bits redundant but harmless)
        self._tick += 1
        self.counters.incr(PAPI_L1_ICA)

        tags = self._tags[set_idx]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._stamp[set_idx, hit_ways[0]] = self._tick
            return True

        self.counters.incr(PAPI_L1_ICM)
        victim = int(np.argmin(self._stamp[set_idx]))
        empties = np.nonzero(tags == -1)[0]
        if empties.size:
            victim = int(empties[0])
        self._tags[set_idx, victim] = tag
        self._stamp[set_idx, victim] = self._tick
        return False

    def access_block(self, start: int, nbytes: int) -> tuple[int, int]:
        """Fetch a contiguous block; returns (hits, misses) over its lines."""
        if nbytes <= 0:
            return (0, 0)
        line_bytes = self.geometry.line_bytes
        first = start - (start % line_bytes)
        hits = misses = 0
        for addr in range(first, start + nbytes, line_bytes):
            if self.access(addr):
                hits += 1
            else:
                misses += 1
        return hits, misses

    def run_trace(self, addresses: "np.ndarray | list[int]") -> tuple[int, int]:
        """Run a whole fetch trace; returns (hits, misses)."""
        hits = misses = 0
        for a in addresses:
            if self.access(int(a)):
                hits += 1
            else:
                misses += 1
        return hits, misses

    # -- reporting ------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.counters[PAPI_L1_ICA]

    @property
    def misses(self) -> int:
        return self.counters[PAPI_L1_ICM]

    @property
    def miss_rate(self) -> float:
        a = self.accesses
        return self.misses / a if a else 0.0

    def reset_counters(self) -> None:
        self.counters.reset()

    def flush(self) -> None:
        """Invalidate all lines (counters preserved)."""
        self._tags.fill(-1)
        self._stamp.fill(0)
