"""Performance-model substrate: simulated clocks, cost models, counters,
and an L1 instruction-cache simulator (the PAPI stand-in)."""

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.perf.counters import CounterSet
from repro.perf.icache import SetAssociativeCache

__all__ = ["SimClock", "CostModel", "CounterSet", "SetAssociativeCache"]
