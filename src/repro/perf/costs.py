"""Runtime cost model.

All constants are nanoseconds (or bytes-per-nanosecond for bandwidths).
They are grouped in one dataclass so that machine presets
(:mod:`repro.machine`) can derive variants and tests can build tiny,
deterministic models.

The defaults are calibrated to the paper's measured magnitudes:

* ULT context switch ~ 100 ns, with every privatization method within
  ~12 ns of the no-privatization baseline (Figure 6);
* startup overhead of the worst new method ~ 9 % over baseline at 8x
  virtualization (Figure 5);
* migration dominated by payload bytes / network bandwidth (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class CostModel:
    """Nanosecond-scale costs charged by the simulated runtime."""

    # --- scheduling / ULTs -------------------------------------------------
    context_switch_ns: int = 100          #: baseline ULT yield->resume, incl. scheduler
    ult_create_ns: int = 2_500            #: allocate + initialize one ULT
    scheduler_poll_ns: int = 40           #: one empty scheduler loop iteration

    # --- privatization hooks ------------------------------------------------
    tls_segment_switch_ns: int = 10       #: swap TLS segment pointer (TLSglobals)
    got_swap_ns: int = 6                  #: swap active GOT (Swapglobals)

    # --- variable access ----------------------------------------------------
    direct_access_ns: int = 1             #: load/store of a direct global
    got_indirect_extra_ns: int = 1        #: extra hop through the GOT
    tls_indirect_extra_ns: int = 2        #: extra hop through the TLS pointer (at -O0)

    # --- toolchain / loader -------------------------------------------------
    dlopen_base_ns: int = 180_000         #: dlopen fixed cost (open, relocate)
    dlmopen_base_ns: int = 260_000        #: dlmopen fixed cost (new namespace)
    dlsym_ns: int = 900                   #: one symbol lookup
    phdr_iterate_ns: int = 3_000          #: one dl_iterate_phdr pass
    map_bandwidth_bpns: float = 24.0      #: loader segment mapping, bytes/ns
    reloc_ns_per_entry: int = 18          #: process one relocation

    # --- memory -------------------------------------------------------------
    page_size: int = 4096
    memcpy_bandwidth_bpns: float = 10.0   #: plain memcpy, bytes/ns
    malloc_ns: int = 90                   #: one heap allocation
    isomalloc_alloc_ns: int = 140         #: Isomalloc allocation (range bookkeeping)
    mmap_ns: int = 1_800                  #: one mmap syscall
    pte_setup_ns_per_page: int = 15       #: map one already-resident page
    pointer_scan_ns_per_slot: int = 1     #: PIEglobals data-segment pointer scan

    # --- AMPI runtime --------------------------------------------------------
    ampi_init_base_ns: int = 60_000_000   #: per-process runtime bring-up (MPI bootstrap included)
    ampi_rank_setup_ns: int = 45_000      #: per-virtual-rank bookkeeping
    msg_overhead_ns: int = 250            #: per-message software overhead
    collective_step_ns: int = 400         #: per tree-step software overhead
    reduction_op_ns: int = 60             #: apply one reduction element batch

    # --- network -------------------------------------------------------------
    net_latency_intra_ns: int = 600       #: same-node, cross-process latency
    net_latency_inter_ns: int = 1_700     #: cross-node latency (IB-class)
    net_bandwidth_intra_bpns: float = 40.0
    net_bandwidth_inter_bpns: float = 24.0  #: ~24 GB/s HDR-class fabric
    eager_threshold_bytes: int = 65_536   #: rendezvous handshake above this
    rendezvous_handshake_ns: int = 2_400

    # --- shared filesystem (FSglobals substrate) -----------------------------
    fs_open_ns: int = 150_000             #: metadata op on the shared FS
    fs_bandwidth_bpns: float = 4.0        #: ~4 GB/s aggregate
    fs_contention_factor: float = 0.35    #: extra per concurrent client, fractional

    # --- migration ------------------------------------------------------------
    migration_pack_ns: int = 25_000       #: fixed pack/unpack + location update

    def copy_with(self, **kw: Any) -> "CostModel":
        """Return a new model with the given fields replaced."""
        return replace(self, **kw)

    # -- derived helpers -----------------------------------------------------

    def memcpy_ns(self, nbytes: int) -> int:
        """Time to copy ``nbytes`` with the machine's memcpy bandwidth."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return int(nbytes / self.memcpy_bandwidth_bpns)

    def map_ns(self, nbytes: int) -> int:
        """Time for the loader to map ``nbytes`` of segments."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return self.mmap_ns + int(nbytes / self.map_bandwidth_bpns)

    def remap_resident_ns(self, nbytes: int) -> int:
        """Map ``nbytes`` of already-resident file pages: page-table
        setup only, no data movement (the mmap code-sharing fast path)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        pages = (nbytes + self.page_size - 1) // self.page_size
        return self.mmap_ns + pages * self.pte_setup_ns_per_page

    def net_transfer_ns(self, nbytes: int, *, inter_node: bool) -> int:
        """Latency + serialization for one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        if inter_node:
            lat, bw = self.net_latency_inter_ns, self.net_bandwidth_inter_bpns
        else:
            lat, bw = self.net_latency_intra_ns, self.net_bandwidth_intra_bpns
        t = lat + int(nbytes / bw)
        if nbytes > self.eager_threshold_bytes:
            t += self.rendezvous_handshake_ns
        return t

    def fs_read_ns(self, nbytes: int, concurrent_clients: int = 1) -> int:
        """Shared-FS read with a simple linear contention model."""
        return self._fs_ns(nbytes, concurrent_clients)

    def fs_write_ns(self, nbytes: int, concurrent_clients: int = 1) -> int:
        """Shared-FS write with a simple linear contention model."""
        return self._fs_ns(nbytes, concurrent_clients)

    def _fs_ns(self, nbytes: int, concurrent_clients: int) -> int:
        if nbytes < 0:
            raise ValueError("negative byte count")
        if concurrent_clients < 1:
            raise ValueError("need at least one client")
        slowdown = 1.0 + self.fs_contention_factor * (concurrent_clients - 1)
        return self.fs_open_ns + int(nbytes / self.fs_bandwidth_bpns * slowdown)


#: A tiny deterministic model for unit tests: every cost is small and round.
TEST_COSTS = CostModel(
    context_switch_ns=10,
    ult_create_ns=10,
    scheduler_poll_ns=1,
    tls_segment_switch_ns=2,
    got_swap_ns=1,
    direct_access_ns=1,
    got_indirect_extra_ns=1,
    tls_indirect_extra_ns=1,
    dlopen_base_ns=100,
    dlmopen_base_ns=100,
    dlsym_ns=1,
    phdr_iterate_ns=1,
    map_bandwidth_bpns=1000.0,
    reloc_ns_per_entry=1,
    memcpy_bandwidth_bpns=1000.0,
    malloc_ns=1,
    isomalloc_alloc_ns=1,
    mmap_ns=1,
    pte_setup_ns_per_page=1,
    pointer_scan_ns_per_slot=1,
    ampi_init_base_ns=1000,
    ampi_rank_setup_ns=10,
    msg_overhead_ns=5,
    collective_step_ns=5,
    reduction_op_ns=1,
    net_latency_intra_ns=10,
    net_latency_inter_ns=50,
    net_bandwidth_intra_bpns=100.0,
    net_bandwidth_inter_bpns=50.0,
    eager_threshold_bytes=1 << 20,
    rendezvous_handshake_ns=10,
    fs_open_ns=100,
    fs_bandwidth_bpns=10.0,
    fs_contention_factor=0.5,
    migration_pack_ns=100,
)
