"""PAPI-style event counters.

The paper uses PAPI to count L1 instruction-cache misses (Section 4.5).
:class:`CounterSet` is the simulator's stand-in: a named bag of integer
event counts that subsystems increment as they run.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

# Canonical event names used across the simulator (PAPI-flavoured).
PAPI_L1_ICM = "PAPI_L1_ICM"   #: L1 instruction-cache misses
PAPI_L1_ICA = "PAPI_L1_ICA"   #: L1 instruction-cache accesses
PAPI_TOT_INS = "PAPI_TOT_INS"  #: instructions (simulated blocks)
EV_CTX_SWITCH = "ULT_CTX_SWITCH"
EV_MSG_SENT = "MSG_SENT"
EV_MSG_BYTES = "MSG_BYTES"
EV_MIGRATIONS = "MIGRATIONS"
EV_MIGRATION_BYTES = "MIGRATION_BYTES"
EV_GLOBAL_READ = "GLOBAL_READ"
EV_GLOBAL_WRITE = "GLOBAL_WRITE"
EV_DLOPEN = "DLOPEN"
EV_DLMOPEN = "DLMOPEN"
EV_FS_BYTES = "FS_BYTES_COPIED"
EV_SHIM_DISPATCH = "SHIM_DISPATCH"  #: MPI calls routed via the funcptr shim
EV_CKPT = "CKPT"                    #: buddy checkpoints taken
EV_CKPT_BYTES = "CKPT_BYTES"        #: bytes captured into buddy checkpoints
EV_FAULT = "FAULTS_INJECTED"        #: injected faults (crashes + messages)
EV_RECOVERY_NS = "RECOVERY_NS"      #: simulated ns spent in crash recovery
EV_MSG_FAULT_DROP = "MSG_FAULT_DROP"
EV_MSG_FAULT_DUP = "MSG_FAULT_DUP"
EV_MSG_FAULT_CORRUPT = "MSG_FAULT_CORRUPT"
EV_RETRANS = "RETRANS"              #: frames retransmitted after an RTO
EV_ACK = "ACKS"                     #: frames acknowledged by a receiver
EV_DEDUP_DROP = "DEDUP_DROPS"       #: duplicate frames dropped by seq window
EV_CKSUM_FAIL = "CHECKSUM_FAIL"     #: frames discarded on checksum mismatch
EV_REORDER_HOLD = "REORDER_HOLDS"   #: frames held for in-order delivery
EV_LOG_BYTES = "LOG_BYTES"          #: payload bytes retained by the msg log
EV_REPLAYED = "REPLAYED_MSGS"       #: messages re-delivered from the msg log
EV_RTO_CANCEL = "RTO_CANCELLED"     #: RTO chains squashed at crash time
EV_CASCADE = "CRASH_DURING_RECOVERY"  #: crashes absorbed mid-recovery
EV_CKPT_FALLBACK = "CKPT_FALLBACK"  #: recoveries served by the previous
                                    #: checkpoint generation (corruption)
EV_SAN_CHECK = "SAN_CHECK"          #: shadow-state checks by the sanitizer
EV_SAN_FINDING = "SAN_FINDING"      #: sanitizer findings emitted (pre-dedup cap)


class CounterSet:
    """A mutable multiset of named event counts.

    Supports addition/merging so that per-rank counters can be rolled up
    into per-PE and job-wide totals.
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: dict[str, int] | None = None):
        self._counts: Counter[str] = Counter(initial or {})

    def incr(self, event: str, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counter increments must be non-negative")
        self._counts[event] += n

    def __getitem__(self, event: str) -> int:
        return self._counts.get(event, 0)

    def __contains__(self, event: str) -> bool:
        return event in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def items(self) -> Iterable[tuple[str, int]]:
        return self._counts.items()

    def merge(self, other: "CounterSet") -> None:
        """Add all of ``other``'s counts into this set."""
        self._counts.update(other._counts)

    def __add__(self, other: "CounterSet") -> "CounterSet":
        out = CounterSet(dict(self._counts))
        out.merge(other)
        return out

    def reset(self) -> None:
        self._counts.clear()

    def total(self) -> int:
        """Sum of all event counts."""
        return sum(self._counts.values())

    def __len__(self) -> int:
        """Number of distinct events recorded."""
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CounterSet):
            return self._counts == other._counts
        return NotImplemented

    def snapshot(self) -> dict[str, int]:
        """An immutable-ish copy for reporting."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({inner})"
