"""Simulated nanosecond clocks.

Every virtual rank (user-level thread) owns a :class:`SimClock`; processing
elements aggregate them.  All figures in the reproduction report *simulated*
time, so the wall-clock cost of running the simulator itself never leaks
into results.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimClock:
    """A monotonically non-decreasing nanosecond counter.

    Parameters
    ----------
    start:
        Initial time in nanoseconds.
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0):
        self.now = int(start)

    def advance(self, ns: int | float) -> int:
        """Advance the clock by ``ns`` nanoseconds and return the new time.

        Negative advances are rejected: simulated time never runs backward.
        """
        ns = int(ns)
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative {ns} ns")
        self.now += ns
        return self.now

    def advance_to(self, t: int | float) -> int:
        """Move the clock forward to at least ``t`` (no-op if already past)."""
        t = int(t)
        if t > self.now:
            self.now = t
        return self.now

    def copy(self) -> "SimClock":
        return SimClock(self.now)

    # -- conversions -------------------------------------------------------

    @property
    def us(self) -> float:
        return self.now / NS_PER_US

    @property
    def ms(self) -> float:
        return self.now / NS_PER_MS

    @property
    def seconds(self) -> float:
        return self.now / NS_PER_S

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.now} ns)"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SimClock):
            return self.now == other.now
        return NotImplemented

    def __lt__(self, other: "SimClock") -> bool:
        return self.now < other.now

    def __hash__(self) -> int:
        return object.__hash__(self)


def fmt_ns(ns: int | float) -> str:
    """Human-readable duration: picks ns/us/ms/s units."""
    ns = float(ns)
    if ns < 1_000:
        return f"{ns:.0f} ns"
    if ns < NS_PER_MS:
        return f"{ns / NS_PER_US:.2f} us"
    if ns < NS_PER_S:
        return f"{ns / NS_PER_MS:.2f} ms"
    return f"{ns / NS_PER_S:.3f} s"
