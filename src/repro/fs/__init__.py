"""Simulated shared filesystem (the FSglobals substrate)."""

from repro.fs.sharedfs import SharedFileSystem, FsFile

__all__ = ["SharedFileSystem", "FsFile"]
