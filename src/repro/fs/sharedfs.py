"""Shared parallel filesystem model.

FSglobals copies the PIE binary once per virtual rank onto a shared
filesystem and ``dlopen``s each copy.  Two properties of real shared
filesystems shape its behaviour in Figure 5:

* every copy costs metadata ops + bytes/bandwidth, so startup grows with
  the *total* number of virtual ranks in the job (unlike the per-process
  constant cost of the other methods); and
* bandwidth is an aggregate, contended resource: concurrent clients (one
  per OS process at startup) slow each other down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SharedFsError
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


@dataclass
class FsFile:
    name: str
    size: int


class SharedFileSystem:
    """A job-wide shared FS: one instance serves every simulated node."""

    def __init__(self, costs: CostModel, capacity_bytes: int = 1 << 44):
        self.costs = costs
        self.capacity_bytes = capacity_bytes
        self._files: dict[str, FsFile] = {}

    # -- queries ---------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def stat(self, name: str) -> FsFile:
        try:
            return self._files[name]
        except KeyError:
            raise SharedFsError(f"no such file: {name}") from None

    def used_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    def file_count(self) -> int:
        return len(self._files)

    # -- operations (all charge time to the caller's clock) ----------------------

    def write_file(
        self, name: str, size: int, clock: SimClock, concurrent_clients: int = 1
    ) -> FsFile:
        if size < 0:
            raise SharedFsError(f"negative file size for {name}")
        old = self._files.get(name)
        freed = old.size if old else 0
        if self.used_bytes() - freed + size > self.capacity_bytes:
            raise SharedFsError(
                f"shared filesystem full: cannot write {size} bytes "
                f"({self.used_bytes()} of {self.capacity_bytes} used)"
            )
        clock.advance(self.costs.fs_write_ns(size, concurrent_clients))
        f = FsFile(name, size)
        self._files[name] = f
        return f

    def copy_file(
        self, src: str, dst: str, clock: SimClock, concurrent_clients: int = 1
    ) -> FsFile:
        """Read src + write dst (the per-rank binary copy in FSglobals)."""
        s = self.stat(src)
        clock.advance(self.costs.fs_read_ns(s.size, concurrent_clients))
        return self.write_file(dst, s.size, clock, concurrent_clients)

    def read_file(
        self, name: str, clock: SimClock, concurrent_clients: int = 1
    ) -> FsFile:
        f = self.stat(name)
        clock.advance(self.costs.fs_read_ns(f.size, concurrent_clients))
        return f

    def unlink(self, name: str, clock: SimClock | None = None) -> None:
        if name not in self._files:
            raise SharedFsError(f"no such file: {name}")
        if clock is not None:
            clock.advance(self.costs.fs_open_ns)
        del self._files[name]

    def cleanup_prefix(self, prefix: str) -> int:
        """Remove all files under a prefix (job teardown); returns count."""
        victims = [n for n in self._files if n.startswith(prefix)]
        for n in victims:
            del self._files[n]
        return len(victims)
