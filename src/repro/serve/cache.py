"""The content-addressed result cache the job service fronts.

A thin, counting layer over :class:`~repro.provenance.ProvenanceStore`:
the cache *is* the store — ``repro serve`` results are ordinary
provenance records, so everything recorded by ``--provenance`` runs,
chaos campaigns, or another server sharing the root is a potential hit,
and everything the service executes is replayable/diffable with the
normal forensics tools.

Keying: ``run_id = sha256(spec.canonical() + "\\n" + code_version)``
(:func:`repro.provenance.record.run_id_for`) — the same spec under
changed sources is a different entry, so a stale binary can never serve
yesterday's timeline.  The code version is digested once at
construction; restart the service after changing sources.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec, code_version
from repro.provenance.record import RunRecord, run_id_for
from repro.provenance.store import ProvenanceStore


class ResultCache:
    """Content-addressed record cache over a provenance store."""

    def __init__(self, store: ProvenanceStore):
        self.store = store
        self.code_version = code_version()
        self.hits = 0
        self.misses = 0

    def key(self, spec: JobSpec) -> str:
        return run_id_for(spec, self.code_version)

    def get(self, run_id: str) -> RunRecord | None:
        """The stored record, or None.  A hit counts as *use* (the
        store refreshes the record's eviction age); a record deleted by
        a concurrent gc between the membership check and the read is a
        miss, not a crash."""
        if run_id not in self.store:
            self.misses += 1
            return None
        try:
            record = self.store.get(run_id)
        except (OSError, ValueError, KeyError, ReproError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, record: RunRecord,
            compressed_timeline: bytes | None = None) -> tuple[str, bool]:
        """File an executed result; append-only (a concurrent identical
        execution that won the race leaves the original untouched)."""
        return self.store.put(record,
                              compressed_timeline=compressed_timeline)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "records": len(self.store),
            "store_bytes": self.store.size_bytes(),
            "store_root": str(self.store.root),
            "code_version": self.code_version,
        }
