"""Clients for the ``repro serve`` job service.

:class:`ServeClient` is synchronous and holds one *persistent*
connection per thread: requests reuse the socket, a dead peer is
detected on EOF and the client transparently reconnects and resends.
The connection is thread-local so one client shared across a thread
pool never interleaves frames — each thread speaks over its own
socket.  Retries are safe by construction — ``run_id`` is content-addressed, so replaying a
submit can only hit the cache or coalesce, never double-execute.
Backoff between attempts uses decorrelated jitter so a thundering herd
of clients re-approaching a restarted server spreads out instead of
stampeding in lockstep.

:class:`AsyncServeClient` is the asyncio twin; it deliberately opens
one connection *per request* so thousands of submissions can be held
open concurrently with ``asyncio.gather`` (a shared connection would
serialize them), with the same retry/backoff envelope.

Both speak :mod:`repro.serve.protocol` and return :class:`SubmitReply`
for the job-shaped verbs.

    >>> with ServeClient(socket_path=".repro/serve.sock") as c:
    ...     r = c.submit(JobSpec(app="hello", nvp=2))
    ...     r.cache, r.run_id[:12]          # 'miss' first, 'hit' after
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec
from repro.provenance.record import RunRecord
from repro.serve import protocol

#: default retry envelope: attempts = retries + 1
DEFAULT_RETRIES = 2
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


class ServeConnectionError(ReproError):
    """The service is unreachable or hung up mid-reply."""


@dataclass
class SubmitReply:
    """One submit/await outcome as the client sees it."""

    ok: bool
    run_id: str | None = None
    #: ``hit`` | ``miss`` | ``coalesced`` | ``inflight`` (wait=False)
    cache: str | None = None
    record: dict[str, Any] | None = None
    error: str | None = None
    #: structured-failure code (``busy``, ``deadline-exceeded``, ...)
    reason: str | None = None
    #: the submission was shed before acceptance; retry is always safe
    retryable: bool = False
    #: position in the request batch (``submit_many`` replies only)
    index: int | None = None
    #: client-side wall seconds for the round trip
    wall_s: float = 0.0

    @property
    def hit(self) -> bool:
        return self.cache == protocol.CACHE_HIT

    def run_record(self) -> RunRecord:
        if self.record is None:
            raise ReproError(f"no record in reply: {self.error or self}")
        return RunRecord.from_dict(self.record)

    @classmethod
    def from_reply(cls, reply: dict[str, Any],
                   wall_s: float = 0.0) -> "SubmitReply":
        return cls(ok=bool(reply.get("ok")),
                   run_id=reply.get("run_id"),
                   cache=reply.get("cache"),
                   record=reply.get("record"),
                   error=reply.get("error"),
                   reason=reply.get("reason"),
                   retryable=bool(reply.get("retryable")),
                   index=reply.get("index"),
                   wall_s=wall_s)


def _spec_dict(spec: JobSpec | dict[str, Any]) -> dict[str, Any]:
    return spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)


class _Backoff:
    """Decorrelated-jitter backoff (`sleep = U(base, prev*3)` capped).
    Each client gets its own RNG so a fleet re-approaching a restarted
    server spreads out instead of retrying in lockstep."""

    def __init__(self, base_s: float = BACKOFF_BASE_S,
                 cap_s: float = BACKOFF_CAP_S):
        self.base_s, self.cap_s = base_s, cap_s
        self._rng = random.Random()  # repro: allow(det-unseeded-random) backoff jitter must differ across clients; never touches simulation state
        self._prev = base_s

    def next_delay(self) -> float:
        self._prev = min(self.cap_s,
                         self._rng.uniform(self.base_s, self._prev * 3))
        return self._prev

    def reset(self) -> None:
        self._prev = self.base_s


class ServeClient:
    """Synchronous client over persistent, self-healing sockets.

    The connection (and its read buffer, and its backoff state) is
    *thread-local*: one client instance shared across a thread pool
    gives each thread its own socket, so concurrent requests never
    interleave frames or steal each other's replies.
    """

    def __init__(self, socket_path: str | Path | None = None, *,
                 host: str | None = None, port: int | None = None,
                 timeout: float | None = None,
                 retries: int = DEFAULT_RETRIES,
                 backoff_base_s: float = BACKOFF_BASE_S,
                 backoff_cap_s: float = BACKOFF_CAP_S):
        if socket_path is None and host is None:
            raise ReproError("need a socket_path or a host/port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host, self.port = host, port
        self.timeout = timeout
        self.retries = retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._local = threading.local()

    # -- per-thread connection state ----------------------------------------

    @property
    def _sock(self) -> socket.socket | None:
        return getattr(self._local, "sock", None)

    @_sock.setter
    def _sock(self, value: socket.socket | None) -> None:
        self._local.sock = value

    @property
    def _buf(self) -> bytes:
        return getattr(self._local, "buf", b"")

    @_buf.setter
    def _buf(self, value: bytes) -> None:
        self._local.buf = value

    @property
    def _backoff(self) -> _Backoff:
        bo = getattr(self._local, "backoff", None)
        if bo is None:
            bo = _Backoff(self._backoff_base_s, self._backoff_cap_s)
            self._local.backoff = bo
        return bo

    # -- transport ----------------------------------------------------------

    def _connect(self) -> None:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port or 0), timeout=self.timeout)
        except OSError as e:
            raise ServeConnectionError(
                f"cannot reach serve at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {e}"
            ) from None
        self._sock = sock
        self._buf = b""

    def close(self) -> None:
        """Close the *calling thread's* connection (other threads'
        sockets close when their thread exits or on their next EOF)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buf = b""

    def _send(self, msg: dict[str, Any]) -> None:
        assert self._sock is not None
        try:
            self._sock.sendall(protocol.encode(msg))
        except OSError as e:
            raise ServeConnectionError(
                f"serve connection lost on send: {e}") from None

    def _read_line(self) -> bytes:
        assert self._sock is not None
        while b"\n" not in self._buf:
            try:
                chunk = self._sock.recv(65536)
            except OSError as e:
                raise ServeConnectionError(
                    f"serve connection lost: {e}") from None
            if not chunk:
                raise ServeConnectionError("serve hung up (EOF)")
            self._buf += chunk
            if len(self._buf) > protocol.MAX_LINE:
                raise protocol.ProtocolError(
                    f"reply exceeds {protocol.MAX_LINE} bytes")
        line, _, self._buf = self._buf.partition(b"\n")
        return line + b"\n"

    def _with_retry(self, exchange: Callable[[], Any]) -> Any:
        """Run one request/reply exchange; on a connection failure,
        reconnect and replay it (idempotent: run ids are content-
        addressed), with decorrelated-jitter backoff between attempts."""
        self._backoff.reset()
        last: ServeConnectionError | None = None
        for attempt in range(self.retries + 1):
            try:
                if self._sock is None:
                    self._connect()
                out = exchange()
                return out
            except ServeConnectionError as e:
                last = e
                self.close()
                if attempt < self.retries:
                    time.sleep(self._backoff.next_delay())  # repro: allow(det-wallclock) client retry pacing against a real server
        assert last is not None
        raise last

    def _request(self, msg: dict[str, Any]) -> dict[str, Any]:
        def exchange() -> dict[str, Any]:
            self._send(msg)
            return protocol.decode(self._read_line())
        return self._with_retry(exchange)

    # -- verbs --------------------------------------------------------------

    def submit(self, spec: JobSpec | dict[str, Any], *,
               wait: bool = True,
               deadline_ms: float | None = None,
               chaos: dict[str, Any] | None = None) -> SubmitReply:
        msg: dict[str, Any] = {"op": protocol.OP_SUBMIT,
                               "spec": _spec_dict(spec), "wait": wait}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        if chaos is not None:
            msg["chaos"] = chaos
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = self._request(msg)
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    def submit_many(self, specs: Sequence[JobSpec | dict[str, Any]], *,
                    wait: bool = True,
                    deadline_ms: float | None = None
                    ) -> list[SubmitReply]:
        """Batch submit: one request, replies streamed back per job.
        Returned list is in *request order* (the wire order is
        completion order; the client reorders by ``index``)."""
        msg: dict[str, Any] = {"op": protocol.OP_SUBMIT_MANY,
                               "specs": [_spec_dict(s) for s in specs],
                               "wait": wait}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        n = len(specs)

        def exchange() -> list[SubmitReply]:
            t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
            self._send(msg)
            out: list[SubmitReply | None] = [None] * n
            while True:
                reply = protocol.decode(self._read_line())
                if reply.get("op") == protocol.OP_SUBMIT_MANY_DONE:
                    break
                wall = time.perf_counter() - t0  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
                sr = SubmitReply.from_reply(reply, wall)
                if isinstance(sr.index, int) and 0 <= sr.index < n:
                    out[sr.index] = sr
            return [r if r is not None
                    else SubmitReply(ok=False, index=i,
                                     error="no reply for this index")
                    for i, r in enumerate(out)]

        return self._with_retry(exchange)

    def await_result(self, run_id: str, *,
                     deadline_ms: float | None = None) -> SubmitReply:
        msg: dict[str, Any] = {"op": protocol.OP_AWAIT, "run_id": run_id}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = self._request(msg)
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    def status(self, run_id: str) -> str:
        reply = self._request({"op": protocol.OP_STATUS, "run_id": run_id})
        return reply.get("state", "unknown")

    def stats(self) -> dict[str, Any]:
        reply = self._request({"op": protocol.OP_STATS})
        if not reply.get("ok"):
            raise ReproError(f"stats failed: {reply.get('error')}")
        return reply["stats"]

    def health(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_HEALTH})

    def ping(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_PING})

    def drain(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_DRAIN})

    def shutdown(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_SHUTDOWN})

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio client; one connection per request, so thousands of
    submissions can be held open concurrently with ``asyncio.gather``.
    Same retry/backoff envelope as :class:`ServeClient`."""

    def __init__(self, socket_path: str | Path | None = None, *,
                 host: str | None = None, port: int | None = None,
                 retries: int = DEFAULT_RETRIES,
                 backoff_base_s: float = BACKOFF_BASE_S,
                 backoff_cap_s: float = BACKOFF_CAP_S):
        if socket_path is None and host is None:
            raise ReproError("need a socket_path or a host/port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host, self.port = host, port
        self.retries = retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s

    async def _open(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        try:
            if self.socket_path is not None:
                return await asyncio.open_unix_connection(
                    self.socket_path, limit=protocol.MAX_LINE)
            return await asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_LINE)
        except OSError as e:
            raise ServeConnectionError(
                f"cannot reach serve at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {e}"
            ) from None

    async def _request_once(self, msg: dict[str, Any]) -> dict[str, Any]:
        reader, writer = await self._open()
        try:
            try:
                await protocol.write_message(writer, msg)
                reply = await protocol.read_message(reader)
            except OSError as e:
                raise ServeConnectionError(
                    f"serve connection lost: {e}") from None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        if reply is None:
            raise ServeConnectionError("serve hung up without a reply")
        return reply

    async def _request(self, msg: dict[str, Any]) -> dict[str, Any]:
        backoff = _Backoff(self._backoff_base_s, self._backoff_cap_s)
        last: ServeConnectionError | None = None
        for attempt in range(self.retries + 1):
            try:
                return await self._request_once(msg)
            except ServeConnectionError as e:
                last = e
                if attempt < self.retries:
                    await asyncio.sleep(backoff.next_delay())
        assert last is not None
        raise last

    async def submit(self, spec: JobSpec | dict[str, Any], *,
                     wait: bool = True,
                     deadline_ms: float | None = None,
                     chaos: dict[str, Any] | None = None) -> SubmitReply:
        msg: dict[str, Any] = {"op": protocol.OP_SUBMIT,
                               "spec": _spec_dict(spec), "wait": wait}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        if chaos is not None:
            msg["chaos"] = chaos
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = await self._request(msg)
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    async def submit_many(self,
                          specs: Sequence[JobSpec | dict[str, Any]], *,
                          wait: bool = True,
                          deadline_ms: float | None = None
                          ) -> list[SubmitReply]:
        """Batch submit over one streaming connection; results are
        reordered into request order before returning."""
        msg: dict[str, Any] = {"op": protocol.OP_SUBMIT_MANY,
                               "specs": [_spec_dict(s) for s in specs],
                               "wait": wait}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        n = len(specs)
        backoff = _Backoff(self._backoff_base_s, self._backoff_cap_s)
        last: ServeConnectionError | None = None
        for attempt in range(self.retries + 1):
            try:
                return await self._submit_many_once(msg, n)
            except ServeConnectionError as e:
                last = e
                if attempt < self.retries:
                    await asyncio.sleep(backoff.next_delay())
        assert last is not None
        raise last

    async def _submit_many_once(self, msg: dict[str, Any],
                                n: int) -> list[SubmitReply]:
        reader, writer = await self._open()
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        out: list[SubmitReply | None] = [None] * n
        try:
            try:
                await protocol.write_message(writer, msg)
                while True:
                    reply = await protocol.read_message(reader)
                    if reply is None:
                        raise ServeConnectionError(
                            "serve hung up mid-stream")
                    if reply.get("op") == protocol.OP_SUBMIT_MANY_DONE:
                        break
                    wall = time.perf_counter() - t0  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
                    sr = SubmitReply.from_reply(reply, wall)
                    if isinstance(sr.index, int) and 0 <= sr.index < n:
                        out[sr.index] = sr
            except OSError as e:
                raise ServeConnectionError(
                    f"serve connection lost: {e}") from None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        return [r if r is not None
                else SubmitReply(ok=False, index=i,
                                 error="no reply for this index")
                for i, r in enumerate(out)]

    async def await_result(self, run_id: str, *,
                           deadline_ms: float | None = None
                           ) -> SubmitReply:
        msg: dict[str, Any] = {"op": protocol.OP_AWAIT, "run_id": run_id}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        reply = await self._request(msg)
        return SubmitReply.from_reply(reply)

    async def status(self, run_id: str) -> str:
        reply = await self._request({"op": protocol.OP_STATUS,
                                     "run_id": run_id})
        return reply.get("state", "unknown")

    async def stats(self) -> dict[str, Any]:
        reply = await self._request({"op": protocol.OP_STATS})
        if not reply.get("ok"):
            raise ReproError(f"stats failed: {reply.get('error')}")
        return reply["stats"]

    async def health(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_HEALTH})

    async def ping(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_PING})

    async def drain(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_DRAIN})

    async def shutdown(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_SHUTDOWN})
