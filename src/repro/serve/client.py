"""Clients for the ``repro serve`` job service.

:class:`ServeClient` is synchronous (plain sockets, one connection per
request — cheap over Unix sockets and it keeps every call independent);
:class:`AsyncServeClient` is the asyncio twin for callers that want to
hold thousands of submissions open concurrently.  Both speak
:mod:`repro.serve.protocol` and return :class:`SubmitReply` for the
job-shaped verbs.

    >>> with ServeClient(socket_path=".repro/serve.sock") as c:
    ...     r = c.submit(JobSpec(app="hello", nvp=2))
    ...     r.cache, r.run_id[:12]          # 'miss' first, 'hit' after
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec
from repro.provenance.record import RunRecord
from repro.serve import protocol


class ServeConnectionError(ReproError):
    """The service is unreachable or hung up mid-reply."""


@dataclass
class SubmitReply:
    """One submit/await outcome as the client sees it."""

    ok: bool
    run_id: str | None = None
    #: ``hit`` | ``miss`` | ``coalesced`` | ``inflight`` (wait=False)
    cache: str | None = None
    record: dict[str, Any] | None = None
    error: str | None = None
    #: client-side wall seconds for the round trip
    wall_s: float = 0.0

    @property
    def hit(self) -> bool:
        return self.cache == protocol.CACHE_HIT

    def run_record(self) -> RunRecord:
        if self.record is None:
            raise ReproError(f"no record in reply: {self.error or self}")
        return RunRecord.from_dict(self.record)

    @classmethod
    def from_reply(cls, reply: dict[str, Any],
                   wall_s: float = 0.0) -> "SubmitReply":
        return cls(ok=bool(reply.get("ok")),
                   run_id=reply.get("run_id"),
                   cache=reply.get("cache"),
                   record=reply.get("record"),
                   error=reply.get("error"),
                   wall_s=wall_s)


def _spec_dict(spec: JobSpec | dict[str, Any]) -> dict[str, Any]:
    return spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)


class ServeClient:
    """Synchronous client; one connection per request."""

    def __init__(self, socket_path: str | Path | None = None, *,
                 host: str | None = None, port: int | None = None,
                 timeout: float | None = None):
        if socket_path is None and host is None:
            raise ReproError("need a socket_path or a host/port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host, self.port = host, port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, msg: dict[str, Any]) -> dict[str, Any]:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port or 0), timeout=self.timeout)
        except OSError as e:
            raise ServeConnectionError(
                f"cannot reach serve at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {e}"
            ) from None
        try:
            sock.sendall(protocol.encode(msg))
            chunks = []
            total = 0
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                total += len(chunk)
                if chunk.endswith(b"\n"):
                    break
                if total > protocol.MAX_LINE:
                    raise protocol.ProtocolError(
                        f"reply exceeds {protocol.MAX_LINE} bytes")
        except OSError as e:
            raise ServeConnectionError(f"serve connection lost: {e}") \
                from None
        finally:
            sock.close()
        line = b"".join(chunks)
        if not line:
            raise ServeConnectionError("serve hung up without a reply")
        return protocol.decode(line)

    # -- verbs --------------------------------------------------------------

    def submit(self, spec: JobSpec | dict[str, Any], *,
               wait: bool = True) -> SubmitReply:
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = self._request({"op": protocol.OP_SUBMIT,
                               "spec": _spec_dict(spec), "wait": wait})
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    def await_result(self, run_id: str) -> SubmitReply:
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = self._request({"op": protocol.OP_AWAIT, "run_id": run_id})
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    def status(self, run_id: str) -> str:
        reply = self._request({"op": protocol.OP_STATUS, "run_id": run_id})
        return reply.get("state", "unknown")

    def stats(self) -> dict[str, Any]:
        reply = self._request({"op": protocol.OP_STATS})
        if not reply.get("ok"):
            raise ReproError(f"stats failed: {reply.get('error')}")
        return reply["stats"]

    def ping(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_PING})

    def shutdown(self) -> dict[str, Any]:
        return self._request({"op": protocol.OP_SHUTDOWN})

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


class AsyncServeClient:
    """Asyncio client; one connection per request, so thousands of
    submissions can be held open concurrently with ``asyncio.gather``."""

    def __init__(self, socket_path: str | Path | None = None, *,
                 host: str | None = None, port: int | None = None):
        if socket_path is None and host is None:
            raise ReproError("need a socket_path or a host/port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host, self.port = host, port

    async def _request(self, msg: dict[str, Any]) -> dict[str, Any]:
        try:
            if self.socket_path is not None:
                reader, writer = await asyncio.open_unix_connection(
                    self.socket_path, limit=protocol.MAX_LINE)
            else:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=protocol.MAX_LINE)
        except OSError as e:
            raise ServeConnectionError(
                f"cannot reach serve at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {e}"
            ) from None
        try:
            await protocol.write_message(writer, msg)
            reply = await protocol.read_message(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        if reply is None:
            raise ServeConnectionError("serve hung up without a reply")
        return reply

    async def submit(self, spec: JobSpec | dict[str, Any], *,
                     wait: bool = True) -> SubmitReply:
        t0 = time.perf_counter()  # repro: allow(det-wallclock) client-observed host latency, reported not simulated
        reply = await self._request({"op": protocol.OP_SUBMIT,
                                     "spec": _spec_dict(spec),
                                     "wait": wait})
        return SubmitReply.from_reply(reply, time.perf_counter() - t0)  # repro: allow(det-wallclock) client-observed host latency, reported not simulated

    async def await_result(self, run_id: str) -> SubmitReply:
        reply = await self._request({"op": protocol.OP_AWAIT,
                                     "run_id": run_id})
        return SubmitReply.from_reply(reply)

    async def status(self, run_id: str) -> str:
        reply = await self._request({"op": protocol.OP_STATUS,
                                     "run_id": run_id})
        return reply.get("state", "unknown")

    async def stats(self) -> dict[str, Any]:
        reply = await self._request({"op": protocol.OP_STATS})
        if not reply.get("ok"):
            raise ReproError(f"stats failed: {reply.get('error')}")
        return reply["stats"]

    async def ping(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_PING})

    async def shutdown(self) -> dict[str, Any]:
        return await self._request({"op": protocol.OP_SHUTDOWN})
