"""The multiprocess worker pool that executes submitted specs.

The doeff-style runtime split: the service edge is real-async
(:mod:`repro.serve.server` on asyncio), while every job runs entirely
in *simulated* time inside a worker.  Workers are OS processes
(``mode="process"``, the default) so N jobs really execute in parallel
and a crashing simulation cannot take the front-end down; each worker
runs one job at a time, start to finish — the simulator's process-wide
state (pooled ULT backend, loader namespaces) is never shared between
concurrently running jobs.

Crash resilience (the serving-layer contract: every submitted future
*resolves*, to a result or a structured failure — never hangs):

- Each worker has a private inbox and at most one assigned task, so
  the parent always knows exactly which job a dead worker was holding.
- A worker that dies mid-job (segfault, OOM kill, operator SIGKILL) is
  replaced by a fresh process (same slot, fresh inbox — no stale
  message can reach the replacement) and its job is *retried*, up to
  ``retries`` times.
- A job that keeps killing workers is **quarantined**: its future
  resolves to a structured ``poison-job`` failure
  (``unrecoverable_reason="poison-job"``) instead of grinding the pool
  down worker by worker.
- When every worker is dead and the respawn budget is spent (e.g. the
  spawn bootstrap cannot re-import the host program), all pending
  futures fail with a typed ``pool-dead`` reply — a hung client is
  worse than an error.
- A queued task whose deadline has already passed is dropped at
  dispatch with a ``deadline-exceeded`` failure instead of wasting a
  worker on a result nobody is waiting for.

Workers execute through :func:`repro.harness.jobspec.run_spec_job`
under an *exclusive* :func:`~repro.harness.jobspec.result_hook_scope`,
so recording is explicit per job — a process-global ``--provenance``
auto-recorder in the host process can never double-record (or
cross-record) service jobs.  ``strict=False``: a deterministic
unrecoverable run is a *result* (with ``unrecoverable_reason`` set),
and results are cacheable.

``mode="thread"`` trades parallelism for startup cost: workers are
threads in the current process, execution is serialized by a
process-wide lock (the simulator's state is not reentrant — the lock
is module-level so even two pools in one process never interleave) and
forced onto the thread-per-ULT backend.  Threads cannot be killed, so
the crash-retry machinery is process-mode only; deadlines are honored
in both modes.

Chaos hook: a task may carry ``chaos={"kill_worker_attempts": N}``
(injected via the server's ``enable_chaos`` flag, never from specs) —
a process worker then ``os._exit``\\ s on its first N delivery
attempts, which is how the service fault campaign provokes real
worker crashes deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.harness.jobspec import JobSpec, result_hook_scope, run_spec_job
from repro.provenance.record import RunRecord
from repro.trace.stream import compress_timeline

#: exit status a worker uses when the chaos kill hook fires
CHAOS_EXIT = 86

#: simulator state is process-wide; thread-mode pools in one process
#: must never run two jobs at once, even across pool instances
_THREAD_EXEC_LOCK = threading.Lock()


def execute_spec(spec_dict: dict[str, Any], *,
                 ult_backend: str | None = None) -> dict[str, Any]:
    """Run one spec dict to completion; never raises.

    Returns ``{"record": RunRecord.to_dict(), "timeline_z": bytes,
    "error": None}`` on success (including structured-unrecoverable
    runs), or ``{"record": None, "timeline_z": None, "error": str}``
    when the job cannot be built or dies unstructured.
    """
    runtime: dict[str, Any] = {"strict": False}
    if ult_backend is not None:
        runtime["ult_backend"] = ult_backend
    try:
        spec = JobSpec.from_dict(dict(spec_dict))
        with result_hook_scope(exclusive=True):
            job, result = run_spec_job(spec, **runtime)
        record = RunRecord.from_run(spec, job, result)
        return {"record": record.to_dict(),
                "timeline_z": compress_timeline(job.scheduler.timeline),
                "error": None}
    except Exception as e:
        return {"record": None, "timeline_z": None,
                "error": f"{type(e).__name__}: {e}"}


def _deadline_reply(deadline_ts: float) -> dict[str, Any]:
    return {"record": None, "timeline_z": None,
            "error": "deadline exceeded before execution started",
            "unrecoverable_reason": "deadline-exceeded",
            "reason": "deadline-exceeded",
            "deadline_ts": deadline_ts}


def _worker_main(wid: int, inbox: Any, results: Any) -> None:
    """Process-mode worker loop: drain the inbox until the sentinel.

    Each item is ``(task_id, spec_dict, attempt, chaos)``; the chaos
    kill hook terminates the process abruptly (``os._exit``) to model a
    segfaulting/OOM-killed worker — no cleanup, no reply.

    The idle loop polls so an orphaned worker notices its parent died
    (SIGKILLed server: workers are reparented to init) and exits
    instead of blocking on the inbox forever — a leaked worker holds
    inherited pipes open, which can hang the parent's own parent (CI
    steps, shells) waiting for EOF.
    """
    parent = os.getppid()
    while True:
        try:
            item = inbox.get(timeout=2.0)
        except queue.Empty:
            if os.getppid() != parent:
                os._exit(0)
            continue
        if item is None:
            return
        task_id, spec_dict, attempt, chaos = item
        if chaos and attempt <= int(chaos.get("kill_worker_attempts", 0)):
            os._exit(CHAOS_EXIT)
        results.put((wid, task_id, execute_spec(spec_dict)))


@dataclass
class _Task:
    """One submission's pool-side state."""

    task_id: int
    spec_dict: dict[str, Any]
    fut: Future
    deadline_ts: float | None = None
    chaos: dict[str, Any] | None = None
    attempts: int = 0       #: dispatches so far (== worker deaths + 1)


@dataclass
class _Slot:
    """One worker slot (process mode); the process is replaceable."""

    wid: int
    proc: Any = None
    inbox: Any = None
    task_id: int | None = None
    dead: bool = False

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None


@dataclass
class PoolStats:
    """Lifetime resilience counters, surfaced through ``stats``."""

    retries: int = 0        #: jobs re-dispatched after a worker death
    quarantined: int = 0    #: jobs resolved as poison after max retries
    respawns: int = 0       #: replacement workers spawned
    deadline_drops: int = 0  #: queued jobs dropped past their deadline

    def to_dict(self) -> dict[str, int]:
        return {"retries": self.retries, "quarantined": self.quarantined,
                "respawns": self.respawns,
                "deadline_drops": self.deadline_drops}


class WorkerPool:
    """Fixed pool of spec executors with a Future-based submit API.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving
    to :func:`execute_spec`'s reply dict — the asyncio server wraps it
    with :func:`asyncio.wrap_future`.  Thread-safe.  ``retries`` is the
    number of *re*-dispatches a job gets after killing a worker before
    it is quarantined; ``max_respawns`` bounds replacement workers over
    the pool's lifetime (budget spent + all workers dead = pool-dead).
    """

    def __init__(self, workers: int = 2, *, mode: str = "process",
                 mp_context: str = "spawn", retries: int = 2,
                 max_respawns: int | None = None):
        if workers < 1:
            raise ValueError("need at least one worker")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.workers = workers
        self.mode = mode
        self.retries = retries
        self.max_respawns = (workers * 8 if max_respawns is None
                             else max_respawns)
        self.stats = PoolStats()
        self._seq = 0
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tasks: dict[int, _Task] = {}
        self._backlog: queue.Queue = queue.Queue()
        self._closed = False
        self._pool_dead = False
        if mode == "process":
            self._ctx = multiprocessing.get_context(mp_context)
            self._results = self._ctx.Queue()
            self._slots = [_Slot(wid=i) for i in range(workers)]
            self._idle: list[int] = []
            for slot in self._slots:
                self._spawn(slot, respawn=False)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-pool-dispatch",
                daemon=True)
            self._dispatcher.start()
            self._reader = threading.Thread(
                target=self._drain_results, name="serve-pool-reader",
                daemon=True)
            self._reader.start()
            self._monitor = threading.Thread(
                target=self._watch_workers, name="serve-pool-monitor",
                daemon=True)
            self._monitor.start()
        else:
            self._slots = []
            self._threads = [
                threading.Thread(target=self._thread_worker,
                                 name=f"serve-worker-{i}", daemon=True)
                for i in range(workers)
            ]
            for t in self._threads:
                t.start()

    # -- introspection ------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Unresolved tasks (queued + executing)."""
        with self._lock:
            return len(self._tasks)

    @property
    def dead(self) -> bool:
        """True once every worker died and the respawn budget is spent."""
        return self._pool_dead

    def alive_workers(self) -> int:
        if self.mode == "thread":
            return sum(1 for t in self._threads if t.is_alive())
        with self._lock:
            return sum(1 for s in self._slots
                       if s.proc is not None and s.proc.is_alive())

    def worker_pids(self) -> list[int]:
        """Live worker pids (empty in thread mode) — lets operators and
        the chaos campaign aim kill signals at real workers."""
        if self.mode == "thread":
            return []
        with self._lock:
            return [s.pid for s in self._slots
                    if s.proc is not None and s.proc.is_alive()
                    and s.pid is not None]

    def pool_stats(self) -> dict[str, Any]:
        return {"mode": self.mode, "workers": self.workers,
                "workers_alive": self.alive_workers(),
                "backlog": self.backlog, "dead": self.dead,
                "retries_allowed": self.retries,
                **self.stats.to_dict()}

    # -- submission ---------------------------------------------------------

    def submit(self, spec_dict: dict[str, Any], *,
               deadline_ts: float | None = None,
               chaos: dict[str, Any] | None = None) -> Future:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        fut: Future = Future()
        if self._pool_dead:
            fut.set_result(_pool_dead_reply())
            return fut
        with self._lock:
            self._seq += 1
            task = _Task(task_id=self._seq, spec_dict=spec_dict, fut=fut,
                         deadline_ts=deadline_ts, chaos=chaos)
            self._tasks[task.task_id] = task
        self._backlog.put(task.task_id)
        return fut

    def _resolve(self, task_id: int, out: dict[str, Any]) -> None:
        with self._lock:
            task = self._tasks.pop(task_id, None)
        if task is not None and not task.fut.done():
            task.fut.set_result(out)

    # -- process mode: dispatch / results / supervision ---------------------

    def _spawn(self, slot: _Slot, *, respawn: bool) -> None:
        """(Re)populate a slot with a fresh process and a fresh inbox —
        a stale message queued for a dead worker can never leak to its
        replacement."""
        slot.inbox = self._ctx.Queue()
        slot.proc = self._ctx.Process(
            target=_worker_main,
            args=(slot.wid, slot.inbox, self._results), daemon=True)
        slot.proc.start()
        slot.dead = False
        if respawn:
            self.stats.respawns += 1
        with self._lock:
            if slot.wid not in self._idle:
                self._idle.append(slot.wid)
            self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        while True:
            item = self._backlog.get()
            if item is None:
                return
            with self._lock:
                task = self._tasks.get(item)
            if task is None:
                continue            # resolved while queued
            if (task.deadline_ts is not None
                    and time.time() > task.deadline_ts):  # repro: allow(det-wallclock) client deadlines are host wall-clock by definition
                self.stats.deadline_drops += 1
                self._resolve(task.task_id,
                              _deadline_reply(task.deadline_ts))
                continue
            with self._cond:
                while not self._idle and not self._closed \
                        and not self._pool_dead:
                    self._cond.wait(timeout=0.5)
                if self._closed or self._pool_dead:
                    return
                wid = self._idle.pop()
                slot = self._slots[wid]
                slot.task_id = task.task_id
                task.attempts += 1
                attempt = task.attempts
            slot.inbox.put((task.task_id, task.spec_dict, attempt,
                            task.chaos))

    def _drain_results(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                return
            wid, task_id, out = item
            with self._cond:
                slot = self._slots[wid]
                if slot.task_id == task_id:
                    slot.task_id = None
                    if not slot.dead and wid not in self._idle:
                        self._idle.append(wid)
                        self._cond.notify_all()
            self._resolve(task_id, out)

    def _watch_workers(self) -> None:
        """Supervisor: reap dead workers, retry or quarantine their
        jobs, respawn replacements, and declare the pool dead (failing
        every pending future with a typed reply) when nothing is left."""
        while not self._closed and not self._pool_dead:
            for slot in self._slots:
                if (slot.proc is not None and not slot.dead
                        and not slot.proc.is_alive()):
                    self._handle_worker_death(slot)
            self._check_pool_dead()
            time.sleep(0.2)  # repro: allow(det-wallclock) supervisor poll interval, host-side

    def _handle_worker_death(self, slot: _Slot) -> None:
        with self._cond:
            slot.dead = True
            if slot.wid in self._idle:
                self._idle.remove(slot.wid)
            task_id = slot.task_id
            slot.task_id = None
            task = self._tasks.get(task_id) if task_id is not None else None
        try:
            slot.proc.join(timeout=1.0)
        except Exception:
            pass
        if task is not None and not task.fut.done():
            if task.attempts > self.retries:
                self.stats.quarantined += 1
                self._resolve(task.task_id, {
                    "record": None, "timeline_z": None,
                    "error": (f"poison job: killed {task.attempts} "
                              f"worker(s); quarantined"),
                    "unrecoverable_reason": "poison-job",
                    "reason": "poison-job",
                    "attempts": task.attempts})
            else:
                self.stats.retries += 1
                self._backlog.put(task.task_id)
        if not self._closed and self.stats.respawns < self.max_respawns:
            self._spawn(slot, respawn=True)

    def _check_pool_dead(self) -> None:
        with self._lock:
            alive = any(s.proc is not None and s.proc.is_alive()
                        for s in self._slots)
            if alive or self._closed:
                return
            if self.stats.respawns < self.max_respawns:
                return              # replacements still possible
            self._pool_dead = True
            pending = list(self._tasks.values())
            self._tasks.clear()
            self._cond.notify_all()
        for task in pending:
            if not task.fut.done():
                task.fut.set_result(_pool_dead_reply())

    # -- thread mode --------------------------------------------------------

    def _thread_worker(self) -> None:
        while True:
            item = self._backlog.get()
            if item is None:
                return
            with self._lock:
                task = self._tasks.get(item)
            if task is None:
                continue
            if (task.deadline_ts is not None
                    and time.time() > task.deadline_ts):  # repro: allow(det-wallclock) client deadlines are host wall-clock by definition
                self.stats.deadline_drops += 1
                self._resolve(task.task_id,
                              _deadline_reply(task.deadline_ts))
                continue
            with _THREAD_EXEC_LOCK:
                out = execute_spec(task.spec_dict, ult_backend="thread")
            self._resolve(task.task_id, out)

    # -- teardown -----------------------------------------------------------

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop accepting work and reap the workers.  Futures still
        pending afterwards resolve to a structured pool-closed error
        (the server drains in-flight jobs before closing, so in
        practice there are none)."""
        if self._closed:
            return
        self._closed = True
        self._backlog.put(None)     # dispatcher / thread workers exit
        if self.mode == "process":
            with self._cond:
                self._cond.notify_all()
            for slot in self._slots:
                if slot.inbox is not None:
                    try:
                        slot.inbox.put(None)
                    except (OSError, ValueError):
                        pass
            for slot in self._slots:
                if slot.proc is None:
                    continue
                slot.proc.join(timeout=timeout)
                if slot.proc.is_alive():
                    slot.proc.terminate()
                    slot.proc.join(timeout=1.0)
            self._results.put(None)
            self._reader.join(timeout=timeout)
        else:
            for _ in range(self.workers - 1):
                self._backlog.put(None)
            for t in self._threads:
                t.join(timeout=timeout)
        with self._lock:
            pending = list(self._tasks.values())
            self._tasks.clear()
        for task in pending:
            if not task.fut.done():
                task.fut.set_result({"record": None, "timeline_z": None,
                                     "error": "worker pool closed"})

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _pool_dead_reply() -> dict[str, Any]:
    return {"record": None, "timeline_z": None,
            "error": "all pool workers died and the respawn budget "
                     "is spent",
            "unrecoverable_reason": "pool-dead",
            "reason": "pool-dead"}
