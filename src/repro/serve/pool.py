"""The multiprocess worker pool that executes submitted specs.

The doeff-style runtime split: the service edge is real-async
(:mod:`repro.serve.server` on asyncio), while every job runs entirely
in *simulated* time inside a worker.  Workers are OS processes
(``mode="process"``, the default) so N jobs really execute in parallel
and a crashing simulation cannot take the front-end down; each worker
runs one job at a time, start to finish — the simulator's process-wide
state (pooled ULT backend, loader namespaces) is never shared between
concurrently running jobs.

Workers execute through :func:`repro.harness.jobspec.run_spec_job`
under an *exclusive* :func:`~repro.harness.jobspec.result_hook_scope`,
so recording is explicit per job — a process-global ``--provenance``
auto-recorder in the host process can never double-record (or
cross-record) service jobs.  ``strict=False``: a deterministic
unrecoverable run is a *result* (with ``unrecoverable_reason`` set),
and results are cacheable.

``mode="thread"`` trades parallelism for startup cost: workers are
threads in the current process, execution is serialized by a lock (the
simulator's process-wide state is not reentrant) and forced onto the
thread-per-ULT backend (the pooled backend is process-global).  It
exists for tests and short-lived in-process servers; the scalable path
is processes.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import queue
import threading
import time
from typing import Any

from repro.harness.jobspec import JobSpec, result_hook_scope, run_spec_job
from repro.provenance.record import RunRecord
from repro.trace.stream import compress_timeline


def execute_spec(spec_dict: dict[str, Any], *,
                 ult_backend: str | None = None) -> dict[str, Any]:
    """Run one spec dict to completion; never raises.

    Returns ``{"record": RunRecord.to_dict(), "timeline_z": bytes,
    "error": None}`` on success (including structured-unrecoverable
    runs), or ``{"record": None, "timeline_z": None, "error": str}``
    when the job cannot be built or dies unstructured.
    """
    runtime: dict[str, Any] = {"strict": False}
    if ult_backend is not None:
        runtime["ult_backend"] = ult_backend
    try:
        spec = JobSpec.from_dict(dict(spec_dict))
        with result_hook_scope(exclusive=True):
            job, result = run_spec_job(spec, **runtime)
        record = RunRecord.from_run(spec, job, result)
        return {"record": record.to_dict(),
                "timeline_z": compress_timeline(job.scheduler.timeline),
                "error": None}
    except Exception as e:
        return {"record": None, "timeline_z": None,
                "error": f"{type(e).__name__}: {e}"}


def _worker_main(tasks: Any, results: Any) -> None:
    """Process-mode worker loop: drain tasks until the None sentinel."""
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, spec_dict = item
        results.put((task_id, execute_spec(spec_dict)))


class WorkerPool:
    """Fixed pool of spec executors with a Future-based submit API.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving
    to :func:`execute_spec`'s reply dict — the asyncio server wraps it
    with :func:`asyncio.wrap_future`.  Thread-safe.
    """

    def __init__(self, workers: int = 2, *, mode: str = "process",
                 mp_context: str = "spawn"):
        if workers < 1:
            raise ValueError("need at least one worker")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.workers = workers
        self.mode = mode
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._futures: dict[int, concurrent.futures.Future] = {}
        self._closed = False
        if mode == "process":
            ctx = multiprocessing.get_context(mp_context)
            self._tasks: Any = ctx.Queue()
            self._results = ctx.Queue()
            self._procs = [
                ctx.Process(target=_worker_main,
                            args=(self._tasks, self._results), daemon=True)
                for _ in range(workers)
            ]
            for p in self._procs:
                p.start()
            self._reader = threading.Thread(
                target=self._drain_results, name="serve-pool-reader",
                daemon=True)
            self._reader.start()
            self._monitor = threading.Thread(
                target=self._watch_workers, name="serve-pool-monitor",
                daemon=True)
            self._monitor.start()
        else:
            self._procs = []
            self._tasks = queue.Queue()
            # The simulator's process-wide state is not reentrant:
            # thread-mode workers execute one job at a time.
            self._exec_lock = threading.Lock()
            self._threads = [
                threading.Thread(target=self._thread_worker,
                                 name=f"serve-worker-{i}", daemon=True)
                for i in range(workers)
            ]
            for t in self._threads:
                t.start()

    # -- submission ---------------------------------------------------------

    def submit(self, spec_dict: dict[str, Any]
               ) -> concurrent.futures.Future:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        fut: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            task_id = next(self._seq)
            self._futures[task_id] = fut
        self._tasks.put((task_id, spec_dict))
        return fut

    def _resolve(self, task_id: int, out: dict[str, Any]) -> None:
        with self._lock:
            fut = self._futures.pop(task_id, None)
        if fut is not None and not fut.done():
            fut.set_result(out)

    # -- process mode -------------------------------------------------------

    def _drain_results(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                return
            task_id, out = item
            self._resolve(task_id, out)

    def _watch_workers(self) -> None:
        """Fail pending futures if every worker dies (e.g. the spawn
        bootstrap cannot re-import the host program) — a hung client is
        worse than an error reply."""
        while not self._closed:
            if all(not p.is_alive() for p in self._procs):
                with self._lock:
                    pending = list(self._futures.values())
                    self._futures.clear()
                for fut in pending:
                    if not fut.done():
                        fut.set_result({
                            "record": None, "timeline_z": None,
                            "error": "all pool workers died"})
            time.sleep(0.5)  # repro: allow(det-wallclock) supervisor poll interval, host-side

    # -- thread mode --------------------------------------------------------

    def _thread_worker(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            task_id, spec_dict = item
            with self._exec_lock:
                out = execute_spec(spec_dict, ult_backend="thread")
            self._resolve(task_id, out)

    # -- teardown -----------------------------------------------------------

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop accepting work and reap the workers.  Futures still
        pending afterwards resolve to a structured pool-closed error
        (the server drains in-flight jobs before closing, so in
        practice there are none)."""
        if self._closed:
            return
        self._closed = True
        for _ in range(self.workers):
            self._tasks.put(None)
        if self.mode == "process":
            for p in self._procs:
                p.join(timeout=timeout)
            for p in self._procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            self._results.put(None)
            self._reader.join(timeout=timeout)
        else:
            for t in self._threads:
                t.join(timeout=timeout)
        with self._lock:
            pending = list(self._futures.values())
            self._futures.clear()
        for fut in pending:
            if not fut.done():
                fut.set_result({"record": None, "timeline_z": None,
                                "error": "worker pool closed"})

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
