"""``repro serve`` — the multi-tenant job service on the provenance
cache.

Everything this repo runs is deterministic by contract, which makes
every job perfectly memoizable: the service keys submissions by
``sha256(spec.canonical + code_version)``, serves repeats straight from
the content-addressed :class:`~repro.provenance.ProvenanceStore`, and
coalesces identical *in-flight* submissions onto one execution
(single-flight).  Architecture: a real asyncio edge
(:class:`JobService`), a multiprocess :class:`WorkerPool` running each
job in simulated time, and clients (:class:`ServeClient`,
:class:`AsyncServeClient`) speaking a line-JSON protocol over a Unix
socket or localhost TCP.

The service is built to *survive its own components dying*: worker
crashes are retried and repeat offenders quarantined (``poison-job``),
load past the queue watermark is shed (``busy``), client deadlines are
honored edge-to-pool (``deadline-exceeded``), crash-expiring file
leases make execution exactly-once across multiple servers on one
store, and clients retry idempotently with jittered backoff.  See
``docs/ARCHITECTURE.md`` §16 and §18.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import (
    AsyncServeClient,
    ServeClient,
    ServeConnectionError,
    SubmitReply,
)
from repro.serve.pool import CHAOS_EXIT, PoolStats, WorkerPool, execute_spec
from repro.serve.protocol import (
    CACHE_COALESCED,
    CACHE_HIT,
    CACHE_INFLIGHT,
    CACHE_MISS,
    MAX_LINE,
    REASON_BUSY,
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_POISON,
    REASON_POOL_DEAD,
    REASONS,
    RETRYABLE_REASONS,
    ProtocolError,
)
from repro.serve.server import (
    DEFAULT_SOCKET,
    JobService,
    ServeStats,
    ServiceThread,
)

__all__ = [
    "CACHE_COALESCED",
    "CACHE_HIT",
    "CACHE_INFLIGHT",
    "CACHE_MISS",
    "CHAOS_EXIT",
    "DEFAULT_SOCKET",
    "MAX_LINE",
    "REASONS",
    "REASON_BUSY",
    "REASON_DEADLINE",
    "REASON_DRAINING",
    "REASON_POISON",
    "REASON_POOL_DEAD",
    "RETRYABLE_REASONS",
    "AsyncServeClient",
    "JobService",
    "PoolStats",
    "ProtocolError",
    "ResultCache",
    "ServeClient",
    "ServeConnectionError",
    "ServeStats",
    "ServiceThread",
    "SubmitReply",
    "WorkerPool",
    "execute_spec",
]
