"""``repro serve`` — the multi-tenant job service on the provenance
cache.

Everything this repo runs is deterministic by contract, which makes
every job perfectly memoizable: the service keys submissions by
``sha256(spec.canonical + code_version)``, serves repeats straight from
the content-addressed :class:`~repro.provenance.ProvenanceStore`, and
coalesces identical *in-flight* submissions onto one execution
(single-flight).  Architecture: a real asyncio edge
(:class:`JobService`), a multiprocess :class:`WorkerPool` running each
job in simulated time, and clients (:class:`ServeClient`,
:class:`AsyncServeClient`) speaking a line-JSON protocol over a Unix
socket or localhost TCP.  See ``docs/ARCHITECTURE.md`` §16.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import (
    AsyncServeClient,
    ServeClient,
    ServeConnectionError,
    SubmitReply,
)
from repro.serve.pool import WorkerPool, execute_spec
from repro.serve.protocol import (
    CACHE_COALESCED,
    CACHE_HIT,
    CACHE_INFLIGHT,
    CACHE_MISS,
    MAX_LINE,
    ProtocolError,
)
from repro.serve.server import (
    DEFAULT_SOCKET,
    JobService,
    ServeStats,
    ServiceThread,
)

__all__ = [
    "CACHE_COALESCED",
    "CACHE_HIT",
    "CACHE_INFLIGHT",
    "CACHE_MISS",
    "DEFAULT_SOCKET",
    "MAX_LINE",
    "AsyncServeClient",
    "JobService",
    "ProtocolError",
    "ResultCache",
    "ServeClient",
    "ServeConnectionError",
    "ServeStats",
    "ServiceThread",
    "SubmitReply",
    "WorkerPool",
    "execute_spec",
]
