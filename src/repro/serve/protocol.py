"""The ``repro serve`` wire protocol: newline-delimited JSON messages.

One request per line, one reply per line, over a Unix-domain socket
(default) or a localhost TCP connection.  A connection may carry any
number of sequential requests; concurrency comes from concurrent
connections (the server handles each connection in its own asyncio
task, and a ``submit`` with ``wait`` holds only its own connection).

Requests (``op`` selects the verb)::

    {"op": "submit", "spec": {...JobSpec.to_dict()...}, "wait": true}
    {"op": "await",  "run_id": "<64-hex>"}
    {"op": "status", "run_id": "<64-hex>"}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Replies always carry ``ok``.  A successful ``submit``/``await`` reply
carries ``run_id``, ``cache`` (``hit`` — served from the store;
``miss`` — this submission executed; ``coalesced`` — attached to an
identical in-flight execution; ``inflight`` — ``wait`` was false) and,
once resolved, ``record`` (the stored ``RunRecord.to_dict()``).

The protocol is deliberately line-based: every message is valid JSON on
one line, so ``socat``/``nc`` sessions and log captures stay readable.
Timelines never cross the wire — they live in the store; replies carry
only the record (spec, digests, counters, per-PE stats).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError

#: maximum encoded message size (a 1k-VP record with per-PE stats is
#: ~200 KB; 64 MB leaves room without letting a client exhaust memory)
MAX_LINE = 1 << 26

OP_SUBMIT = "submit"
OP_AWAIT = "await"
OP_STATUS = "status"
OP_STATS = "stats"
OP_PING = "ping"
OP_SHUTDOWN = "shutdown"

OPS = (OP_SUBMIT, OP_AWAIT, OP_STATUS, OP_STATS, OP_PING, OP_SHUTDOWN)

#: ``cache`` values a submit/await reply can carry
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_COALESCED = "coalesced"
CACHE_INFLIGHT = "inflight"


class ProtocolError(ReproError):
    """Malformed frame or message on the serve protocol."""


def encode(msg: dict[str, Any]) -> bytes:
    """One message -> one JSON line (sorted keys, compact)."""
    return (json.dumps(msg, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict[str, Any]:
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as e:
        raise ProtocolError(f"bad message: {e}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"message must be a JSON object, "
                            f"got {type(msg).__name__}")
    return msg


def error_reply(error: str, **extra: Any) -> dict[str, Any]:
    return {"ok": False, "error": error, **extra}


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; None on clean EOF."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(f"message exceeds {MAX_LINE} bytes") from None
    if not line:
        return None
    return decode(line)


async def write_message(writer: asyncio.StreamWriter,
                        msg: dict[str, Any]) -> None:
    writer.write(encode(msg))
    await writer.drain()
