"""The ``repro serve`` wire protocol: newline-delimited JSON messages.

One request per line, one reply per line, over a Unix-domain socket
(default) or a localhost TCP connection.  A connection may carry any
number of sequential requests; concurrency comes from concurrent
connections (the server handles each connection in its own asyncio
task, and a ``submit`` with ``wait`` holds only its own connection).

Requests (``op`` selects the verb)::

    {"op": "submit", "spec": {...JobSpec.to_dict()...}, "wait": true,
     "deadline_ms": 5000}
    {"op": "submit_many", "specs": [{...}, ...], "deadline_ms": 5000}
    {"op": "await",  "run_id": "<64-hex>", "deadline_ms": 5000}
    {"op": "status", "run_id": "<64-hex>"}
    {"op": "stats"}
    {"op": "health"}
    {"op": "ping"}
    {"op": "drain"}
    {"op": "shutdown"}

Replies always carry ``ok``.  A successful ``submit``/``await`` reply
carries ``run_id``, ``cache`` (``hit`` — served from the store;
``miss`` — this submission executed; ``coalesced`` — attached to an
identical in-flight execution; ``inflight`` — ``wait`` was false) and,
once resolved, ``record`` (the stored ``RunRecord.to_dict()``).  A
*structured failure* reply carries ``ok: false`` plus a machine-
checkable ``reason`` (one of the ``REASON_*`` constants below —
``busy``/``draining`` mean the submission was never accepted and may be
retried elsewhere; ``deadline-exceeded``/``poison-job``/``pool-dead``
resolve an accepted submission), so clients never have to string-match
error text.

``submit_many`` is the one verb that streams: the server writes one
reply line per spec *in completion order*, each tagged with ``index``
(the spec's position in the request), terminated by a
``{"op": "submit_many_done", "n": N}`` line.  One round trip amortizes
the protocol over thousands of specs.

The protocol is deliberately line-based: every message is valid JSON on
one line, so ``socat``/``nc`` sessions and log captures stay readable.
Timelines never cross the wire — they live in the store; replies carry
only the record (spec, digests, counters, per-PE stats).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError

#: maximum encoded message size (a 1k-VP record with per-PE stats is
#: ~200 KB; 64 MB leaves room without letting a client exhaust memory)
MAX_LINE = 1 << 26

OP_SUBMIT = "submit"
OP_SUBMIT_MANY = "submit_many"
OP_AWAIT = "await"
OP_STATUS = "status"
OP_STATS = "stats"
OP_HEALTH = "health"
OP_PING = "ping"
OP_DRAIN = "drain"
OP_SHUTDOWN = "shutdown"

OPS = (OP_SUBMIT, OP_SUBMIT_MANY, OP_AWAIT, OP_STATUS, OP_STATS,
       OP_HEALTH, OP_PING, OP_DRAIN, OP_SHUTDOWN)

#: terminator line of a ``submit_many`` reply stream
OP_SUBMIT_MANY_DONE = "submit_many_done"

#: ``cache`` values a submit/await reply can carry
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_COALESCED = "coalesced"
CACHE_INFLIGHT = "inflight"

#: structured-failure ``reason`` codes (load shedding and resolution)
REASON_BUSY = "busy"                    #: queue over watermark, shed
REASON_DRAINING = "draining"            #: server refusing new submits
REASON_DEADLINE = "deadline-exceeded"   #: client deadline passed
REASON_POISON = "poison-job"            #: job repeatedly killed workers
REASON_POOL_DEAD = "pool-dead"          #: no workers left to run it

REASONS = (REASON_BUSY, REASON_DRAINING, REASON_DEADLINE,
           REASON_POISON, REASON_POOL_DEAD)

#: ``reason`` codes that reject a submission *before* acceptance — the
#: job was never queued, nothing will resolve later, and an identical
#: retry (against this or another server) is always safe
RETRYABLE_REASONS = (REASON_BUSY, REASON_DRAINING)


class ProtocolError(ReproError):
    """Malformed frame or message on the serve protocol."""


def encode(msg: dict[str, Any]) -> bytes:
    """One message -> one JSON line (sorted keys, compact)."""
    return (json.dumps(msg, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict[str, Any]:
    try:
        msg = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as e:
        # ValueError covers non-UTF-8 garbage on some json versions; a
        # truncated or binary frame must be a protocol error, never an
        # unhandled exception in the connection task.
        raise ProtocolError(f"bad message: {e}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"message must be a JSON object, "
                            f"got {type(msg).__name__}")
    return msg


def error_reply(error: str, **extra: Any) -> dict[str, Any]:
    return {"ok": False, "error": error, **extra}


def shed_reply(reason: str, error: str, **extra: Any) -> dict[str, Any]:
    """A load-shedding rejection (``busy``/``draining``): the submit
    was *not* accepted and is safe to retry against another server."""
    return {"ok": False, "error": error, "reason": reason,
            "retryable": reason in RETRYABLE_REASONS, **extra}


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; None on clean EOF."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(f"message exceeds {MAX_LINE} bytes") from None
    if not line:
        return None
    return decode(line)


async def write_message(writer: asyncio.StreamWriter,
                        msg: dict[str, Any]) -> None:
    writer.write(encode(msg))
    await writer.drain()
