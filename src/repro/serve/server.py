"""The multi-tenant job service: async edge, simulated time inside.

:class:`JobService` accepts concurrent :class:`JobSpec` submissions
over the line protocol (:mod:`repro.serve.protocol`), executes misses
on a :class:`~repro.serve.pool.WorkerPool`, and serves hits straight
from the content-addressed :class:`~repro.serve.cache.ResultCache`
(i.e. the provenance store).  The doeff runtime split, applied: the
edge is a real asyncio event loop doing real I/O; every job runs in
deterministic simulated time inside a worker process.

Single-flight coalescing: submissions are keyed by ``run_id =
sha256(spec.canonical + code_version)``.  While a run_id is executing,
every identical submission *attaches to the same execution* — an
:class:`asyncio.Future` per in-flight id — instead of re-running; all
attached clients receive the one stored record, byte-identical.  With
results deterministic by contract, deduplicating in-flight requests is
as much of the "millions of users" story as the cache itself (cf. the
request-cloning reproduction in PAPERS.md: identical concurrent
requests are the common case under real traffic, not the corner case).

The service may also run its own janitor (``gc_every_s``): periodic
``store.gc`` under the configured age/size budget, off the event loop.
The store's concurrency hardening makes this safe while workers write
— and last-used-based eviction means a hot cache entry never ages out
under it.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec, app_names
from repro.provenance.record import RunRecord
from repro.provenance.store import ProvenanceStore
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.pool import WorkerPool

_log = logging.getLogger(__name__)

#: default Unix socket path, relative to the working directory
DEFAULT_SOCKET = ".repro/serve.sock"


@dataclass
class ServeStats:
    """Service-lifetime counters (``stats`` op / load-gen reporting)."""

    submissions: int = 0
    hits: int = 0           #: served straight from the store
    executed: int = 0       #: dispatched to the worker pool
    coalesced: int = 0      #: attached to an identical in-flight run
    errors: int = 0         #: executions that died unstructured
    invalid: int = 0        #: submissions rejected before keying
    gc_cycles: int = 0
    gc_errors: int = 0
    started_at: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, Any]:
        return {
            "submissions": self.submissions,
            "hits": self.hits,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "invalid": self.invalid,
            "gc_cycles": self.gc_cycles,
            "gc_errors": self.gc_errors,
            "uptime_s": round(time.time() - self.started_at, 3),  # repro: allow(det-wallclock) operator-facing uptime metric, host-side
        }


class JobService:
    """Asyncio front-end + worker pool + result cache, one object.

    Lifecycle: ``await start()`` binds the socket and spawns workers;
    ``await run()`` serves until :meth:`request_shutdown` (also
    reachable as the ``shutdown`` op); ``await close()`` drains.  For
    synchronous hosts (tests, the bench) use :class:`ServiceThread`.
    """

    def __init__(self, store: ProvenanceStore | str | Path | None = None,
                 *,
                 workers: int = 2,
                 socket_path: str | Path | None = None,
                 host: str | None = None,
                 port: int = 0,
                 worker_mode: str = "process",
                 mp_context: str = "spawn",
                 gc_every_s: float | None = None,
                 gc_max_age_s: float | None = None,
                 gc_max_bytes: int | None = None,
                 gc_keep: frozenset[str] = frozenset()):
        self.store = (store if isinstance(store, ProvenanceStore)
                      else ProvenanceStore(store))
        self.cache = ResultCache(self.store)
        self.workers = workers
        self.worker_mode = worker_mode
        self.mp_context = mp_context
        if socket_path is None and host is None:
            socket_path = DEFAULT_SOCKET
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.gc_every_s = gc_every_s
        self.gc_max_age_s = gc_max_age_s
        self.gc_max_bytes = gc_max_bytes
        self.gc_keep = gc_keep
        self.stats = ServeStats()
        self._pool: WorkerPool | None = None
        self._server: asyncio.base_events.Server | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._shutdown: asyncio.Event | None = None
        self._gc_task: asyncio.Task | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._pool = WorkerPool(self.workers, mode=self.worker_mode,
                                mp_context=self.mp_context)
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(OSError):
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=str(self.socket_path),
                limit=protocol.MAX_LINE)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.host, port=self.port,
                limit=protocol.MAX_LINE)
            self.port = self._server.sockets[0].getsockname()[1]
        if self.gc_every_s is not None:
            self._gc_task = asyncio.get_running_loop().create_task(
                self._gc_loop())

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def run(self) -> None:
        """Serve until shutdown is requested, then drain and close."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._gc_task is not None:
            self._gc_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._gc_task
            self._gc_task = None
        # Drain in-flight executions so attached waiters resolve and
        # completed results still land in the store.
        if self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        if self._pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.close)
            self._pool = None
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                self.socket_path.unlink()

    # -- the janitor --------------------------------------------------------

    async def _gc_loop(self) -> None:
        assert self.gc_every_s is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.gc_every_s)
            try:
                await loop.run_in_executor(
                    None, lambda: self.store.gc(
                        keep=self.gc_keep,
                        max_age_s=self.gc_max_age_s,
                        max_bytes=self.gc_max_bytes))
                self.stats.gc_cycles += 1
            except asyncio.CancelledError:
                raise
            except Exception:
                self.stats.gc_errors += 1
                _log.exception("serve gc cycle failed")

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    msg = await protocol.read_message(reader)
                except protocol.ProtocolError as e:
                    await protocol.write_message(
                        writer, protocol.error_reply(str(e)))
                    break
                if msg is None:
                    break
                reply = await self._dispatch(msg)
                await protocol.write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, msg: dict[str, Any]) -> dict[str, Any]:
        op = msg.get("op")
        if op == protocol.OP_PING:
            return {"ok": True, "op": "pong",
                    "code_version": self.cache.code_version}
        if op == protocol.OP_STATS:
            return {"ok": True,
                    "stats": {**self.stats.to_dict(),
                              "inflight": self.inflight,
                              "workers": self.workers,
                              "worker_mode": self.worker_mode,
                              "endpoint": self.endpoint,
                              **self.cache.stats()}}
        if op == protocol.OP_SUBMIT:
            return await self.submit(msg.get("spec"),
                                     wait=bool(msg.get("wait", True)))
        if op == protocol.OP_AWAIT:
            return await self.await_result(str(msg.get("run_id", "")))
        if op == protocol.OP_STATUS:
            return self.status(str(msg.get("run_id", "")))
        if op == protocol.OP_SHUTDOWN:
            self.request_shutdown()
            return {"ok": True, "op": "shutdown"}
        return protocol.error_reply(f"unknown op {op!r}")

    # -- the submit path ----------------------------------------------------

    async def submit(self, spec_dict: Any,
                     wait: bool = True) -> dict[str, Any]:
        """Submit one spec: hit, coalesce, or execute."""
        self.stats.submissions += 1
        if not isinstance(spec_dict, dict):
            self.stats.invalid += 1
            return protocol.error_reply("submit needs a spec object")
        try:
            spec = JobSpec.from_dict(dict(spec_dict))
        except (ReproError, TypeError, ValueError) as e:
            self.stats.invalid += 1
            return protocol.error_reply(f"bad spec: {e}")
        if spec.app not in app_names():
            self.stats.invalid += 1
            return protocol.error_reply(
                f"bad spec: unknown app {spec.app!r}; "
                f"registered: {app_names()}")
        run_id = self.cache.key(spec)

        record = self.cache.get(run_id)
        if record is not None:
            self.stats.hits += 1
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_HIT,
                    "record": record.to_dict()}

        fut = self._inflight.get(run_id)
        if fut is not None:
            self.stats.coalesced += 1
            cache = protocol.CACHE_COALESCED
        else:
            fut = self._launch(run_id, spec)
            cache = protocol.CACHE_MISS
        if not wait:
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_INFLIGHT}
        reply = dict(await fut)
        if reply.get("ok"):
            reply["cache"] = cache
        return reply

    def _launch(self, run_id: str, spec: JobSpec) -> asyncio.Future:
        """Dispatch one execution; registers the single-flight future."""
        assert self._pool is not None
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._inflight[run_id] = fut
        self.stats.executed += 1
        pool_fut = asyncio.wrap_future(self._pool.submit(spec.to_dict()),
                                       loop=loop)
        loop.create_task(self._finish(run_id, pool_fut, fut))
        return fut

    async def _finish(self, run_id: str, pool_fut: asyncio.Future,
                      fut: asyncio.Future) -> None:
        try:
            out = await pool_fut
        except Exception as e:  # wrap_future surfaced a pool failure
            out = {"record": None, "timeline_z": None,
                   "error": f"{type(e).__name__}: {e}"}
        if out.get("error") is not None or out.get("record") is None:
            self.stats.errors += 1
            reply = protocol.error_reply(
                out.get("error") or "worker returned no record",
                run_id=run_id)
        else:
            record = RunRecord.from_dict(out["record"])
            # File before resolving: every waiter observes a stored,
            # re-readable record.  The store write is tiny; doing it on
            # the loop keeps put-then-resolve atomic wrt new submits.
            self.cache.put(record, out.get("timeline_z"))
            reply = {"ok": True, "run_id": run_id, "record": out["record"]}
        self._inflight.pop(run_id, None)
        if not fut.done():
            fut.set_result(reply)

    # -- status / await -----------------------------------------------------

    async def await_result(self, run_id: str) -> dict[str, Any]:
        """Block until ``run_id`` resolves (submitted earlier with
        ``wait=false``), or serve it from the store."""
        fut = self._inflight.get(run_id)
        if fut is not None:
            reply = dict(await fut)
            if reply.get("ok"):
                reply["cache"] = protocol.CACHE_COALESCED
            return reply
        record = self.cache.get(run_id)
        if record is not None:
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_HIT,
                    "record": record.to_dict()}
        return protocol.error_reply(f"unknown run id {run_id[:12]!r}",
                                    run_id=run_id)

    def status(self, run_id: str) -> dict[str, Any]:
        if run_id in self._inflight:
            state = "inflight"
        elif run_id in self.store:
            state = "done"
        else:
            state = "unknown"
        return {"ok": True, "run_id": run_id, "state": state}


class ServiceThread:
    """Run a :class:`JobService` on a private event loop in a daemon
    thread — the bridge for synchronous hosts (the bench, tests, the
    smoke script's subprocess-free mode)."""

    def __init__(self, service: JobService):
        self.service = service
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as e:  # surface startup/serve failures
            self._error = e
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.run()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._error}"
            ) from self._error
        if not self._ready.is_set():
            raise RuntimeError("serve thread did not come up in 60s")
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            # The loop may close between the liveness check and the
            # call (a client sent the shutdown op): already stopped.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    self.service.request_shutdown)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
