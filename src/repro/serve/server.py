"""The multi-tenant job service: async edge, simulated time inside.

:class:`JobService` accepts concurrent :class:`JobSpec` submissions
over the line protocol (:mod:`repro.serve.protocol`), executes misses
on a :class:`~repro.serve.pool.WorkerPool`, and serves hits straight
from the content-addressed :class:`~repro.serve.cache.ResultCache`
(i.e. the provenance store).  The doeff runtime split, applied: the
edge is a real asyncio event loop doing real I/O; every job runs in
deterministic simulated time inside a worker process.

Single-flight coalescing: submissions are keyed by ``run_id =
sha256(spec.canonical + code_version)``.  While a run_id is executing,
every identical submission *attaches to the same execution* — an
:class:`asyncio.Future` per in-flight id — instead of re-running; all
attached clients receive the one stored record, byte-identical.  With
results deterministic by contract, deduplicating in-flight requests is
as much of the "millions of users" story as the cache itself (cf. the
request-cloning reproduction in PAPERS.md: identical concurrent
requests are the common case under real traffic, not the corner case).

The resilience layer (every accepted submission *resolves* — to a
record or a structured failure — and the service survives its own
components dying):

- **Admission control**: at most ``max_queue`` executions may be
  in flight; past the watermark new work is shed with a retryable
  ``busy`` reply instead of building an unbounded backlog (hits and
  coalesced attaches are always admitted — they cost no queue slot).
- **Deadlines**: a submission may carry ``deadline_ms``; it is honored
  edge-to-pool — the awaiting client gets a structured
  ``deadline-exceeded`` reply when the clock runs out, and a queued
  job whose deadline passed is dropped before wasting a worker.  The
  execution itself is shielded, so a late result still fills the cache.
- **Worker-crash retry / poison quarantine** (in the pool): a job
  whose worker dies is retried on a fresh worker; a repeat offender
  resolves as a ``poison-job`` structured failure, which the service
  *remembers* — resubmitting a quarantined run_id is answered
  instantly without feeding it more workers.
- **Cross-server leases**: when several servers mount one store root,
  an atomic per-run_id lease file (heartbeat = mtime) makes execution
  exactly-once *across servers*; a server that crashes mid-run stops
  heartbeating, and a peer takes the lease over and re-executes.
- **Graceful drain**: the ``drain`` op (and shutdown) flips the
  service into a mode that refuses new submissions (``draining``
  reply) while in-flight jobs run to completion.
- **Health**: the ``health`` op is the probe endpoint — readiness,
  worker liveness, queue depth, quarantine size.

The service may also run its own janitor (``gc_every_s``): periodic
``store.gc`` under the configured age/size budget, off the event loop.
The janitor *never dies*: an unexpected store exception is counted,
logged, and the loop continues — a misbehaving filesystem must not
silently disable eviction for the rest of the server's life.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec, app_names
from repro.provenance.record import RunRecord
from repro.provenance.store import LEASE_TTL_S, ProvenanceStore
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.pool import WorkerPool

_log = logging.getLogger(__name__)

#: default Unix socket path, relative to the working directory
DEFAULT_SOCKET = ".repro/serve.sock"


@dataclass
class ServeStats:
    """Service-lifetime counters (``stats`` op / load-gen reporting)."""

    submissions: int = 0
    hits: int = 0           #: served straight from the store
    executed: int = 0       #: dispatched to the worker pool
    coalesced: int = 0      #: attached to an identical in-flight run
    errors: int = 0         #: executions that died unstructured
    invalid: int = 0        #: submissions rejected before keying
    shed: int = 0           #: submissions refused (busy / draining)
    deadline_exceeded: int = 0  #: replies that ran out of deadline
    quarantined: int = 0    #: run_ids condemned as poison jobs
    lease_waits: int = 0    #: executions that waited on a peer's lease
    lease_takeovers: int = 0  #: stale leases broken (peer crashed)
    gc_cycles: int = 0
    gc_errors: int = 0
    started_at: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, Any]:
        return {
            "submissions": self.submissions,
            "hits": self.hits,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "invalid": self.invalid,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "quarantined": self.quarantined,
            "lease_waits": self.lease_waits,
            "lease_takeovers": self.lease_takeovers,
            "gc_cycles": self.gc_cycles,
            "gc_errors": self.gc_errors,
            "uptime_s": round(time.time() - self.started_at, 3),  # repro: allow(det-wallclock) operator-facing uptime metric, host-side
        }


class JobService:
    """Asyncio front-end + worker pool + result cache, one object.

    Lifecycle: ``await start()`` binds the socket and spawns workers;
    ``await run()`` serves until :meth:`request_shutdown` (also
    reachable as the ``shutdown`` op); ``await close()`` drains.  For
    synchronous hosts (tests, the bench) use :class:`ServiceThread`.

    ``lease_ttl_s=None`` disables cross-server leases (single-server
    deployments save two file ops per execution); any float enables
    them with that heartbeat TTL.  ``enable_chaos`` unlocks the
    protocol-level fault-injection envelope used by the service chaos
    campaign — never enable it on a real deployment.
    """

    def __init__(self, store: ProvenanceStore | str | Path | None = None,
                 *,
                 workers: int = 2,
                 socket_path: str | Path | None = None,
                 host: str | None = None,
                 port: int = 0,
                 worker_mode: str = "process",
                 mp_context: str = "spawn",
                 max_queue: int | None = 256,
                 retries: int = 2,
                 lease_ttl_s: float | None = LEASE_TTL_S,
                 lease_poll_s: float = 0.1,
                 enable_chaos: bool = False,
                 gc_every_s: float | None = None,
                 gc_max_age_s: float | None = None,
                 gc_max_bytes: int | None = None,
                 gc_keep: frozenset[str] = frozenset()):
        self.store = (store if isinstance(store, ProvenanceStore)
                      else ProvenanceStore(store))
        self.cache = ResultCache(self.store)
        self.workers = workers
        self.worker_mode = worker_mode
        self.mp_context = mp_context
        self.max_queue = max_queue
        self.retries = retries
        self.lease_ttl_s = lease_ttl_s
        self.lease_poll_s = lease_poll_s
        self.enable_chaos = enable_chaos
        if socket_path is None and host is None:
            socket_path = DEFAULT_SOCKET
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.gc_every_s = gc_every_s
        self.gc_max_age_s = gc_max_age_s
        self.gc_max_bytes = gc_max_bytes
        self.gc_keep = gc_keep
        self.stats = ServeStats()
        self._pool: WorkerPool | None = None
        self._server: asyncio.base_events.Server | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._poison: dict[str, dict[str, Any]] = {}
        self._draining = False
        self._shutdown: asyncio.Event | None = None
        self._gc_task: asyncio.Task | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._pool = WorkerPool(self.workers, mode=self.worker_mode,
                                mp_context=self.mp_context,
                                retries=self.retries)
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(OSError):
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=str(self.socket_path),
                limit=protocol.MAX_LINE)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.host, port=self.port,
                limit=protocol.MAX_LINE)
            self.port = self._server.sockets[0].getsockname()[1]
        if self.gc_every_s is not None:
            self._gc_task = asyncio.get_running_loop().create_task(
                self._gc_loop())

    def request_shutdown(self) -> None:
        # Shutdown implies drain: between the request and the socket
        # closing, new submissions are refused while in-flight ones
        # finish.
        self._draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    async def run(self) -> None:
        """Serve until shutdown is requested, then drain and close."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._gc_task is not None:
            self._gc_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._gc_task
            self._gc_task = None
        # Drain in-flight executions so attached waiters resolve and
        # completed results still land in the store.
        if self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        if self._pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.close)
            self._pool = None
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                self.socket_path.unlink()

    # -- the janitor --------------------------------------------------------

    async def _gc_loop(self) -> None:
        """Periodic store gc.  Log-and-continue on *any* store failure:
        one bad cycle (ENOSPC, a corrupt shard, a racing actor) must
        not silently end eviction for the rest of the server's life."""
        assert self.gc_every_s is not None
        loop = asyncio.get_running_loop()
        while True:
            try:
                await asyncio.sleep(self.gc_every_s)
                await loop.run_in_executor(
                    None, lambda: self.store.gc(
                        keep=self.gc_keep,
                        max_age_s=self.gc_max_age_s,
                        max_bytes=self.gc_max_bytes))
                self.stats.gc_cycles += 1
            except asyncio.CancelledError:
                raise
            except Exception:
                self.stats.gc_errors += 1
                _log.exception("serve gc cycle failed; janitor continues")

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    msg = await protocol.read_message(reader)
                except protocol.ProtocolError as e:
                    await protocol.write_message(
                        writer, protocol.error_reply(str(e)))
                    break
                if msg is None:
                    break
                if msg.get("op") == protocol.OP_SUBMIT_MANY:
                    await self._submit_many(msg, writer)
                    continue
                reply = await self._dispatch(msg)
                await protocol.write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels handlers parked in readline; close the
            # socket quietly instead of surfacing a cancellation
            # traceback through the stream-protocol callback.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, msg: dict[str, Any]) -> dict[str, Any]:
        op = msg.get("op")
        if op == protocol.OP_PING:
            return {"ok": True, "op": "pong",
                    "code_version": self.cache.code_version}
        if op == protocol.OP_STATS:
            pool = (self._pool.pool_stats() if self._pool is not None
                    else {})
            return {"ok": True,
                    "stats": {**self.stats.to_dict(),
                              "inflight": self.inflight,
                              "draining": self._draining,
                              "max_queue": self.max_queue,
                              "workers": self.workers,
                              "worker_mode": self.worker_mode,
                              "endpoint": self.endpoint,
                              "pool": pool,
                              **self.cache.stats()}}
        if op == protocol.OP_HEALTH:
            return self.health()
        if op == protocol.OP_SUBMIT:
            return await self.submit(msg.get("spec"),
                                     wait=bool(msg.get("wait", True)),
                                     deadline_ms=msg.get("deadline_ms"),
                                     chaos=msg.get("chaos"))
        if op == protocol.OP_AWAIT:
            return await self.await_result(
                str(msg.get("run_id", "")),
                deadline_ms=msg.get("deadline_ms"))
        if op == protocol.OP_STATUS:
            return self.status(str(msg.get("run_id", "")))
        if op == protocol.OP_DRAIN:
            self._draining = True
            return {"ok": True, "op": "drain", "inflight": self.inflight}
        if op == protocol.OP_SHUTDOWN:
            self.request_shutdown()
            return {"ok": True, "op": "shutdown"}
        return protocol.error_reply(f"unknown op {op!r}")

    # -- probes -------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Readiness/liveness probe payload (the ``health`` op)."""
        pool = self._pool
        alive = pool.alive_workers() if pool is not None else 0
        pool_dead = pool.dead if pool is not None else True
        ready = (self._server is not None and not self._draining
                 and not pool_dead
                 and (alive > 0 or self.worker_mode == "thread"))
        return {"ok": True, "op": "health",
                "ready": ready,
                "draining": self._draining,
                "pool_dead": pool_dead,
                "workers_alive": alive,
                "worker_pids": (pool.worker_pids()
                                if pool is not None else []),
                "inflight": self.inflight,
                "max_queue": self.max_queue,
                "quarantined": len(self._poison),
                "leases": self.lease_ttl_s is not None}

    # -- the submit path ----------------------------------------------------

    async def submit(self, spec_dict: Any, wait: bool = True,
                     deadline_ms: float | None = None,
                     chaos: dict[str, Any] | None = None
                     ) -> dict[str, Any]:
        """Submit one spec: hit, coalesce, shed, or execute."""
        self.stats.submissions += 1
        if self._draining:
            self.stats.shed += 1
            return protocol.shed_reply(
                protocol.REASON_DRAINING,
                "service is draining; not accepting new submissions")
        if not isinstance(spec_dict, dict):
            self.stats.invalid += 1
            return protocol.error_reply("submit needs a spec object")
        if chaos is not None and not self.enable_chaos:
            self.stats.invalid += 1
            return protocol.error_reply(
                "chaos envelope rejected: server started without "
                "chaos hooks")
        try:
            spec = JobSpec.from_dict(dict(spec_dict))
        except (ReproError, TypeError, ValueError) as e:
            self.stats.invalid += 1
            return protocol.error_reply(f"bad spec: {e}")
        if spec.app not in app_names():
            self.stats.invalid += 1
            return protocol.error_reply(
                f"bad spec: unknown app {spec.app!r}; "
                f"registered: {app_names()}")
        run_id = self.cache.key(spec)

        poison = self._poison.get(run_id)
        if poison is not None:
            # Quarantined: answer from memory, never feed it workers.
            return dict(poison)

        record = self.cache.get(run_id)
        if record is not None:
            self.stats.hits += 1
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_HIT,
                    "record": record.to_dict()}

        fut = self._inflight.get(run_id)
        if fut is not None:
            self.stats.coalesced += 1
            cache = protocol.CACHE_COALESCED
        else:
            # Admission control: only a *new* execution occupies a
            # queue slot; hits and coalesced attaches above are free.
            depth = len(self._inflight)
            if self.max_queue is not None and depth >= self.max_queue:
                self.stats.shed += 1
                return protocol.shed_reply(
                    protocol.REASON_BUSY,
                    f"queue full ({depth} in flight >= "
                    f"watermark {self.max_queue})",
                    queue_depth=depth)
            deadline_ts = (time.time() + deadline_ms / 1000.0  # repro: allow(det-wallclock) client deadlines are host wall-clock by definition
                           if deadline_ms else None)
            fut = self._launch(run_id, spec, deadline_ts, chaos)
            cache = protocol.CACHE_MISS
        if not wait:
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_INFLIGHT}
        return await self._await_reply(fut, run_id, cache, deadline_ms)

    async def _await_reply(self, fut: asyncio.Future, run_id: str,
                           cache: str, deadline_ms: float | None
                           ) -> dict[str, Any]:
        """Await a resolution with the caller's deadline.  The
        execution itself is shielded — a slow job still completes and
        fills the cache for the next caller even when this one gives
        up."""
        if deadline_ms:
            try:
                reply = dict(await asyncio.wait_for(
                    asyncio.shield(fut), deadline_ms / 1000.0))
            except asyncio.TimeoutError:
                self.stats.deadline_exceeded += 1
                return protocol.error_reply(
                    f"deadline exceeded after {deadline_ms} ms",
                    reason=protocol.REASON_DEADLINE, run_id=run_id,
                    retryable=False)
        else:
            reply = dict(await fut)
        if reply.get("ok"):
            reply["cache"] = cache
        return reply

    def _launch(self, run_id: str, spec: JobSpec,
                deadline_ts: float | None,
                chaos: dict[str, Any] | None) -> asyncio.Future:
        """Register the single-flight future and start the execution
        task (lease acquisition + pool dispatch + settlement)."""
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._inflight[run_id] = fut
        loop.create_task(self._execute(run_id, spec, deadline_ts,
                                       chaos, fut))
        return fut

    async def _execute(self, run_id: str, spec: JobSpec,
                       deadline_ts: float | None,
                       chaos: dict[str, Any] | None,
                       fut: asyncio.Future) -> None:
        lease = None
        try:
            if self.lease_ttl_s is not None:
                lease = await self._acquire_lease_or_result(run_id, fut)
                if lease is None:
                    return      # resolved from a peer's execution
            self.stats.executed += 1
            out = await self._run_on_pool(run_id, spec, deadline_ts,
                                          chaos, lease)
            self._settle(run_id, fut, self._reply_from_pool(run_id, out))
        finally:
            if lease is not None:
                lease.release()
            self._inflight.pop(run_id, None)
            if not fut.done():      # belt and braces: never hang a waiter
                fut.set_result(protocol.error_reply(
                    "execution task died unexpectedly", run_id=run_id))

    async def _acquire_lease_or_result(self, run_id: str,
                                       fut: asyncio.Future):
        """Cross-server single-flight: either win the lease (we
        execute) or wait the peer out — serving its stored record when
        it lands, or taking over its expired lease when it crashes."""
        waited = False
        while True:
            lease = self.store.acquire_lease(run_id,
                                             ttl_s=self.lease_ttl_s)
            if lease is not None:
                if lease.takeover:
                    self.stats.lease_takeovers += 1
                return lease
            if not waited:
                waited = True
                self.stats.lease_waits += 1
            await asyncio.sleep(self.lease_poll_s)
            record = self.cache.get(run_id)
            if record is not None:
                self._settle(run_id, fut, {
                    "ok": True, "run_id": run_id,
                    "record": record.to_dict()})
                return None

    async def _run_on_pool(self, run_id: str, spec: JobSpec,
                           deadline_ts: float | None,
                           chaos: dict[str, Any] | None,
                           lease) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        try:
            pool_fut = asyncio.wrap_future(
                self._pool.submit(spec.to_dict(),
                                  deadline_ts=deadline_ts, chaos=chaos),
                loop=loop)
        except RuntimeError as e:
            return {"record": None, "timeline_z": None, "error": str(e)}
        hb: asyncio.Task | None = None
        if lease is not None:
            hb = loop.create_task(self._heartbeat(lease))
        try:
            return await pool_fut
        except Exception as e:   # wrap_future surfaced a pool failure
            return {"record": None, "timeline_z": None,
                    "error": f"{type(e).__name__}: {e}"}
        finally:
            if hb is not None:
                hb.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await hb

    async def _heartbeat(self, lease) -> None:
        """Keep the lease's mtime fresh while the job runs; a lost
        lease (a peer presumed us dead and took over) is logged but the
        execution continues — the store's append-only put makes the
        duplicate harmless."""
        interval = max(self.lease_ttl_s / 3.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            renewed = await asyncio.get_running_loop().run_in_executor(
                None, lease.renew)
            if not renewed:
                _log.warning("lease lost for %s (takeover by a peer?)",
                             lease.run_id[:12])
                return

    def _reply_from_pool(self, run_id: str,
                         out: dict[str, Any]) -> dict[str, Any]:
        if out.get("error") is not None or out.get("record") is None:
            reply = protocol.error_reply(
                out.get("error") or "worker returned no record",
                run_id=run_id)
            for key in ("reason", "unrecoverable_reason", "attempts"):
                if key in out:
                    reply[key] = out[key]
            reason = out.get("reason")
            if reason == protocol.REASON_POISON:
                # Remember the verdict: identical future submissions
                # are answered from quarantine, not retried on workers.
                self.stats.quarantined += 1
                self._poison[run_id] = {**reply, "quarantined": True}
            elif reason == protocol.REASON_DEADLINE:
                self.stats.deadline_exceeded += 1
            else:
                self.stats.errors += 1
            return reply
        record = RunRecord.from_dict(out["record"])
        # File before resolving: every waiter observes a stored,
        # re-readable record.  The store write is tiny; doing it on
        # the loop keeps put-then-resolve atomic wrt new submits.
        self.cache.put(record, out.get("timeline_z"))
        return {"ok": True, "run_id": run_id, "record": out["record"]}

    def _settle(self, run_id: str, fut: asyncio.Future,
                reply: dict[str, Any]) -> None:
        self._inflight.pop(run_id, None)
        if not fut.done():
            fut.set_result(reply)

    # -- batch submission ---------------------------------------------------

    async def _submit_many(self, msg: dict[str, Any],
                           writer: asyncio.StreamWriter) -> None:
        """One request, N specs: replies stream back per job in
        completion order (each tagged ``index``), then a terminator."""
        specs = msg.get("specs")
        if not isinstance(specs, list):
            await protocol.write_message(
                writer, protocol.error_reply(
                    "submit_many needs a list of specs"))
            await protocol.write_message(
                writer, {"ok": False, "op": protocol.OP_SUBMIT_MANY_DONE,
                         "n": 0})
            return
        wait = bool(msg.get("wait", True))
        deadline_ms = msg.get("deadline_ms")

        async def one(i: int, sd: Any) -> dict[str, Any]:
            reply = await self.submit(sd, wait=wait,
                                      deadline_ms=deadline_ms)
            return {**reply, "index": i}

        tasks = [asyncio.ensure_future(one(i, sd))
                 for i, sd in enumerate(specs)]
        try:
            for next_done in asyncio.as_completed(tasks):
                await protocol.write_message(writer, await next_done)
            await protocol.write_message(
                writer, {"ok": True, "op": protocol.OP_SUBMIT_MANY_DONE,
                         "n": len(specs)})
        except (ConnectionResetError, BrokenPipeError):
            # Client hung up mid-stream: let the remaining submissions
            # finish server-side (they fill the cache), stop writing.
            for t in tasks:
                if not t.done():
                    await t
            raise

    # -- status / await -----------------------------------------------------

    async def await_result(self, run_id: str, *,
                           deadline_ms: float | None = None
                           ) -> dict[str, Any]:
        """Block until ``run_id`` resolves (submitted earlier with
        ``wait=false``), or serve it from the store."""
        fut = self._inflight.get(run_id)
        if fut is not None:
            return await self._await_reply(
                fut, run_id, protocol.CACHE_COALESCED, deadline_ms)
        poison = self._poison.get(run_id)
        if poison is not None:
            return dict(poison)
        record = self.cache.get(run_id)
        if record is not None:
            return {"ok": True, "run_id": run_id,
                    "cache": protocol.CACHE_HIT,
                    "record": record.to_dict()}
        return protocol.error_reply(f"unknown run id {run_id[:12]!r}",
                                    run_id=run_id)

    def status(self, run_id: str) -> dict[str, Any]:
        if run_id in self._inflight:
            state = "inflight"
        elif run_id in self._poison:
            state = "quarantined"
        elif run_id in self.store:
            state = "done"
        else:
            state = "unknown"
        return {"ok": True, "run_id": run_id, "state": state}


class ServiceThread:
    """Run a :class:`JobService` on a private event loop in a daemon
    thread — the bridge for synchronous hosts (the bench, tests, the
    smoke script's subprocess-free mode)."""

    def __init__(self, service: JobService):
        self.service = service
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as e:  # surface startup/serve failures
            self._error = e
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.run()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._error}"
            ) from self._error
        if not self._ready.is_set():
            raise RuntimeError("serve thread did not come up in 60s")
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            # The loop may close between the liveness check and the
            # call (a client sent the shutdown op): already stopped.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    self.service.request_shutdown)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
