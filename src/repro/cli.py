"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-methods``
    The privatization methods and their declared capabilities.
``list-machines``
    Machine presets and their toolchains.
``probe <method>``
    Run the executed capability probes for one method.
``tables``
    Regenerate the paper's Tables 1 and 3 from probes.
``run <experiment>``
    Run one experiment driver: fig5, fig6, fig7, fig8, icache, adcirc.
``hello [--method M] [--vp N]``
    The Figure 2/3 hello world under a chosen method.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.tables import format_table


def cmd_list_methods(_args) -> int:
    from repro.privatization import get_method, method_names

    rows = []
    for name in method_names():
        m = get_method(name)
        c = m.capabilities
        rows.append([name, c.automation, c.smp_support, c.migration,
                     "yes" if m.uses_funcptr_shim else "no"])
    print(format_table(
        ["method", "automation", "SMP", "migration", "funcptr shim"],
        rows, title="Registered privatization methods"))
    return 0


def cmd_list_machines(_args) -> int:
    from repro.machine import PRESETS

    rows = []
    for name, m in sorted(PRESETS.items()):
        t = m.toolchain
        rows.append([
            name, m.arch.value, m.os.value,
            f"{t.compiler} {'.'.join(map(str, t.compiler_version))}",
            f"ld {'.'.join(map(str, t.linker_version))}",
            t.libc.value, m.cores_per_node,
        ])
    print(format_table(
        ["preset", "arch", "os", "compiler", "linker", "libc",
         "cores/node"],
        rows, title="Machine presets"))
    return 0


def cmd_probe(args) -> int:
    from repro.harness.capabilities import probe_method

    row = probe_method(args.method)
    print(f"method      : {row.display_name}")
    print(f"automation  : {row.automation}")
    print(f"portability : {row.portability}")
    print(f"SMP support : {row.smp_support}")
    print(f"migration   : {row.migration}")
    print(f"privatizes  : "
          + ", ".join(k for k, v in row.privatizes.items() if v))
    print(f"runs on     : {', '.join(row.works_on) or '(nowhere probed)'}")
    return 0


def cmd_tables(_args) -> int:
    from repro.harness.capabilities import (
        TABLE1_METHODS,
        TABLE3_METHODS,
        capability_table,
    )

    print(capability_table(TABLE1_METHODS,
                           title="Table 1: existing methods"))
    print()
    print(capability_table(TABLE3_METHODS,
                           title="Table 3: incl. the 3 new methods"))
    return 0


def cmd_run(args) -> int:
    from repro.harness import experiments as ex

    name = args.experiment
    if name == "fig5":
        rows = ex.startup_experiment()
        print(format_table(
            ["method", "startup (ms)", "overhead %"],
            [[r.method, r.startup_ns / 1e6, r.overhead_pct] for r in rows],
            title="Figure 5: startup overhead (8x virtualization)"))
    elif name == "fig6":
        rows = ex.context_switch_experiment(yields_per_rank=args.quick_n
                                            or 20_000)
        print(format_table(
            ["method", "ns/switch", "delta vs baseline"],
            [[r.method, r.ns_per_switch, r.delta_vs_baseline_ns]
             for r in rows],
            title="Figure 6: ULT context-switch time"))
    elif name == "fig7":
        rows = ex.jacobi_access_experiment()
        print(format_table(
            ["method", "exec (ms)", "relative"],
            [[r.method, r.exec_ns / 1e6, r.rel_to_baseline] for r in rows],
            title="Figure 7: privatized-access overhead (-O2)"))
    elif name == "fig8":
        rows = ex.migration_experiment()
        print(format_table(
            ["method", "heap MB", "migrate (ms)", "moved MB"],
            [[r.method, r.heap_mb, r.migrate_ns / 1e6,
              r.bytes_moved / 2**20] for r in rows],
            title="Figure 8: migration time vs heap"))
    elif name == "icache":
        rows = ex.icache_experiment()
        print(format_table(
            ["machine", "method", "fetches", "misses", "miss rate"],
            [[r.machine, r.method, r.accesses, r.misses,
              f"{100 * r.miss_rate:.1f}%"] for r in rows],
            title="Section 4.5: L1 icache misses"))
    elif name == "adcirc":
        cores = tuple(int(c) for c in (args.cores or "1,2,4,8").split(","))
        _, summaries = ex.adcirc_scaling_experiment(cores_list=cores)
        print(format_table(
            ["cores", "best ratio", "baseline (ms)", "best (ms)",
             "speedup %"],
            [[s.cores, s.best_ratio, s.baseline_ns / 1e6, s.best_ns / 1e6,
              s.speedup_pct] for s in summaries],
            title="Table 2: ADCIRC speedup over baseline"))
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def cmd_hello(args) -> int:
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout
    from repro.machine import GENERIC_LINUX
    from repro.program.source import Program

    p = Program("hello_world")
    p.add_global("my_rank", -1)

    @p.function()
    def main(ctx):
        ctx.g.my_rank = ctx.mpi.rank()
        ctx.mpi.barrier()
        return f"rank: {ctx.g.my_rank}"

    job = AmpiJob(p.build(), nvp=args.vp, method=args.method,
                  machine=GENERIC_LINUX,
                  layout=JobLayout.single(1), slot_size=1 << 24)
    result = job.run()
    print(f"$ ./hello_world +vp {args.vp}    (method={args.method})")
    for vp in range(args.vp):
        print(result.exit_values[vp])
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Process-virtualization reproduction toolkit",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods").set_defaults(fn=cmd_list_methods)
    sub.add_parser("list-machines").set_defaults(fn=cmd_list_machines)

    probe = sub.add_parser("probe")
    probe.add_argument("method")
    probe.set_defaults(fn=cmd_probe)

    sub.add_parser("tables").set_defaults(fn=cmd_tables)

    run = sub.add_parser("run")
    run.add_argument("experiment",
                     choices=["fig5", "fig6", "fig7", "fig8", "icache",
                              "adcirc"])
    run.add_argument("--cores", help="adcirc: comma-separated core counts")
    run.add_argument("--quick-n", type=int, default=None,
                     help="fig6: yields per rank")
    run.set_defaults(fn=cmd_run)

    hello = sub.add_parser("hello")
    hello.add_argument("--method", default="none")
    hello.add_argument("--vp", type=int, default=2)
    hello.set_defaults(fn=cmd_hello)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
