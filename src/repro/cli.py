"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-methods``
    The privatization methods and their declared capabilities.
``list-machines``
    Machine presets and their toolchains.
``probe <method> [--json]``
    Run the executed capability probes for one method.
``tables``
    Regenerate the paper's Tables 1 and 3 from probes.
``run <experiment> [--json]``
    Run one experiment driver: fig5, fig6, fig7, fig8, icache, adcirc.
``trace <experiment> [--out F]``
    Run an experiment with Projections-style tracing on; writes a Chrome
    trace-event JSON (open in Perfetto / about:tracing) and a plain-text
    per-PE timeline.
``faults <app> [--kmax K] [--json]``
    Fault-tolerance overhead sweep: failure-free vs. k node crashes on
    a checkpointing Jacobi-3D, with deterministic fault injection.
``bench [--quick] [--serve] [--json] [--out F]``
    Wall-clock (host-time) performance smoke of the event loop itself:
    ULT lifecycle churn, a paper-scale Jacobi run under both execution
    backends (with a byte-identical-timeline determinism check), and a
    figure-6-style context-switch sweep.  ``--serve`` appends a
    load-generator pass against a private job service (cold/warm
    throughput, hit rate, single-flight coalescing, concurrent gc).
    Writes ``BENCH_scale.json``.
``hello [--method M] [--vp N]``
    The Figure 2/3 hello world under a chosen method.
``runs [--store DIR]``
    List the provenance store's run records.
``replay <id> [--store DIR]``
    Re-execute a stored run under the current sources and verify the
    timeline is byte-identical (plus counters/makespan/rollbacks).
``diff <id> <id> [--store DIR]``
    Timeline forensics between two stored runs: spec diff, first
    divergent event (index, PE, kind), counter and metric deltas.
``stats <id> [--compare ID] [--store DIR]``
    Projections-style per-PE utilization and traffic report from a
    stored record; ``--compare`` renders a delta table of two runs.
``pin {run,update,list,add,rm} [...]``
    The pinned-scenario regression corpus (committed manifest of spec ->
    expected timeline SHA-256 + counter totals); ``pin run`` is the CI
    drift gate.
``gc [--keep-pinned] [--max-age-days D] [--max-bytes B]``
    Collect old/oversized store records; pinned specs always survive.
``serve [--socket P | --port N] [--workers W] [--gc-every S]``
    Multi-tenant job service on the provenance cache: accepts
    concurrent JobSpec submissions over a local socket, executes
    misses on a worker pool, serves repeats straight from the store,
    and coalesces identical in-flight submissions onto one execution.

``run``, ``faults``, ``bench`` and ``hello`` accept ``--provenance
[DIR]`` (or the ``REPRO_PROVENANCE`` environment variable) to record
every run they execute into the store (default ``.repro/store``).

Every command exits nonzero when the simulated job fails (e.g. an
unrecoverable fault or an unsupported method/toolchain combination), so
scripts and CI can detect it.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.harness.tables import format_table


def cmd_list_methods(_args) -> int:
    from repro.privatization import get_method, method_names

    rows = []
    for name in method_names():
        m = get_method(name)
        c = m.capabilities
        rows.append([name, c.automation, c.smp_support, c.migration,
                     "yes" if m.uses_funcptr_shim else "no"])
    print(format_table(
        ["method", "automation", "SMP", "migration", "funcptr shim"],
        rows, title="Registered privatization methods"))
    return 0


def cmd_list_machines(_args) -> int:
    from repro.machine import PRESETS

    rows = []
    for name, m in sorted(PRESETS.items()):
        t = m.toolchain
        rows.append([
            name, m.arch.value, m.os.value,
            f"{t.compiler} {'.'.join(map(str, t.compiler_version))}",
            f"ld {'.'.join(map(str, t.linker_version))}",
            t.libc.value, m.cores_per_node,
        ])
    print(format_table(
        ["preset", "arch", "os", "compiler", "linker", "libc",
         "cores/node"],
        rows, title="Machine presets"))
    return 0


def cmd_probe(args) -> int:
    from repro.harness.capabilities import probe_method

    row = probe_method(args.method)
    if getattr(args, "json", False):
        print(json.dumps(dataclasses.asdict(row), sort_keys=True, indent=2))
        return 0
    print(f"method      : {row.display_name}")
    print(f"automation  : {row.automation}")
    print(f"portability : {row.portability}")
    print(f"SMP support : {row.smp_support}")
    print(f"migration   : {row.migration}")
    print("privatizes  : "
          + ", ".join(k for k, v in row.privatizes.items() if v))
    print(f"runs on     : {', '.join(row.works_on) or '(nowhere probed)'}")
    return 0


def cmd_tables(_args) -> int:
    from repro.harness.capabilities import (
        TABLE1_METHODS,
        TABLE3_METHODS,
        capability_table,
    )

    print(capability_table(TABLE1_METHODS,
                           title="Table 1: existing methods"))
    print()
    print(capability_table(TABLE3_METHODS,
                           title="Table 3: incl. the 3 new methods"))
    return 0


#: experiments the ``trace`` subcommand can run with a recorder attached
TRACEABLE_EXPERIMENTS = ("fig5", "fig6", "fig7", "fig8")


def _run_experiment(name: str, args, trace=None, sanitize=None):
    """Run one experiment driver; returns (rows, formatted table)."""
    from repro.harness import experiments as ex

    if name == "fig5":
        rows = ex.startup_experiment(trace=trace, sanitize=sanitize)
        table = format_table(
            ["method", "startup (ms)", "overhead %"],
            [[r.method, r.startup_ns / 1e6, r.overhead_pct] for r in rows],
            title="Figure 5: startup overhead (8x virtualization)")
    elif name == "fig6":
        rows = ex.context_switch_experiment(
            yields_per_rank=getattr(args, "quick_n", None) or 20_000,
            trace=trace, sanitize=sanitize)
        table = format_table(
            ["method", "ns/switch", "delta vs baseline"],
            [[r.method, r.ns_per_switch, r.delta_vs_baseline_ns]
             for r in rows],
            title="Figure 6: ULT context-switch time")
    elif name == "fig7":
        rows = ex.jacobi_access_experiment(trace=trace, sanitize=sanitize)
        table = format_table(
            ["method", "exec (ms)", "relative"],
            [[r.method, r.exec_ns / 1e6, r.rel_to_baseline] for r in rows],
            title="Figure 7: privatized-access overhead (-O2)")
    elif name == "fig8":
        rows = ex.migration_experiment(trace=trace, sanitize=sanitize)
        table = format_table(
            ["method", "heap MB", "migrate (ms)", "moved MB"],
            [[r.method, r.heap_mb, r.migrate_ns / 1e6,
              r.bytes_moved / 2**20] for r in rows],
            title="Figure 8: migration time vs heap")
    elif name == "icache":
        rows = ex.icache_experiment()
        table = format_table(
            ["machine", "method", "fetches", "misses", "miss rate"],
            [[r.machine, r.method, r.accesses, r.misses,
              f"{100 * r.miss_rate:.1f}%"] for r in rows],
            title="Section 4.5: L1 icache misses")
    elif name == "adcirc":
        cores = tuple(int(c) for c in
                      (getattr(args, "cores", None) or "1,2,4,8").split(","))
        _, rows = ex.adcirc_scaling_experiment(cores_list=cores)
        table = format_table(
            ["cores", "best ratio", "baseline (ms)", "best (ms)",
             "speedup %"],
            [[s.cores, s.best_ratio, s.baseline_ns / 1e6, s.best_ns / 1e6,
              s.speedup_pct] for s in rows],
            title="Table 2: ADCIRC speedup over baseline")
    else:
        raise ValueError(f"unknown experiment {name!r}")
    return rows, table


def cmd_run(args) -> int:
    detector = None
    if getattr(args, "sanitize", False):
        if args.experiment not in TRACEABLE_EXPERIMENTS:
            print(f"--sanitize supports: {', '.join(TRACEABLE_EXPERIMENTS)}",
                  file=sys.stderr)
            return 2
        from repro.sanitize import RaceDetector

        detector = RaceDetector()
    try:
        rows, table = _run_experiment(args.experiment, args,
                                      sanitize=detector)
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    findings = detector.sorted_findings() if detector is not None else []
    if getattr(args, "json", False):
        payload = {"experiment": args.experiment,
                   "rows": [dataclasses.asdict(r) for r in rows]}
        if detector is not None:
            payload["sanitize"] = {
                "findings": [f.to_dict() for f in findings],
                "counters": dict(sorted(
                    detector.counters.snapshot().items())),
                "dropped": detector.dropped,
            }
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(table)
        if detector is not None:
            print()
            if findings:
                for f in findings:
                    print(f.format())
                print(f"\nsanitizer: {len(findings)} finding(s)")
            else:
                print("sanitizer: no findings")
    from repro.sanitize.findings import has_errors

    return 1 if has_errors(findings) else 0


def cmd_trace(args) -> int:
    from repro.trace import (
        TraceRecorder,
        render_timeline,
        write_chrome_trace,
    )

    try:
        recorder = TraceRecorder(capacity=args.capacity)
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    try:
        _, table = _run_experiment(args.experiment, args, trace=recorder)
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    print(table)

    out = args.out or f"{args.experiment}-trace.json"
    timeline = render_timeline(recorder)
    timeline_out = args.timeline_out or f"{out}.timeline.txt"
    try:
        nbytes = write_chrome_trace(recorder, out)
        with open(timeline_out, "w") as f:
            f.write(timeline + "\n")
    except OSError as e:
        print(f"cannot write trace: {e}", file=sys.stderr)
        return 2
    print()
    print(timeline)
    print()
    print(f"wrote {out} ({nbytes} bytes, {len(recorder)} events, "
          f"{recorder.dropped} dropped) — open in https://ui.perfetto.dev")
    print(f"wrote {timeline_out}")
    return 0


def cmd_faults(args) -> int:
    from repro.ft import MessageFaults
    from repro.harness.experiments import fault_overhead_experiment

    mf = None
    if args.drop or args.duplicate or args.corrupt:
        mf = MessageFaults(drop=args.drop, duplicate=args.duplicate,
                           corrupt=args.corrupt)
    rows = fault_overhead_experiment(
        kmax=args.kmax, seed=args.seed, nvp=args.nvp, nodes=args.nodes,
        method=args.method, ckpt_interval_ns=args.interval_ns,
        transport=args.transport, recovery=args.recovery,
        message_faults=mf,
    )
    if args.json:
        from repro.harness.jobspec import code_version

        # Each row embeds its seed, transport, recovery, full fault plan
        # and the code version, so any row can be re-run from the JSON
        # alone — and a mismatch attributed to changed sources.
        print(json.dumps(
            {"experiment": "faults", "app": args.app,
             "code_version": code_version(),
             "rows": [dataclasses.asdict(r) for r in rows]},
            sort_keys=True, indent=2))
    else:
        print(format_table(
            ["k", "status", "makespan (ms)", "overhead %", "recovery (ms)",
             "ckpts", "retrans", "replayed", "migrations"],
            [[r.k, r.status, r.makespan_ns / 1e6, r.overhead_pct,
              r.recovery_ns / 1e6, r.checkpoints, r.retransmissions,
              r.replayed, r.migrations]
             for r in rows],
            title=f"Fault-tolerance overhead ({args.app}, "
                  f"seed={args.seed}, transport={args.transport}, "
                  f"recovery={args.recovery})",
        ))
    return 0 if all(r.status == "ok" for r in rows) else 1


def cmd_bench(args) -> int:
    from repro.harness.bench import run_bench

    payload = run_bench(quick=args.quick, nvp=args.nvp, reps=args.reps,
                        serve=args.serve)
    text = json.dumps(payload, sort_keys=True, indent=2)
    if args.out:
        try:
            with open(args.out, "w") as f:
                f.write(text + "\n")
        except OSError as e:
            print(f"cannot write {args.out}: {e}", file=sys.stderr)
            return 2
    if args.json:
        print(text)
    else:
        for stage in payload["stages"]:
            name = stage["name"]
            if "backends" in stage:
                rows = [[b, s["min_s"], s["ops_per_s"]]
                        for b, s in sorted(stage["backends"].items())]
                extra = f" — pooled {stage['speedup_pooled_vs_thread']}x"
                if "trace_identical" in stage:
                    extra += (", timelines identical"
                              if stage["trace_identical"]
                              else ", TIMELINES DIVERGED")
                print(format_table(
                    ["backend", "best wall (s)", f"{stage['unit']}/s"],
                    rows, title=f"{name}{extra}"))
            elif name == "serve":
                c, w = stage["cold"], stage["warm"]
                b = stage.get("batch")
                rows = [
                    ["cold", c["jobs"], c["total_s"], c["jobs_per_s"],
                     "-", c["p50_ms"], c["p99_ms"]],
                    ["warm", w["jobs"], w["total_s"], w["jobs_per_s"],
                     w["hit_rate"], w["p50_ms"], w["p99_ms"]],
                ]
                if b is not None:
                    rows.append(["batch", b["jobs"], b["total_s"],
                                 b["jobs_per_s"], b["hit_rate"],
                                 b["p50_ms"], b["p99_ms"]])
                ident = ("identical" if stage["records_identical"]
                         else "DIVERGED")
                verdict = "ok" if stage["ok"] else "FAILED"
                print(format_table(
                    ["pass", "jobs", "wall (s)", "jobs/s", "hit rate",
                     "p50 ms", "p99 ms"],
                    rows,
                    title=f"serve — warm {stage['speedup_warm_vs_cold']}x "
                          f"over cold, records {ident}, gc cycles "
                          f"{stage['gc']['cycles']} ({verdict})"))
                res = stage.get("resilience")
                if res is not None:
                    print(format_table(
                        ["queue depth", "shed", "retries", "quarantined",
                         "deadline", "lease waits"],
                        [[res["queue_depth"], res["shed"], res["retries"],
                          res["quarantined"], res["deadline_exceeded"],
                          res["lease_waits"]]],
                        title="serve resilience counters"))
            else:
                print(format_table(
                    ["nvp", "wall (s)", "switches/s"],
                    [[r["nvp"], r["wall_s"], r["switches_per_s"]]
                     for r in stage["rows"]],
                    title=f"{name} ({stage['params']['backend']} backend)"))
            print()
        if args.out:
            print(f"wrote {args.out}")
    # The determinism contract is part of the bench's contract: fail
    # loudly if the backends ever produce different simulated timelines
    # (or the serve stage breaks its caching/coalescing invariants).
    ok = all(s.get("trace_identical", True) and s.get("ok", True)
             for s in payload["stages"])
    return 0 if ok else 1


def cmd_check(args) -> int:
    from repro.sanitize.check import check_examples, run_check

    try:
        if args.target == "examples":
            reports = check_examples(args.method, nvp=args.nvp,
                                     static_only=args.static_only)
        else:
            reports = [run_check(args.target, args.method, nvp=args.nvp,
                                 static_only=args.static_only,
                                 slot_size=args.slot_size)]
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         sort_keys=True, indent=2))
    else:
        for r in reports:
            verdict = "clean" if r.ok else "FAILED"
            ran = " (executed)" if r.executed else ""
            print(f"== check {r.target} method={r.method} "
                  f"nvp={r.nvp}{ran}: {verdict}")
            for f in r.findings:
                print(f.format())
            if r.findings:
                print(f"{len(r.findings)} finding(s)")
    return 0 if all(r.ok for r in reports) else 1


def cmd_analyze(args) -> int:
    from repro.analyze import analyze_source
    from repro.analyze.selflint import lint_tree
    from repro.analyze.targets import resolve_targets

    if args.target == "self":
        findings = lint_tree()
        if args.json:
            print(json.dumps([f.to_dict() for f in findings],
                             sort_keys=True, indent=2))
        else:
            verdict = "clean" if not findings else "FAILED"
            print(f"== analyze self (determinism lint of src/repro): "
                  f"{verdict}")
            for f in findings:
                print(f.format())
            if findings:
                print(f"{len(findings)} finding(s)")
        return 0 if not findings else 1

    try:
        triples = resolve_targets(args.target)
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    reports = []
    for label, source, kw in triples:
        if args.method is not None:
            kw = {**kw, "method": args.method}
        if args.suggest:
            kw = {**kw, "suggest": True}
        reports.append(analyze_source(source, target=label, **kw))
    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         sort_keys=True, indent=2))
    else:
        for r in reports:
            verdict = "clean" if r.ok else "FAILED"
            method = f" method={r.method}" if r.method else ""
            print(f"== analyze {r.target}{method}: {verdict} "
                  f"(predicted min method: {r.predicted_method}, "
                  f"{len(r.functions)} function(s), {r.elapsed_ms:.1f} ms)")
            for f in r.findings:
                print(f.format())
            if r.findings:
                print(f"{len(r.findings)} finding(s)")
    return 0 if all(r.ok for r in reports) else 1


def cmd_hello(args) -> int:
    from repro.harness.jobspec import JobSpec, run_spec

    spec = JobSpec(app="hello", nvp=args.vp, method=args.method,
                   machine="generic-linux", layout=(1, 1, 1),
                   slot_size=1 << 24)
    result = run_spec(spec)
    print(f"$ ./hello_world +vp {args.vp}    (method={args.method})")
    for vp in range(args.vp):
        print(result.exit_values[vp])
    return 0


# ---------------------------------------------------------------------------
# Provenance commands
# ---------------------------------------------------------------------------

def _open_store(args):
    from repro.provenance import ProvenanceStore

    return ProvenanceStore(getattr(args, "store", None) or None)


def cmd_runs(args) -> int:
    store = _open_store(args)
    records = sorted(store.records(), key=lambda r: r.created_at)
    if args.json:
        print(json.dumps(
            [{"run_id": r.run_id, "app": r.spec.app, "nvp": r.spec.nvp,
              "method": r.spec.method, "transport": r.spec.transport,
              "recovery": r.spec.recovery, "events": r.events,
              "makespan_ns": r.makespan_ns,
              "timeline_sha256": r.timeline_sha256,
              "created_at": r.created_at}
             for r in records],
            sort_keys=True, indent=2))
        return 0
    if not records:
        print(f"no records in {store.root}")
        return 0
    rows = [[r.run_id[:12], r.spec.app, r.spec.nvp, r.spec.method,
             r.spec.transport, r.spec.recovery, r.events,
             round(r.makespan_ns / 1e6, 3), r.timeline_sha256[:12]]
            for r in records]
    print(format_table(
        ["id", "app", "nvp", "method", "transport", "recovery", "events",
         "makespan (ms)", "timeline sha"],
        rows, title=f"Provenance store {store.root} ({len(rows)} records)"))
    return 0


def cmd_replay(args) -> int:
    from repro.provenance import replay_record

    store = _open_store(args)
    record = store.get(args.id)
    report = replay_record(record, store=store)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        return 0 if report.ok else 1
    s = record.spec
    verdict = "byte-identical" if report.ok else "DIVERGED"
    print(f"replay {record.run_id[:12]} ({s.app}, nvp={s.nvp}, {s.method}, "
          f"{s.transport}/{s.recovery}): {verdict}")
    print(f"  recorded sha256 : {report.expected_sha}")
    print(f"  replayed sha256 : {report.actual_sha}")
    print(f"  events          : {report.expected_events} -> "
          f"{report.actual_events}")
    print(f"  makespan match  : {report.makespan_match}")
    print(f"  counters match  : {report.counters_match}")
    print(f"  rollbacks match : {report.rollbacks_match}")
    for name, (rec, rep) in sorted(report.counter_drift.items()):
        print(f"    {name}: {rec} -> {rep}")
    if report.code_version_changed:
        print("  note: sources changed since this record was written")
    return 0 if report.ok else 1


def cmd_diff(args) -> int:
    from repro.provenance import diff_records

    store = _open_store(args)
    a, b = store.get(args.a), store.get(args.b)
    report = diff_records(a, b, store.load_timeline(a),
                          store.load_timeline(b))
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.format())
    return 0 if report.identical else 1


def cmd_stats(args) -> int:
    from repro.provenance import RunMetrics, compare_metrics

    store = _open_store(args)
    m = RunMetrics.from_record(store.get(args.id))
    if args.compare:
        m2 = RunMetrics.from_record(store.get(args.compare))
        if args.json:
            print(json.dumps({"a": m.to_dict(), "b": m2.to_dict()},
                             sort_keys=True, indent=2))
        else:
            print(compare_metrics(m, m2))
    elif args.json:
        print(json.dumps(m.to_dict(), sort_keys=True, indent=2))
    else:
        print(m.format())
    return 0


def cmd_pin(args) -> int:
    from repro.provenance import (
        PinEntry,
        load_manifest,
        repin,
        save_manifest,
        verify_manifest,
    )

    manifest = args.manifest
    entries = load_manifest(manifest)

    if args.action == "list":
        if not entries:
            print(f"no pinned scenarios in {manifest}")
            return 0
        rows = [[name, e.spec.app, e.spec.nvp, e.spec.method,
                 e.spec.transport, e.spec.recovery,
                 e.timeline_sha256[:12], e.events]
                for name, e in sorted(entries.items())]
        print(format_table(
            ["scenario", "app", "nvp", "method", "transport", "recovery",
             "timeline sha", "events"],
            rows, title=f"Pinned scenarios ({manifest})"))
        return 0

    if args.action == "rm":
        if not args.names:
            print("pin rm: need at least one scenario name", file=sys.stderr)
            return 2
        missing = [n for n in args.names if n not in entries]
        if missing:
            print(f"pin rm: not pinned: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        for n in args.names:
            del entries[n]
        save_manifest(manifest, entries)
        print(f"removed {len(args.names)} scenario(s); "
              f"{len(entries)} remain in {manifest}")
        return 0

    if args.action == "add":
        if len(args.names) != 2:
            print("pin add: usage: pin add <name> <record-id>",
                  file=sys.stderr)
            return 2
        name, rec_id = args.names
        record = _open_store(args).get(rec_id)
        entries[name] = PinEntry.from_record(name, record)
        save_manifest(manifest, entries)
        print(f"pinned {name}: {record.spec.app} nvp={record.spec.nvp} "
              f"timeline {record.timeline_sha256[:12]}")
        return 0

    # run / update: re-execute and compare.
    results = verify_manifest(entries, args.names or None)
    if not results:
        print(f"no pinned scenarios in {manifest}", file=sys.stderr)
        return 2
    drifted = [r for r in results if not r.ok]
    if args.json:
        print(json.dumps({"manifest": manifest, "ok": not drifted,
                          "results": [r.to_dict() for r in results]},
                         sort_keys=True, indent=2))
    else:
        for r in results:
            print(r.format())
    if args.action == "update":
        save_manifest(manifest, repin(entries, results))
        if not args.json:
            print(f"re-pinned {len(results)} scenario(s) in {manifest}")
        return 0
    if drifted and not args.json:
        print(f"\n{len(drifted)}/{len(results)} pinned scenario(s) "
              f"drifted — investigate with `repro diff`, or re-pin "
              f"intentional changes with `repro pin update`")
    return 1 if drifted else 0


def cmd_gc(args) -> int:
    store = _open_store(args)
    keep: frozenset[str] = frozenset()
    if args.keep_pinned:
        from repro.provenance import load_manifest, pinned_spec_digests

        keep = pinned_spec_digests(load_manifest(args.manifest))
    report = store.gc(
        keep=keep,
        max_age_s=(args.max_age_days * 86400.0
                   if args.max_age_days is not None else None),
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        verb = "would delete" if report.dry_run else "deleted"
        print(f"gc {store.root}: scanned {report.scanned}, {verb} "
              f"{report.deleted} ({report.freed_bytes} bytes), protected "
              f"{report.protected} pinned, skipped {report.skipped} "
              f"concurrently-changed, swept {report.swept_tmp} stale tmp, "
              f"{report.remaining} remain")
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import DEFAULT_SOCKET, JobService

    keep: frozenset[str] = frozenset()
    if args.keep_pinned:
        from repro.provenance import load_manifest, pinned_spec_digests

        keep = pinned_spec_digests(load_manifest(args.manifest))
    use_tcp = args.port is not None
    service = JobService(
        _open_store(args),
        workers=args.workers,
        socket_path=None if use_tcp else (args.socket or DEFAULT_SOCKET),
        host=args.host if use_tcp else None,
        port=args.port or 0,
        worker_mode=args.worker_mode,
        max_queue=args.max_queue if args.max_queue > 0 else None,
        retries=args.retries,
        lease_ttl_s=args.lease_ttl if args.lease_ttl > 0 else None,
        enable_chaos=args.chaos_hooks,
        gc_every_s=args.gc_every,
        gc_max_age_s=(args.max_age_days * 86400.0
                      if args.max_age_days is not None else None),
        gc_max_bytes=args.max_bytes,
        gc_keep=keep,
    )

    async def amain() -> None:
        await service.start()
        print(f"repro serve: listening on {service.endpoint} "
              f"({service.workers} {service.worker_mode} worker(s), "
              f"store {service.store.root})", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, service.request_shutdown)
            except NotImplementedError:  # pragma: no cover
                pass
        await service.run()

    asyncio.run(amain())
    s = service.stats
    print(f"repro serve: exiting — {s.submissions} submissions, "
          f"{s.hits} hits, {s.executed} executed, {s.coalesced} coalesced, "
          f"{s.errors} errors, {s.shed} shed, {s.quarantined} quarantined, "
          f"{s.gc_cycles} gc cycles", flush=True)
    return 0


# ---------------------------------------------------------------------------
# Chaos commands
# ---------------------------------------------------------------------------

def cmd_chaos_run(args) -> int:
    from repro.chaos import run_campaign

    store = None if args.no_store else _open_store(args)
    progress = None if (args.json or args.quiet) else print
    report = run_campaign(
        args.seed, args.count, store=store,
        replay=not args.no_replay, shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget, progress=progress,
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        if progress is not None:
            print()
        print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos_shrink(args) -> int:
    from repro.chaos import generate_scenario, run_drill, run_scenario

    store = _open_store(args)
    if args.drill:
        # CI gate: plant a known bug and prove the shrinker converges on
        # a tiny plan whose stored repro replays byte-identically.
        report = run_drill(args.seed, store, budget=args.budget,
                           max_faults=args.max_faults)
        if args.json:
            print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        else:
            verdict = "converged" if report.ok else "FAILED"
            print(f"shrinker drill (seed={args.seed}): {verdict}")
            print(f"  faults in minimal plan : {report.n_faults} "
                  f"(target <= {args.max_faults})")
            print(f"  predicate evaluations  : {report.evaluations}")
            print(f"  repro replay           : "
                  f"{'byte-identical' if report.replay_ok else 'DIVERGED'}")
            for step in report.steps:
                print(f"    {step}")
            if report.run_id:
                print(f"  repro: repro chaos replay {report.run_id[:12]}")
        return 0 if report.ok else 1

    # Re-run one campaign scenario and minimize it if it violates.
    sc = generate_scenario(args.seed, args.index)
    outcome = run_scenario(sc, store=store, shrink=True,
                           shrink_budget=args.budget)
    if args.json:
        print(json.dumps(outcome.to_dict(), sort_keys=True, indent=2))
        return 1 if outcome.violations else 0
    print(outcome.scenario.label(), "->", outcome.status)
    for v in outcome.violations:
        print(f"  - {v}")
    if outcome.shrunk is not None:
        sh = outcome.shrunk
        print(f"  shrunk to {sh['n_faults']} fault(s) in "
              f"{sh['evaluations']} evaluations:")
        print(f"    {sh['plan']}")
    if outcome.run_id and outcome.violations:
        print(f"  repro: repro chaos replay {outcome.run_id[:12]}")
    elif not outcome.violations:
        print("  no invariant violation: nothing to shrink")
    return 1 if outcome.violations else 0


def cmd_chaos_serve(args) -> int:
    from repro.chaos import run_serve_campaign

    progress = None if (args.json or args.quiet) else print
    report = run_serve_campaign(
        args.seed, args.count,
        root=args.root,
        workers=args.workers,
        lease_ttl_s=args.lease_ttl,
        max_queue=args.max_queue,
        verify_twins=not args.no_twins,
        progress=progress,
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        if progress is not None:
            print()
        print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos_replay(args) -> int:
    from repro.provenance import replay_record

    store = _open_store(args)
    record = store.get(args.id)
    report = replay_record(record, store=store)
    ok = report.ok and report.reason_match
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        return 0 if ok else 1
    s = record.spec
    verdict = "byte-identical" if ok else "DIVERGED"
    print(f"chaos replay {record.run_id[:12]} ({s.app}, nvp={s.nvp}, "
          f"{s.method}, {s.transport}/{s.recovery}): {verdict}")
    print(f"  recorded sha256 : {report.expected_sha}")
    print(f"  replayed sha256 : {report.actual_sha}")
    print(f"  outcome match   : {report.reason_match} "
          f"(recorded reason: {record.unrecoverable_reason})")
    print(f"  counters match  : {report.counters_match}")
    for name, (rec, rep) in sorted(report.counter_drift.items()):
        print(f"    {name}: {rec} -> {rep}")
    if report.code_version_changed:
        print("  note: sources changed since this record was written")
    return 0 if ok else 1


def _add_provenance_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--provenance", nargs="?", const="", default=None, metavar="DIR",
        help="record every run into the provenance store at DIR "
             "(default .repro/store, or $REPRO_PROVENANCE)")


def _add_store_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="provenance store directory (default .repro/store, or "
             "$REPRO_PROVENANCE)")


def build_parser() -> argparse.ArgumentParser:
    from repro.provenance import DEFAULT_MANIFEST

    ap = argparse.ArgumentParser(
        prog="repro",
        description="Process-virtualization reproduction toolkit",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods").set_defaults(fn=cmd_list_methods)
    sub.add_parser("list-machines").set_defaults(fn=cmd_list_machines)

    probe = sub.add_parser("probe")
    probe.add_argument("method")
    probe.add_argument("--json", action="store_true",
                       help="emit the capability row as JSON")
    probe.set_defaults(fn=cmd_probe)

    sub.add_parser("tables").set_defaults(fn=cmd_tables)

    run = sub.add_parser("run")
    run.add_argument("experiment",
                     choices=["fig5", "fig6", "fig7", "fig8", "icache",
                              "adcirc"])
    run.add_argument("--cores", help="adcirc: comma-separated core counts")
    run.add_argument("--quick-n", type=int, default=None,
                     help="fig6: yields per rank")
    run.add_argument("--json", action="store_true",
                     help="emit result rows as JSON instead of a table")
    run.add_argument("--sanitize", action="store_true",
                     help="run with the shared-state race detector on; "
                          "exits nonzero on error findings "
                          "(fig5/fig6/fig7/fig8 only)")
    _add_provenance_flag(run)
    run.set_defaults(fn=cmd_run)

    check = sub.add_parser(
        "check",
        help="static binary lint + privatization-compatibility matrix, "
             "then (unless --static-only) a sanitized execution")
    check.add_argument("target",
                       help="hello, jacobi, probe, examples, or "
                            "fixture:<name> (seeded violations)")
    check.add_argument("--method", default="pieglobals")
    check.add_argument("--nvp", type=int, default=8)
    check.add_argument("--slot-size", type=int, default=1 << 26)
    check.add_argument("--static-only", action="store_true",
                       help="skip the sanitized execution phase")
    check.add_argument("--json", action="store_true",
                       help="emit the report(s) as JSON")
    check.set_defaults(fn=cmd_check)

    analyze = sub.add_parser(
        "analyze",
        help="interprocedural static analysis of program sources: "
             "privatization surface, migration/checkpoint safety, "
             "communication shape, and determinism lint (plus the "
             "'self' lint over src/repro)")
    analyze.add_argument("target",
                         help="app name, apps, example:<name>, examples, "
                              "fixture:<name>, fixtures, or self")
    analyze.add_argument("--method", default=None,
                         help="also check that this privatization method "
                              "covers the inferred surface")
    analyze.add_argument("--suggest", action="store_true",
                         help="report privatization-shrink opportunities "
                              "as info findings")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report(s) as JSON")
    analyze.set_defaults(fn=cmd_analyze)

    trace = sub.add_parser(
        "trace",
        help="run an experiment with tracing on; write a Chrome "
             "trace-event JSON and a per-PE text timeline")
    trace.add_argument("experiment", choices=list(TRACEABLE_EXPERIMENTS))
    trace.add_argument("--out", default=None,
                       help="Chrome trace-event JSON path "
                            "(default: <experiment>-trace.json)")
    trace.add_argument("--timeline-out", default=None,
                       help="text timeline path (default: <out>.timeline.txt)")
    trace.add_argument("--quick-n", type=int, default=2000,
                       help="fig6: yields per rank (small default keeps the "
                            "trace within the ring buffer)")
    trace.add_argument("--capacity", type=int, default=1 << 20,
                       help="trace ring-buffer capacity in events")
    trace.set_defaults(fn=cmd_trace)

    faults = sub.add_parser(
        "faults",
        help="failure-free vs. k-crash overhead sweep with deterministic "
             "fault injection and buddy checkpointing")
    faults.add_argument("app", choices=["jacobi"])
    faults.add_argument("--kmax", type=int, default=2,
                        help="sweep k = 0..kmax node crashes")
    faults.add_argument("--seed", type=int, default=20220822,
                        help="fault-plan seed (sweeps are reproducible)")
    faults.add_argument("--nvp", type=int, default=8)
    faults.add_argument("--nodes", type=int, default=4)
    faults.add_argument("--method", default="pieglobals")
    faults.add_argument("--interval-ns", type=int, default=0,
                        help="minimum ns between accepted checkpoints "
                             "(0 = accept every request)")
    faults.add_argument("--transport", choices=["priced", "reliable"],
                        default="priced",
                        help="point-to-point transport: flat-penalty "
                             "pricing or the real ack/retransmit protocol")
    faults.add_argument("--recovery", choices=["global", "local"],
                        default="global",
                        help="rollback scheme after a crash (local needs "
                             "--transport reliable)")
    faults.add_argument("--drop", type=float, default=0.0,
                        help="per-message drop probability")
    faults.add_argument("--duplicate", type=float, default=0.0,
                        help="per-message duplication probability")
    faults.add_argument("--corrupt", type=float, default=0.0,
                        help="per-message corruption probability")
    faults.add_argument("--json", action="store_true",
                        help="emit result rows as JSON instead of a table")
    _add_provenance_flag(faults)
    faults.set_defaults(fn=cmd_faults)

    bench = sub.add_parser(
        "bench",
        help="host wall-clock smoke of the event loop (ULT churn, "
             "Jacobi scale run per backend, ctx-switch sweep); writes "
             "BENCH_scale.json")
    bench.add_argument("--quick", action="store_true",
                       help="shrunken stages for CI (seconds, not minutes)")
    bench.add_argument("--nvp", type=int, default=None,
                       help="Jacobi stage VP count (default 1024; "
                            "64 with --quick)")
    bench.add_argument("--reps", type=int, default=None,
                       help="timed repetitions per measurement (best-of)")
    bench.add_argument("--serve", action="store_true",
                       help="append the job-service load-gen stage "
                            "(cold/warm throughput, hit rate, "
                            "single-flight coalescing, concurrent gc)")
    bench.add_argument("--json", action="store_true",
                       help="print the payload to stdout as JSON")
    bench.add_argument("--out", default="BENCH_scale.json",
                       help="output path (default BENCH_scale.json; "
                            "'' to skip writing)")
    _add_provenance_flag(bench)
    bench.set_defaults(fn=cmd_bench)

    hello = sub.add_parser("hello")
    hello.add_argument("--method", default="none")
    hello.add_argument("--vp", type=int, default=2)
    _add_provenance_flag(hello)
    hello.set_defaults(fn=cmd_hello)

    runs = sub.add_parser(
        "runs", help="list the provenance store's run records")
    _add_store_flag(runs)
    runs.add_argument("--json", action="store_true")
    runs.set_defaults(fn=cmd_runs)

    replay = sub.add_parser(
        "replay",
        help="re-execute a stored run and verify the timeline is "
             "byte-identical under the current sources")
    replay.add_argument("id", help="record id (or unique prefix)")
    _add_store_flag(replay)
    replay.add_argument("--json", action="store_true")
    replay.set_defaults(fn=cmd_replay)

    diff = sub.add_parser(
        "diff",
        help="timeline forensics between two stored runs: spec diff, "
             "first divergent event, counter/metric deltas")
    diff.add_argument("a", help="record id (or unique prefix)")
    diff.add_argument("b", help="record id (or unique prefix)")
    _add_store_flag(diff)
    diff.add_argument("--json", action="store_true")
    diff.set_defaults(fn=cmd_diff)

    stats = sub.add_parser(
        "stats",
        help="Projections-style per-PE utilization / traffic report "
             "from a stored record")
    stats.add_argument("id", help="record id (or unique prefix)")
    stats.add_argument("--compare", metavar="ID", default=None,
                       help="second record: render a delta table instead")
    _add_store_flag(stats)
    stats.add_argument("--json", action="store_true")
    stats.set_defaults(fn=cmd_stats)

    pin = sub.add_parser(
        "pin",
        help="pinned-scenario regression gate: verify committed "
             "timeline/counter expectations against the current sources")
    pin.add_argument("action",
                     choices=["run", "update", "list", "add", "rm"])
    pin.add_argument("names", nargs="*",
                     help="scenario names (run/update/rm), or "
                          "<name> <record-id> for add")
    pin.add_argument("--manifest", default=DEFAULT_MANIFEST,
                     help=f"manifest path (default {DEFAULT_MANIFEST})")
    _add_store_flag(pin)
    pin.add_argument("--json", action="store_true")
    pin.set_defaults(fn=cmd_pin)

    gc = sub.add_parser(
        "gc", help="collect old/oversized provenance records "
                   "(pinned specs always survive)")
    _add_store_flag(gc)
    gc.add_argument("--keep-pinned", action="store_true",
                    help="never collect records whose spec is pinned "
                         "in the manifest")
    gc.add_argument("--manifest", default=DEFAULT_MANIFEST,
                    help="pin manifest for --keep-pinned")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="collect records older than this many days")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="evict oldest records until the store fits")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be deleted without deleting")
    gc.add_argument("--json", action="store_true")
    gc.set_defaults(fn=cmd_gc)

    serve = sub.add_parser(
        "serve",
        help="multi-tenant job service: concurrent JobSpec submissions "
             "over a local socket, misses executed on a worker pool, "
             "repeats served from the provenance store, identical "
             "in-flight submissions coalesced onto one execution")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default .repro/serve.sock)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (with --port; "
                            "default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="listen on TCP instead of the Unix socket "
                            "(0 = ephemeral port, printed at startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker pool size (default 2)")
    serve.add_argument("--worker-mode", choices=["process", "thread"],
                       default="process",
                       help="process workers execute jobs in parallel; "
                            "thread workers serialize (tests/debug)")
    serve.add_argument("--max-queue", type=int, default=256, metavar="N",
                       help="admission watermark: shed new executions "
                            "past N in flight (default 256; <=0 "
                            "disables shedding)")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="retry a job whose worker died up to N "
                            "times before quarantining it (default 2)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="S",
                       help="cross-server execution-lease heartbeat TTL "
                            "(default 30; 0 disables leases)")
    serve.add_argument("--chaos-hooks", action="store_true",
                       help="accept protocol-level fault-injection "
                            "envelopes (service chaos campaigns only; "
                            "never on a real deployment)")
    serve.add_argument("--gc-every", type=float, default=None, metavar="S",
                       help="run the store janitor every S seconds")
    serve.add_argument("--max-age-days", type=float, default=None,
                       help="janitor: collect records older than this")
    serve.add_argument("--max-bytes", type=int, default=None,
                       help="janitor: evict oldest records until the "
                            "store fits")
    serve.add_argument("--keep-pinned", action="store_true",
                       help="janitor never collects pinned specs")
    serve.add_argument("--manifest", default=DEFAULT_MANIFEST,
                       help="pin manifest for --keep-pinned")
    _add_store_flag(serve)
    serve.set_defaults(fn=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic multi-fault campaigns: seeded scenarios over "
             "the full job matrix, invariant-checked, with automatic "
             "plan shrinking of violations")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    crun = chaos_sub.add_parser(
        "run", help="run a seeded campaign; exits nonzero on any "
                    "invariant violation")
    crun.add_argument("--seed", type=int, default=0,
                      help="campaign seed (the scenario sequence is a "
                           "pure function of seed and count)")
    crun.add_argument("--count", type=int, default=50,
                      help="number of scenarios to run")
    crun.add_argument("--no-replay", action="store_true",
                      help="skip the record-and-replay determinism audit "
                           "per scenario")
    crun.add_argument("--no-shrink", action="store_true",
                      help="report violations without minimizing them")
    crun.add_argument("--no-store", action="store_true",
                      help="do not persist scenario records (violating "
                           "repros then have no replay id)")
    crun.add_argument("--shrink-budget", type=int, default=24,
                      help="max predicate evaluations per shrink")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress per-scenario progress lines")
    _add_store_flag(crun)
    crun.add_argument("--json", action="store_true")
    crun.set_defaults(fn=cmd_chaos_run)

    cshrink = chaos_sub.add_parser(
        "shrink", help="minimize one campaign scenario's fault plan "
                       "(or, with --drill, prove the shrinker converges "
                       "on a planted bug)")
    cshrink.add_argument("--seed", type=int, default=0)
    cshrink.add_argument("--index", type=int, default=0,
                         help="scenario index within the campaign")
    cshrink.add_argument("--drill", action="store_true",
                         help="run the seeded known-bug drill instead "
                              "(the CI gate for the shrinker itself)")
    cshrink.add_argument("--budget", type=int, default=32,
                         help="max predicate evaluations")
    cshrink.add_argument("--max-faults", type=int, default=2,
                         help="drill: required size of the minimal plan")
    _add_store_flag(cshrink)
    cshrink.add_argument("--json", action="store_true")
    cshrink.set_defaults(fn=cmd_chaos_shrink)

    cserve = chaos_sub.add_parser(
        "serve", help="service-layer fault campaign against a live "
                      "repro serve subprocess: worker kills, poison "
                      "jobs, deadlines, dropped connections, truncated "
                      "frames, server SIGKILL+restart; verifies no "
                      "accepted submission is lost and every completed "
                      "record matches a fault-free twin")
    cserve.add_argument("--seed", type=int, default=0,
                        help="campaign seed (scenarios are a pure "
                             "function of seed and count)")
    cserve.add_argument("--count", type=int, default=50,
                        help="number of scenarios to run")
    cserve.add_argument("--workers", type=int, default=2,
                        help="server worker pool size")
    cserve.add_argument("--lease-ttl", type=float, default=5.0,
                        help="server lease TTL (short = fast crash "
                             "takeover in the campaign)")
    cserve.add_argument("--max-queue", type=int, default=64,
                        help="server admission watermark")
    cserve.add_argument("--root", default=None, metavar="DIR",
                        help="keep the campaign store/socket under DIR "
                             "(default: a temp dir, deleted after)")
    cserve.add_argument("--no-twins", action="store_true",
                        help="skip the byte-identical twin audit of "
                             "completed records")
    cserve.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    cserve.add_argument("--json", action="store_true")
    cserve.set_defaults(fn=cmd_chaos_serve)

    creplay = chaos_sub.add_parser(
        "replay", help="re-execute a stored chaos repro and verify both "
                       "the timeline and the structured outcome")
    creplay.add_argument("id", help="record id (or unique prefix)")
    _add_store_flag(creplay)
    creplay.add_argument("--json", action="store_true")
    creplay.set_defaults(fn=cmd_chaos_replay)
    return ap


def main(argv: list[str] | None = None) -> int:
    import os

    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    # --provenance [DIR] (or $REPRO_PROVENANCE) turns on automatic
    # recording: every spec-built run the command executes lands in the
    # store, including each point of an experiment sweep.
    store_dir = getattr(args, "provenance", None)
    if store_dir is None:
        store_dir = os.environ.get("REPRO_PROVENANCE")
    disable = None
    if store_dir is not None:
        from repro.provenance import ProvenanceStore, enable_auto_record

        disable = enable_auto_record(
            ProvenanceStore(store_dir or None),
            notify=lambda line: print(line, file=sys.stderr),
        )
    try:
        return args.fn(args)
    except ReproError as e:
        # Simulated-job failure (unrecoverable fault, unsupported
        # toolchain, deadlock, ...): report and exit nonzero so scripts
        # and CI can detect it.
        print(f"error: {type(e).__name__}: {e}", file=sys.stderr)
        return 1
    finally:
        if disable is not None:
            disable()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
