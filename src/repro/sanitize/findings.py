"""Structured sanitizer findings.

Every detector — static or runtime — reports through one record type so
the CLI, the JSON export, and the tests all consume the same shape.
Findings sort deterministically (severity first, then code and
location), which is what makes repeated sanitized runs comparable
byte-for-byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail ``repro check``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnosis.

    ``code`` is the stable detector identifier (e.g. ``reloc-unresolved``
    or ``race-write-read``); tests and CI assert on codes, never on
    message text.
    """

    code: str
    severity: Severity
    message: str
    image: str | None = None     #: ELF image / binary the finding is about
    symbol: str | None = None    #: variable or function symbol, if any
    fix_hint: str = ""
    vp: int | None = None        #: acting virtual rank (runtime findings)
    address: int | None = None   #: simulated address, if any
    epoch: int | None = None     #: scheduler quantum epoch (runtime findings)
    file: str | None = None      #: host source file (analyzer findings)
    line: int | None = None      #: 1-based line in ``file``
    phase: str | None = None     #: "static" | "source" | "runtime"

    def sort_key(self) -> tuple:
        return (
            self.severity.rank,
            self.code,
            self.image or "",
            self.symbol or "",
            -1 if self.vp is None else self.vp,
            0 if self.address is None else self.address,
            self.file or "",
            0 if self.line is None else self.line,
            self.message,
        )

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.image is not None:
            d["image"] = self.image
        if self.symbol is not None:
            d["symbol"] = self.symbol
        if self.fix_hint:
            d["fix_hint"] = self.fix_hint
        if self.vp is not None:
            d["vp"] = self.vp
        if self.address is not None:
            d["address"] = hex(self.address)
        if self.epoch is not None:
            d["epoch"] = self.epoch
        if self.file is not None:
            d["file"] = self.file
        if self.line is not None:
            d["line"] = self.line
        if self.phase is not None:
            d["phase"] = self.phase
        return d

    def format(self) -> str:
        loc = self.image or ""
        if self.symbol:
            loc = f"{loc}:{self.symbol}" if loc else self.symbol
        if self.file is not None:
            pos = self.file if self.line is None else f"{self.file}:{self.line}"
            loc = f"{loc} [{pos}]" if loc else pos
        if self.vp is not None:
            loc = f"{loc} (vp {self.vp})" if loc else f"vp {self.vp}"
        head = f"{self.severity.value}: [{self.code}]"
        if loc:
            head = f"{head} {loc}"
        out = f"{head}: {self.message}"
        if self.fix_hint:
            out += f"\n    hint: {self.fix_hint}"
        return out


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic order: severity, then code/image/symbol/vp/address."""
    return sorted(findings, key=Finding.sort_key)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity is Severity.ERROR for f in findings)
