"""Driver behind ``repro check``: lint a target, optionally execute it
under the runtime sanitizer, and report structured findings.

Kept out of ``repro.sanitize.__init__`` on purpose: this module reaches
into the apps and harness layers (to build the bundled example
programs), which the core sanitize package must not depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.machine import GENERIC_LINUX, MachineModel
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions, Compiler
from repro.program.source import Program, ProgramSource
from repro.sanitize.findings import Finding, Severity, sort_findings
from repro.sanitize.static import (
    StaticLinter,
    compat_findings,
    program_features,
    project_isomalloc,
)

#: targets `repro check` accepts besides ``fixture:<name>``
EXAMPLE_TARGETS = ("hello", "jacobi", "probe")


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation produced."""

    target: str
    method: str
    nvp: int
    findings: list[Finding]
    #: feature flags of the checked program (empty for fixtures)
    features: dict[str, Any] = field(default_factory=dict)
    #: whether the target was also executed under the runtime detector
    executed: bool = False
    #: sanitizer counters from the run (SAN_CHECK / SAN_FINDING)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "method": self.method,
            "nvp": self.nvp,
            "ok": self.ok,
            "executed": self.executed,
            "features": self.features,
            "counters": dict(sorted(self.counters.items())),
            "findings": [f.to_dict() for f in self.findings],
        }


def _hello_program() -> ProgramSource:
    p = Program("hello_world")
    p.add_global("my_rank", -1)

    @p.function()
    def main(ctx):
        ctx.g.my_rank = ctx.mpi.rank()
        ctx.mpi.barrier()
        return f"rank: {ctx.g.my_rank}"

    return p.build()


def _target_source(target: str) -> ProgramSource:
    if target == "hello":
        return _hello_program()
    if target == "jacobi":
        from repro.apps import JacobiConfig, build_jacobi_program

        # Small instance: the lint is layout-driven, not scale-driven.
        return build_jacobi_program(JacobiConfig(n=12, iters=4))
    if target == "probe":
        from repro.harness.capabilities import correctness_program

        return correctness_program()
    raise ValueError(
        f"unknown check target {target!r}; have "
        f"{', '.join(EXAMPLE_TARGETS)} or fixture:<name>"
    )


def run_check(
    target: str,
    method: str = "pieglobals",
    *,
    nvp: int = 8,
    static_only: bool = False,
    slot_size: int = 1 << 26,
    machine: MachineModel = GENERIC_LINUX,
) -> CheckReport:
    """Lint ``target`` (and run it under the detector unless
    ``static_only``); returns the combined report."""
    from repro.privatization.registry import get_method

    if target.startswith("fixture:"):
        name = target.partition(":")[2]
        if name.startswith("ana-"):
            # Analyzer fixtures are source-phase only: no binary to
            # lint, no execution — the defect lives in the bodies.
            from repro.analyze.fixtures import analyze_fixture

            return CheckReport(
                target=target, method=method, nvp=nvp,
                findings=analyze_fixture(name).findings,
            )
        from repro.sanitize.fixtures import run_fixture

        return CheckReport(
            target=target, method=method, nvp=nvp,
            findings=sort_findings(
                _tag_phase(run_fixture(name), _fixture_phase)),
        )

    m = get_method(method)
    source = _target_source(target)
    opts = m.compile_options(CompileOptions(optimize=1), machine)
    extra = []
    if m.uses_funcptr_shim:
        from repro.ampi.funcptr import shim_compile_unit

        extra.append(shim_compile_unit())
    binary: Binary = Compiler(machine.toolchain).compile(
        source, opts, extra_units=extra
    )

    findings: list[Finding] = []
    findings += _tag_phase(StaticLinter().lint_images([binary.image]),
                           "static")
    findings += _tag_phase(compat_findings(binary, m), "static")
    findings += _tag_phase(project_isomalloc(binary, m, nvp, slot_size),
                           "static")

    # Source phase: interprocedural AST analysis of the function bodies.
    # Run without the method so declared-vs-observed mismatches surface
    # once (the static compat matrix already covers method fit).
    from repro.analyze import analyze_source

    findings += analyze_source(source, target=target).findings

    report = CheckReport(
        target=target, method=method, nvp=nvp,
        findings=[], features=program_features(binary),
    )
    if not static_only and not any(
        f.severity is Severity.ERROR for f in findings
    ):
        findings += _tag_phase(
            _execute(binary, m, nvp, slot_size, machine, report), "runtime")
    report.findings = sort_findings(findings)
    return report


def _tag_phase(findings, phase) -> list[Finding]:
    """Stamp a pipeline phase on findings that don't carry one.

    ``phase`` is either the phase string or a ``code -> phase`` callable
    (fixture findings mix detector families).
    """
    pick = phase if callable(phase) else (lambda _code: phase)
    return [f if f.phase else replace(f, phase=pick(f.code)) for f in findings]


def _fixture_phase(code: str) -> str:
    """Sanitizer fixtures mix static and runtime detectors; map by code."""
    head = code.split("-")[0]
    return "runtime" if head in ("race", "stale", "foreign", "use") else "static"


def _execute(binary, method, nvp, slot_size, machine,
             report: CheckReport) -> list[Finding]:
    """Run the target with the race detector on, then lint the live
    loaders for dangling GOT state the run left behind."""
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout
    from repro.sanitize.runtime import RaceDetector

    det = RaceDetector()
    # Two PEs in one process: enough concurrency for cross-rank
    # interleaving, and shared segments are genuinely shared.
    job = AmpiJob(binary, nvp, method=method, machine=machine,
                  layout=JobLayout.single(2), slot_size=slot_size,
                  sanitize=det)
    result = job.run()
    report.executed = True
    report.counters = dict(det.counters.snapshot())
    findings = list(result.sanitize_findings)
    linter = StaticLinter()
    for proc in job.processes:
        findings += linter.lint_loader(proc.loader)
    return findings


def check_examples(
    method: str = "pieglobals", *, nvp: int = 8, static_only: bool = False
) -> list[CheckReport]:
    """``repro check examples``: every bundled example program."""
    return [
        run_check(t, method, nvp=nvp, static_only=static_only)
        for t in EXAMPLE_TARGETS
    ]
