"""Static binary linter over simulated ELF images and live link maps.

Runs *before* execution (or over a live loader after teardown events)
and emits :class:`~repro.sanitize.findings.Finding` records for the
defect classes that break process virtualization:

* ``reloc-unresolved`` — a relocation against a symbol no image defines;
* ``reloc-dangling`` — a relocation whose target storage does not exist
  (a GOT/PLT relocation with no GOT slot, an ABS64 patch slot missing
  from the data segment);
* ``copy-reloc-writable`` — a copy relocation against a writable symbol
  (the executable forks state a shared object keeps mutating);
* ``dup-strong-def`` — the same strong symbol defined by several images;
* ``textrel-pie`` — a runtime relocation patching .text in a PIE image
  (defeats page sharing and, for PIEglobals, per-rank copy hygiene);
* ``got-dangling`` — a live GOT entry resolving into unmapped memory,
  e.g. a torn-down ``dlmopen`` namespace;
* ``iso-overlap`` / ``iso-exhaustion`` — Isomalloc arena projections;
* ``compat-*`` — the privatization-compatibility matrix: program
  features vs. what the selected method actually privatizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.elf.image import ElfImage
from repro.elf.relocation import RelocKind
from repro.elf.symbols import SymbolBinding
from repro.errors import ReproError
from repro.mem.layout import ISOMALLOC_BASE, ISOMALLOC_END
from repro.privatization.registry import get_method
from repro.privatization._util import SHIM_PREFIX
from repro.sanitize.findings import Finding, Severity, sort_findings

if TYPE_CHECKING:  # pragma: no cover
    from repro.elf.loader import DynamicLoader
    from repro.program.binary import Binary


_METHOD_HINT = (
    "use a full-copy method (pieglobals, pipglobals, fsglobals) or "
    "refactor the variable out of shared writable storage"
)


class StaticLinter:
    """Content-level lint over one or more ELF images and link maps."""

    def lint_images(self, images: Sequence[ElfImage]) -> list[Finding]:
        """All image-level checks over ``images`` as one load set."""
        findings: list[Finding] = []
        findings.extend(self._dup_strong_defs(images))
        defined = {
            sym.name
            for img in images
            for sym in img.symbols.globals_()
            if sym.defined
        }
        for img in images:
            findings.extend(self._lint_one(img, images, defined))
        return sort_findings(findings)

    def lint_loader(self, loader: "DynamicLoader") -> list[Finding]:
        """Live-link-map checks: GOT entries must point at mapped memory.

        A GOT slot resolved (e.g. via ``dlsym``) into an image whose
        ``dlmopen`` namespace was since torn down keeps its stale
        address; dereferencing it is a use-after-unmap.
        """
        findings: list[Finding] = []
        for lm in loader.link_maps():
            for slot, addr in lm.got.entries():
                if not addr:
                    continue
                if loader.vm.find(addr) is None:
                    findings.append(Finding(
                        code="got-dangling",
                        severity=Severity.ERROR,
                        message=(
                            f"GOT entry for {slot.symbol!r} points at "
                            f"unmapped address {addr:#x} (torn-down "
                            "namespace or unloaded image)"
                        ),
                        image=lm.image.name,
                        symbol=slot.symbol,
                        address=addr,
                        fix_hint=(
                            "re-resolve the symbol after dlclose, or keep "
                            "a dlopen reference alive while the address "
                            "is in use"
                        ),
                    ))
        return sort_findings(findings)

    # -- per-image checks ---------------------------------------------------

    def _dup_strong_defs(
        self, images: Sequence[ElfImage]
    ) -> Iterable[Finding]:
        strong: dict[str, list[str]] = {}
        for img in images:
            for sym in img.symbols.globals_():
                if sym.defined and sym.binding is SymbolBinding.GLOBAL:
                    strong.setdefault(sym.name, []).append(img.name)
        for name, owners in sorted(strong.items()):
            if len(owners) < 2 or name.startswith(SHIM_PREFIX):
                continue
            yield Finding(
                code="dup-strong-def",
                severity=Severity.ERROR,
                message=(
                    f"strong symbol {name!r} defined by "
                    f"{len(owners)} images: {', '.join(sorted(owners))} — "
                    "interposition order decides which copy every image "
                    "sees, and per-rank loads may disagree"
                ),
                image=sorted(owners)[0],
                symbol=name,
                fix_hint=(
                    "make all but one definition weak, or rename the "
                    "colliding symbols"
                ),
            )

    def _lint_one(
        self,
        img: ElfImage,
        images: Sequence[ElfImage],
        defined: set[str],
    ) -> Iterable[Finding]:
        for reloc in img.relocations:
            if reloc.symbol.startswith(SHIM_PREFIX):
                continue
            sym = img.symbols.lookup(reloc.symbol)
            if sym is None:
                yield Finding(
                    code="reloc-unresolved",
                    severity=Severity.ERROR,
                    message=(
                        f"{reloc.kind.value} relocation references "
                        f"{reloc.symbol!r}, which is absent from the "
                        "symbol table"
                    ),
                    image=img.name,
                    symbol=reloc.symbol,
                    fix_hint="link the object that defines the symbol",
                )
                continue
            if not sym.defined and reloc.symbol not in defined:
                yield Finding(
                    code="reloc-unresolved",
                    severity=Severity.ERROR,
                    message=(
                        f"{reloc.kind.value} relocation references "
                        f"{reloc.symbol!r}, undefined here and provided "
                        "by no loaded image"
                    ),
                    image=img.name,
                    symbol=reloc.symbol,
                    fix_hint=(
                        "add the providing library to DT_NEEDED or link "
                        "it statically"
                    ),
                )
                continue
            if (reloc.kind in (RelocKind.GOT_ENTRY, RelocKind.PLT_CALL)
                    and reloc.symbol not in img.got):
                yield Finding(
                    code="reloc-dangling",
                    severity=Severity.ERROR,
                    message=(
                        f"{reloc.kind.value} relocation for "
                        f"{reloc.symbol!r} has no GOT slot to land in"
                    ),
                    image=img.name,
                    symbol=reloc.symbol,
                    fix_hint="re-link; the GOT and relocation tables "
                             "disagree (corrupt or hand-edited image)",
                )
            elif reloc.kind is RelocKind.ABS64:
                _, _, slot = reloc.where.partition(":")
                if (reloc.where.startswith("data:")
                        and slot not in img.data):
                    yield Finding(
                        code="reloc-dangling",
                        severity=Severity.ERROR,
                        message=(
                            f"abs64 relocation patches data slot "
                            f"{slot!r}, which the data segment does not "
                            "contain"
                        ),
                        image=img.name,
                        symbol=reloc.symbol,
                        fix_hint="re-link; the patch target was dropped "
                                 "from the layout",
                    )
            elif reloc.kind is RelocKind.COPY:
                yield from self._check_copy_reloc(img, images, reloc)
            if (img.is_pie and reloc.needs_runtime_work
                    and reloc.where.startswith("text")):
                yield Finding(
                    code="textrel-pie",
                    severity=Severity.ERROR,
                    message=(
                        f"{reloc.kind.value} relocation patches .text "
                        f"({reloc.where}) in PIE image — the loader must "
                        "make code pages writable, and per-rank code "
                        "copies diverge from the file"
                    ),
                    image=img.name,
                    symbol=reloc.symbol,
                    fix_hint="compile with -fPIC so the access goes "
                             "through the GOT instead of patched text",
                )

    def _check_copy_reloc(self, img, images, reloc) -> Iterable[Finding]:
        # Writable iff some image lays the symbol out in its (mutable)
        # data segment; const variables live in rodata.
        for other in images:
            if other is img:
                continue
            var = other.data.vars.get(reloc.symbol)
            if var is not None and not var.const:
                yield Finding(
                    code="copy-reloc-writable",
                    severity=Severity.ERROR,
                    message=(
                        f"copy relocation duplicates writable symbol "
                        f"{reloc.symbol!r} from {other.name!r} into the "
                        "executable; the two copies update "
                        "independently"
                    ),
                    image=img.name,
                    symbol=reloc.symbol,
                    fix_hint="build the executable as PIE (copy "
                             "relocations only exist for ET_EXEC) or "
                             "export an accessor instead of the object",
                )
                return


# ---------------------------------------------------------------------------
# Isomalloc projections
# ---------------------------------------------------------------------------

def project_isomalloc(
    binary: "Binary",
    method: Any,
    nvp: int,
    slot_size: int,
    stack_bytes: int = 64 * 1024,
) -> list[Finding]:
    """Predict whether ``nvp`` ranks fit the Isomalloc arena *before*
    paying for a failed startup.

    ``iso-overlap``: the arena itself spills past the reserved VA range
    (globally-unique slots would collide with the system mmap area).
    ``iso-exhaustion``: one rank's projected private footprint (stack +
    privatized variables + per-rank segment copies) exceeds its slot.
    """
    from repro.privatization.pieglobals import PieGlobals

    method = get_method(method)
    findings: list[Finding] = []
    arena_end = ISOMALLOC_BASE + nvp * slot_size
    if arena_end > ISOMALLOC_END:
        findings.append(Finding(
            code="iso-overlap",
            severity=Severity.ERROR,
            message=(
                f"Isomalloc arena for {nvp} ranks x {slot_size} B ends at "
                f"{arena_end:#x}, past the reserved area end "
                f"{ISOMALLOC_END:#x} — slots would overlap the system "
                "mmap region and lose global uniqueness"
            ),
            fix_hint="shrink slot_size or nvp so the arena fits the "
                     "reserved VA range",
        ))
    image = binary.image
    priv_bytes = sum(
        v.size
        for seg in (image.data, image.tls)
        for v in seg.vars.values()
        if method.privatizes_var(v)
    )
    projected = stack_bytes + priv_bytes
    if isinstance(method, PieGlobals):
        projected += image.load_size
    if projected > slot_size:
        findings.append(Finding(
            code="iso-exhaustion",
            severity=Severity.ERROR,
            message=(
                f"projected per-rank footprint {projected} B (stack "
                f"{stack_bytes} + privatized {priv_bytes}"
                + (f" + segments {image.load_size}"
                   if isinstance(method, PieGlobals) else "")
                + f") exceeds the {slot_size} B Isomalloc slot"
            ),
            image=image.name,
            fix_hint="raise slot_size (virtual reservation, not RSS) or "
                     "lower the per-rank footprint",
        ))
    return sort_findings(findings)


# ---------------------------------------------------------------------------
# Privatization-compatibility matrix
# ---------------------------------------------------------------------------

def program_features(binary: "Binary") -> dict[str, Any]:
    """Feature flags of a program the compatibility matrix weighs."""
    image = binary.image
    unsafe_globals, unsafe_statics, tls_vars = [], [], []
    for seg in (image.data, image.tls):
        for var in seg.vars.values():
            if var.name.startswith(SHIM_PREFIX) or not var.unsafe:
                continue
            if var.tls:
                tls_vars.append(var.name)
            elif var.static:
                unsafe_statics.append(var.name)
            else:
                unsafe_globals.append(var.name)
    funcptrs = sorted(
        var for var, target in image.addr_inits.items()
        if (sym := image.symbols.lookup(target)) is not None
        and sym.section == "text"
    )
    return {
        "unsafe_globals": sorted(unsafe_globals),
        "unsafe_statics": sorted(unsafe_statics),
        "tls_vars": sorted(tls_vars),
        "function_pointers": funcptrs,
        "dynamic_libs": sorted(image.needed),
        "static_ctors": list(image.static_ctors),
        "pie": image.is_pie,
        "language": binary.source.language,
    }


def predict_privatization(method: Any, binary: "Binary") -> dict[str, bool]:
    """Per-variable prediction: does ``method`` preserve per-rank
    semantics for each variable of ``binary``?

    Safe (const / write-once-same) variables are always fine; unsafe
    ones are fine exactly when the method privatizes them.  This is the
    static mirror of :func:`repro.harness.capabilities.probe_correctness`
    — the executed probe and this prediction must agree, which the test
    suite asserts method x feature.
    """
    method = get_method(method)
    out: dict[str, bool] = {}
    for seg in (binary.image.data, binary.image.rodata, binary.image.tls):
        for var in seg.vars.values():
            if var.name.startswith(SHIM_PREFIX):
                continue
            out[var.name] = (not var.unsafe) or method.privatizes_var(var)
    return out


def compat_findings(binary: "Binary", method: Any) -> list[Finding]:
    """Compatibility-matrix check: one finding per variable the selected
    method leaves shared-and-mutable, plus any structural incompatibility
    the method itself declares (``validate_binary``)."""
    method = get_method(method)
    findings: list[Finding] = []
    try:
        method.validate_binary(binary)
    except ReproError as e:
        findings.append(Finding(
            code="compat-binary",
            severity=Severity.ERROR,
            message=f"{method.name} rejects this binary: {e}",
            image=binary.image.name,
            fix_hint="pick a method whose requirements the build meets "
                     "(see `repro list-methods`)",
        ))
    prediction = predict_privatization(method, binary)
    for seg in (binary.image.data, binary.image.tls):
        for var in seg.vars.values():
            if var.name.startswith(SHIM_PREFIX) or not var.unsafe:
                continue
            if prediction[var.name]:
                continue
            if var.tls:
                code, hint = "compat-shared-tls", (
                    "this method does not switch TLS per rank; use "
                    "tlsglobals/mpc or a full-copy method"
                )
            elif var.static:
                code, hint = "compat-unprivatized-static", (
                    "static-linkage variables are invisible to "
                    "GOT-based methods; " + _METHOD_HINT
                )
            else:
                code, hint = "compat-unprivatized-global", (
                    "tag it thread_local for tlsglobals, or "
                    + _METHOD_HINT
                )
            findings.append(Finding(
                code=code,
                severity=Severity.ERROR,
                message=(
                    f"mutable {'TLS ' if var.tls else ''}"
                    f"{'static ' if var.static else ''}variable "
                    f"{var.name!r} stays shared under "
                    f"{method.name}: concurrent ranks will race on it"
                ),
                image=binary.image.name,
                symbol=var.name,
                fix_hint=hint,
            ))
    return sort_findings(findings)
