"""Seeded-violation fixtures: one per sanitizer detector class.

Each fixture builds the *smallest* program/loader/job state that
genuinely exhibits one defect, runs the relevant detector, and returns
its findings.  They serve three masters:

* ``repro check fixture:<name>`` — a demo of each diagnostic;
* the test suite — asserts each fixture yields exactly its
  :data:`EXPECTED` codes (and that the same program is *clean* under a
  real privatization method where that contrast is meaningful);
* CI's check-smoke step — the end-to-end "the sanitizer still catches
  what it claims to catch" gate.

Violations are seeded the way real corruption arrives: images are
mutated post-link (relocation tables and segment layouts disagreeing is
exactly what a corrupt or hand-edited image looks like), loader/GOT
state is aged via genuine ``dlmopen``/``dlclose`` cycles, and runtime
findings come from actually running unprivatized jobs.
"""

from __future__ import annotations

from typing import Callable

from repro.elf.image import ElfType
from repro.elf.relocation import Relocation, RelocKind
from repro.elf.symbols import Symbol, SymbolBinding, SymbolKind
from repro.machine import GENERIC_LINUX
from repro.program.binary import Binary
from repro.program.compiler import CompileOptions, Compiler
from repro.program.source import Program
from repro.sanitize.findings import Finding
from repro.sanitize.runtime import RaceDetector
from repro.sanitize.static import StaticLinter, project_isomalloc

#: fixture name -> exactly the finding codes it must produce
EXPECTED: dict[str, set[str]] = {}
_FIXTURES: dict[str, Callable[[], list[Finding]]] = {}


def fixture_names() -> list[str]:
    return sorted(_FIXTURES)


def run_fixture(name: str) -> list[Finding]:
    try:
        fn = _FIXTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown fixture {name!r}; have: {', '.join(fixture_names())}"
        ) from None
    return fn()


def _fixture(name: str, expected: set[str]):
    def deco(fn: Callable[[], list[Finding]]):
        _FIXTURES[name] = fn
        EXPECTED[name] = expected
        return fn
    return deco


# -- building blocks --------------------------------------------------------

def _compile(program: Program, method: str = "pieglobals") -> Binary:
    from repro.privatization.registry import get_method

    m = get_method(method)
    opts = m.compile_options(CompileOptions(optimize=1), GENERIC_LINUX)
    return Compiler(GENERIC_LINUX.toolchain).compile(program.build(), opts)


def _app() -> Binary:
    p = Program("sanapp")
    p.add_global("app_state", 0)

    @p.function()
    def main(ctx):
        ctx.g.app_state = ctx.mpi.rank()
        return ctx.g.app_state

    return _compile(p)


def _shared_lib() -> Binary:
    p = Program("libshared")
    p.add_global("shared_counter", 0)
    p.set_entry("lib_touch")

    @p.function()
    def lib_touch(ctx):
        return ctx.g.shared_counter

    return _compile(p)


def _racy_program() -> Program:
    """Mutable global + static + TLS — the full unsafe feature set."""
    p = Program("racy")
    p.add_global("g_count", 0)
    p.add_static("s_count", 0)
    p.add_global("t_count", 0, tls=True)

    @p.function()
    def main(ctx):
        ctx.g.g_count = ctx.g.g_count + ctx.mpi.rank() + 1
        ctx.g.s_count = ctx.g.s_count + 1
        ctx.g.t_count = ctx.g.t_count + 1
        ctx.mpi.barrier()
        return (ctx.g.g_count, ctx.g.s_count, ctx.g.t_count)

    return p


def _mig_program() -> Program:
    """Write a global, migrate cross-process, read it back."""
    p = Program("migfix")
    p.add_global("x", 0)

    @p.function()
    def main(ctx):
        ctx.g.x = ctx.mpi.rank() * 10
        ctx.mpi.barrier()
        if ctx.mpi.rank() == 0:
            ctx.mpi.migrate_to(1)
        ctx.mpi.barrier()
        return ctx.g.x == ctx.mpi.rank() * 10

    return p


# -- static linter fixtures -------------------------------------------------

@_fixture("reloc-unresolved", {"reloc-unresolved"})
def _fx_reloc_unresolved() -> list[Finding]:
    b = _app()
    # A relocation against a symbol no image ever defined: the classic
    # under-linked build that only fails at first call.
    b.image.got.add("ghost_fn", is_func=True)
    b.image.relocations.append(
        Relocation(RelocKind.PLT_CALL, "ghost_fn")
    )
    return StaticLinter().lint_images([b.image])


@_fixture("reloc-dangling", {"reloc-dangling"})
def _fx_reloc_dangling() -> list[Finding]:
    b = _app()
    # Symbol exists, but the GOT has no slot for the relocation to
    # land in — relocation table and GOT layout disagree.
    b.image.symbols.define(
        Symbol("orphan_obj", SymbolKind.OBJECT, SymbolBinding.GLOBAL, "data")
    )
    b.image.relocations.append(
        Relocation(RelocKind.GOT_ENTRY, "orphan_obj")
    )
    return StaticLinter().lint_images([b.image])


@_fixture("copy-reloc-writable", {"copy-reloc-writable"})
def _fx_copy_reloc() -> list[Finding]:
    app, lib = _app(), _shared_lib()
    # Fixed-address executable taking a load-time copy of the library's
    # mutable counter; the library keeps updating its own copy.
    app.image.etype = ElfType.ET_EXEC
    app.image.symbols.define(
        Symbol("shared_counter", SymbolKind.OBJECT, SymbolBinding.GLOBAL,
               "data", defined=False)
    )
    app.image.relocations.append(
        Relocation(RelocKind.COPY, "shared_counter")
    )
    return StaticLinter().lint_images([app.image, lib.image])


@_fixture("dup-strong-def", {"dup-strong-def"})
def _fx_dup_strong() -> list[Finding]:
    app, lib = _app(), _shared_lib()
    # Both images export a strong definition of the same object.
    lib.image.symbols.define(
        Symbol("app_state", SymbolKind.OBJECT, SymbolBinding.GLOBAL, "data")
    )
    return StaticLinter().lint_images([app.image, lib.image])


@_fixture("textrel-pie", {"textrel-pie"})
def _fx_textrel() -> list[Finding]:
    b = _app()
    # An absolute patch inside .text of a PIE image — the relocation the
    # -fPIC build exists to avoid.
    b.image.relocations.append(
        Relocation(RelocKind.ABS64, "app_state", where="text:0x40")
    )
    return StaticLinter().lint_images([b.image])


@_fixture("got-dangling", {"got-dangling"})
def _fx_got_dangling() -> list[Finding]:
    from repro.elf.loader import DynamicLoader
    from repro.mem.address_space import VirtualMemory

    loader = DynamicLoader(VirtualMemory(), GENERIC_LINUX.toolchain,
                           GENERIC_LINUX.costs)
    app = loader.dlopen(_app().image)
    lib = loader.dlmopen(_shared_lib().image)
    # Cache a dlsym result in the app's GOT, then tear the library's
    # namespace down: the cached address now points at unmapped memory.
    stale = loader.dlsym(lib, "shared_counter")
    slot = next(iter(app.got.template))
    app.got.resolve(slot.symbol, stale)
    loader.dlclose(lib)
    return StaticLinter().lint_loader(loader)


@_fixture("iso-overlap", {"iso-overlap"})
def _fx_iso_overlap() -> list[Finding]:
    # 2^20 ranks x 1 GiB slots: the arena runs past its reserved VA end.
    return project_isomalloc(_app(), "none", nvp=1 << 20, slot_size=1 << 30)


@_fixture("iso-exhaustion", {"iso-exhaustion"})
def _fx_iso_exhaustion() -> list[Finding]:
    # PIEglobals copies the whole load segment per rank; a 64 KiB slot
    # cannot hold stack + segment copies.
    return project_isomalloc(_app(), "pieglobals", nvp=4, slot_size=1 << 16)


@_fixture("compat-none", {"compat-shared-tls", "compat-unprivatized-static",
                          "compat-unprivatized-global"})
def _fx_compat_none() -> list[Finding]:
    from repro.sanitize.static import compat_findings

    return compat_findings(_compile(_racy_program(), "none"), "none")


@_fixture("compat-binary", {"compat-binary"})
def _fx_compat_binary() -> list[Finding]:
    from repro.sanitize.static import compat_findings

    # Photran rewrites Fortran COMMON blocks; a C binary is structurally
    # incompatible no matter what it contains.
    return compat_findings(_compile(_racy_program(), "none"), "photran")


# -- runtime detector fixtures ----------------------------------------------

def _run_sanitized(program: Program, method: str, *, nvp: int = 4,
                   layout=None, slot_size: int = 1 << 26) -> list[Finding]:
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout

    job = AmpiJob(program.build(), nvp, method=method,
                  layout=layout or JobLayout.single(2),
                  slot_size=slot_size, sanitize=True)
    return job.run().sanitize_findings


@_fixture("race-shared-globals", {"race-write-read", "race-write-write"})
def _fx_races() -> list[Finding]:
    return _run_sanitized(_racy_program(), "none")


@_fixture("use-after-migrate", {"use-after-migrate"})
def _fx_use_after_migrate() -> list[Finding]:
    from repro.charm.node import JobLayout

    return _run_sanitized(_mig_program(), "none", nvp=2,
                          layout=JobLayout(1, 2, 1))


def _migrating_job(detector: RaceDetector):
    """A started 2-process job about to migrate vp 0 cross-process."""
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout

    job = AmpiJob(_mig_program().build(), 2, method="none",
                  layout=JobLayout(1, 2, 1), slot_size=1 << 26,
                  sanitize=detector)
    job.start()
    return job


@_fixture("stale-got", {"stale-got"})
def _fx_stale_got() -> list[Finding]:
    from repro.elf.got import GotTemplate

    det = RaceDetector()
    job = _migrating_job(det)
    rank = job.rank_of(0)
    # Seed what a buggy GOT-swapping method would leave behind: a
    # per-rank GOT whose entry still holds a source-process address
    # that exists in no destination mapping.
    tmpl = GotTemplate()
    tmpl.add("lost_obj")
    got = tmpl.instantiate()
    got.resolve("lost_obj", 0xDEAD_0000)
    rank.method_data["got"] = got
    job.migration_engine.migrate(rank, job.pes[1])
    return det.sorted_findings()


@_fixture("stale-tls", {"stale-tls"})
def _fx_stale_tls() -> list[Finding]:
    det = RaceDetector()
    job = _migrating_job(det)
    rank = job.rank_of(0)
    src_proc = rank.pe.process
    # Seed a TLS block living in a source-process-private mapping (the
    # loader's segment area) instead of the rank's Isomalloc slot.
    lm = next(iter(src_proc.loader.link_maps()))
    rank.tls_instance = job.binary.image.tls.instantiate(lm.data.base)
    job.migration_engine.migrate(rank, job.pes[1])
    findings = det.sorted_findings()
    # The seeded TLS block also makes the data segment route "stale";
    # only the TLS diagnosis is this fixture's subject.
    return [f for f in findings if f.code == "stale-tls"]


@_fixture("stale-endpoint-delivery", {"stale-endpoint-delivery"})
def _fx_stale_endpoint() -> list[Finding]:
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout
    from repro.ft.plan import FaultPlan, MessageFaults
    from repro.ft.prng import CounterRng

    p = Program("staleend")
    p.add_global("pad", 0)

    @p.function()
    def main(ctx):
        mpi = ctx.mpi
        mpi.init()
        if mpi.rank() == 0:
            mpi.send(1.25, dest=1, tag=7)
        else:
            # Move cross-process while the dropped frame sits in its
            # retransmission backoff (10 us << the 50 us base RTO), so
            # the retry lands on the PE this rank just left.
            ctx.compute(10_000)
            mpi.migrate_to(0)
            mpi.recv(source=0, tag=7)
        mpi.finalize()
        return mpi.rank()

    # Pick a plan seed whose first fault draw drops the job's first (and
    # only) point-to-point frame and whose second lets the retry through.
    drop = 0.5
    seed = next(s for s in range(1 << 16)
                if CounterRng(s, "msg").uniform(0) < drop
                and CounterRng(s, "msg").uniform(1) >= drop)
    plan = FaultPlan(seed=seed, message_faults=MessageFaults(drop=drop))
    job = AmpiJob(p.build(), 2, method="none", layout=JobLayout(1, 2, 1),
                  slot_size=1 << 26, sanitize=True,
                  fault_plan=plan, transport="reliable")
    findings = job.run().sanitize_findings
    # Running unprivatized also surfaces shared-global noise on some
    # platforms; only the transport diagnosis is this fixture's subject.
    return [f for f in findings if f.code == "stale-endpoint-delivery"]


@_fixture("foreign-write", {"foreign-write"})
def _fx_foreign_write() -> list[Finding]:
    from repro.program.context import AccessRoute

    det = RaceDetector()
    job = _migrating_job(det)
    rank = job.rank_of(0)
    view = rank.ctx.view
    # Reroute vp 0's global into vp 1's Isomalloc slot — the aliasing
    # bug a wild pointer (or an off-by-one slot computation) produces.
    other_slot = job.rank_of(1).stack_mapping.start
    old = view.routes["x"]
    view.routes["x"] = AccessRoute(
        old.instance.image.instantiate(other_slot), old.kind
    )
    job.run()
    return [f for f in det.sorted_findings() if f.code == "foreign-write"]
