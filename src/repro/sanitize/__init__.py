"""Privatization sanitizer: static binary lint + runtime race detection.

The paper's whole contribution is closing one bug class — virtualized
ranks sharing mutable global/static state through writable segments, the
GOT, and TLS.  ``repro.sanitize`` turns the simulator from a tool that
can *demonstrate* that bug (privatization=none corrupts Jacobi) into one
that can *diagnose* it:

* :mod:`repro.sanitize.static` — a linter over :mod:`repro.elf` images
  and live link maps, run *before* (or after) execution: unresolved and
  dangling relocations, copy relocations against writable symbols,
  duplicate strong definitions across images, text relocations in PIE
  images, GOT entries pointing into torn-down ``dlmopen`` namespaces,
  Isomalloc slot projections, and the privatization-compatibility
  matrix (program features vs. the selected method).
* :mod:`repro.sanitize.runtime` — a TSan-analog for the simulated
  machine: shadow state records the last writer rank and access epoch
  per (segment instance, variable); scheduler/AMPI hooks flag
  cross-rank write→read on unprivatized globals, stale GOT/TLS after a
  migration, use-after-migrate touches, and writes landing in another
  rank's Isomalloc slot.

Both layers follow ``repro.trace``'s zero-overhead-when-off design rule:
with the sanitizer off, no hot-path code changes at all (the detector
lives in a :class:`~repro.program.context.GlobalsView` subclass that is
only constructed when sanitizing), so timelines stay byte-identical.
"""

from repro.sanitize.findings import Finding, Severity, sort_findings
from repro.sanitize.runtime import RaceDetector, SanitizedGlobalsView
from repro.sanitize.static import (
    StaticLinter,
    compat_findings,
    predict_privatization,
    program_features,
    project_isomalloc,
)

__all__ = [
    "Finding",
    "Severity",
    "sort_findings",
    "RaceDetector",
    "SanitizedGlobalsView",
    "StaticLinter",
    "compat_findings",
    "predict_privatization",
    "program_features",
    "project_isomalloc",
]
