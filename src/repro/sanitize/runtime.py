"""Runtime shared-state race detector — a TSan analog for the simulator.

Shadow state is keyed by (segment instance, variable): each write
records the last-writer rank and the scheduler epoch (quantum count) it
happened in.  Hooks in the globals view, the scheduler, and the
migration engine then flag the four runtime defect classes:

``race-write-read`` / ``race-write-write``
    A rank reads (or rewrites) a mutable variable last written by a
    *different* rank through the *same* storage — exactly the
    Figure 2/3 unprivatized-global bug, caught at the access instead of
    in the output.
``foreign-write``
    A write lands inside another rank's Isomalloc slot (scribbling over
    memory that will migrate with somebody else).
``stale-got`` / ``stale-tls``
    After a cross-process migration, the rank's private GOT or TLS
    block points at memory not mapped in the destination process.
``use-after-migrate``
    The rank touches storage that stayed behind in the source process
    after it migrated (shared segments under none/tlsglobals).

Zero-overhead-when-off rule (same as ``repro.trace``): nothing here is
consulted unless the job was built with ``sanitize=...``; the only
integration points are a :class:`GlobalsView` *subclass* that is only
constructed when sanitizing, and ``is not None`` guards hoisted out of
the scheduler/migration hot paths.  The detector reads simulated clocks
but never advances them, so sanitized timelines equal unsanitized ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.elf.got import GotInstance
from repro.perf.counters import (
    CounterSet,
    EV_SAN_CHECK,
    EV_SAN_FINDING,
)
from repro.program.context import AccessRoute, GlobalsView
from repro.privatization._util import SHIM_PREFIX
from repro.sanitize.findings import Finding, Severity, sort_findings

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.migration import MigrationRecord
    from repro.charm.vrank import VirtualRank
    from repro.mem.isomalloc import IsomallocArena
    from repro.perf.clock import SimClock
    from repro.trace.recorder import TraceRecorder


class SanitizedGlobalsView(GlobalsView):
    """A :class:`GlobalsView` that reports every access to the detector.

    Constructed by the runtime *instead of* the plain view when
    sanitizing; the plain view's hot path is untouched when off.
    """

    __slots__ = ("probe",)

    def __init__(self, *args: Any, probe: "_RankProbe", **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.probe = probe

    def read(self, name: str) -> Any:
        value = super().read(name)
        self.probe.on_access(name, self.routes[name], False)
        return value

    def write(self, name: str, value: Any) -> None:
        super().write(name, value)
        self.probe.on_access(name, self.routes[name], True)

    def charge_bulk(self, name: str, count: int) -> int:
        ns = super().charge_bulk(name, count)
        # A modelled inner loop reads the variable `count` times; one
        # observation is enough for the happens-before bookkeeping.
        if count > 0:
            self.probe.on_access(name, self.routes[name], False)
        return ns


class _RankProbe:
    """Per-rank binding: (vp, clock) closed over the shared detector."""

    __slots__ = ("vp", "clock", "detector")

    def __init__(self, vp: int, clock: "SimClock", detector: "RaceDetector"):
        self.vp = vp
        self.clock = clock
        self.detector = detector

    def on_access(self, name: str, route: AccessRoute, is_write: bool) -> None:
        self.detector.on_access(self.vp, name, route, is_write,
                                self.clock.now)


class RaceDetector:
    """Job-wide shadow state + findings accumulator.

    One detector can observe several jobs (``repro run --sanitize``
    threads one through a whole experiment sweep); findings carry enough
    context to stay meaningful across jobs.
    """

    def __init__(
        self,
        *,
        counters: CounterSet | None = None,
        trace: "TraceRecorder | None" = None,
        trace_pid: int = 0,
        max_findings: int = 1024,
    ):
        self.counters = counters if counters is not None else CounterSet()
        self.trace = trace
        self.trace_pid = trace_pid
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        #: findings dropped after ``max_findings`` (still counted)
        self.dropped = 0
        #: scheduler quantum count — the "access epoch" shadow cells record
        self.epoch = 0
        self.job_name = ""
        self._arena: "IsomallocArena | None" = None
        #: (id(instance), var) -> (last writer vp, write epoch)
        self._last_write: dict[tuple[int, str], tuple[int, int]] = {}
        #: (id(instance), var) -> (is the variable unsafe, its address)
        self._cell_info: dict[tuple[int, str], tuple[bool, int]] = {}
        #: vp -> {id(instance): route name} of storage left behind by a
        #: cross-process migration (touching it is use-after-migrate)
        self._stale: dict[int, dict[int, str]] = {}
        self._seen: set[tuple] = set()

    # -- wiring (called by AmpiJob.start) -----------------------------------

    def attach_job(self, job_name: str, arena: "IsomallocArena") -> None:
        self.job_name = job_name
        self._arena = arena

    def bind(self, vp: int, clock: "SimClock") -> _RankProbe:
        return _RankProbe(vp, clock, self)

    def on_quantum(self) -> None:
        """Scheduler hook: one call per scheduling quantum."""
        self.epoch += 1

    # -- access path --------------------------------------------------------

    def _cell(self, key: tuple[int, str], route: AccessRoute,
              name: str) -> tuple[bool, int]:
        info = self._cell_info.get(key)
        if info is None:
            inst = route.instance
            var = inst.image.vars.get(name)
            unsafe = (var is not None and var.unsafe
                      and not name.startswith(SHIM_PREFIX))
            info = (unsafe, inst.addr_of(name))
            self._cell_info[key] = info
        return info

    def on_access(self, vp: int, name: str, route: AccessRoute,
                  is_write: bool, now: int) -> None:
        self.counters.incr(EV_SAN_CHECK)
        inst_id = id(route.instance)
        key = (inst_id, name)
        unsafe, addr = self._cell(key, route, name)

        stale = self._stale.get(vp)
        if stale is not None and inst_id in stale:
            self._emit(Finding(
                code="use-after-migrate",
                severity=Severity.ERROR,
                message=(
                    f"vp {vp} touched {name!r} through storage left in "
                    "its pre-migration process — it now reads another "
                    "address space's copy"
                ),
                image=self.job_name or None,
                symbol=name,
                vp=vp,
                address=addr,
                epoch=self.epoch,
                fix_hint="use a method whose state migrates with the "
                         "rank (pieglobals, tlsglobals with tagging)",
            ), dedup=("uam", vp, inst_id), now=now)

        if not unsafe:
            return
        prev = self._last_write.get(key)
        if is_write:
            owner = (self._arena.rank_of_address(addr)
                     if self._arena is not None else None)
            if owner is not None and owner != vp:
                self._emit(Finding(
                    code="foreign-write",
                    severity=Severity.ERROR,
                    message=(
                        f"vp {vp} wrote {name!r} at {addr:#x}, inside "
                        f"vp {owner}'s Isomalloc slot"
                    ),
                    image=self.job_name or None,
                    symbol=name,
                    vp=vp,
                    address=addr,
                    epoch=self.epoch,
                    fix_hint="the store aliases another rank's private "
                             "memory; fix the routing or the pointer "
                             "arithmetic that produced it",
                ), dedup=("fw", vp, key), now=now)
            if prev is not None and prev[0] != vp:
                self._emit(self._race_finding(
                    "race-write-write", name, addr, writer=prev[0],
                    toucher=vp, write_epoch=prev[1]),
                    dedup=("ww", key, prev[0], vp), now=now)
            self._last_write[key] = (vp, self.epoch)
        elif prev is not None and prev[0] != vp:
            self._emit(self._race_finding(
                "race-write-read", name, addr, writer=prev[0],
                toucher=vp, write_epoch=prev[1]),
                dedup=("wr", key, prev[0], vp), now=now)

    def _race_finding(self, code: str, name: str, addr: int, *,
                      writer: int, toucher: int,
                      write_epoch: int) -> Finding:
        verb = "read" if code == "race-write-read" else "rewrote"
        return Finding(
            code=code,
            severity=Severity.ERROR,
            message=(
                f"vp {toucher} {verb} shared mutable {name!r} last "
                f"written by vp {writer} (epoch {write_epoch}) — the "
                "ranks share one storage copy"
            ),
            image=self.job_name or None,
            symbol=name,
            vp=toucher,
            address=addr,
            epoch=self.epoch,
            fix_hint="privatize it: any full-copy method, or "
                     "thread_local tagging under tlsglobals",
        )

    # -- migration hook -----------------------------------------------------

    def on_migrate(self, rank: "VirtualRank", src_proc: Any, dst_proc: Any,
                   rec: "MigrationRecord") -> None:
        """Post-migration audit (cross-process moves only).

        Checks the rank's private GOT and TLS resolve inside the
        destination address space, and marks any route whose storage
        stayed behind in the source process so the *next touch* reports
        use-after-migrate.
        """
        now = rank.clock.now
        got = rank.method_data.get("got")
        if isinstance(got, GotInstance):
            for slot, addr in got.entries():
                if addr and dst_proc.vm.find(addr) is None:
                    self._emit(Finding(
                        code="stale-got",
                        severity=Severity.ERROR,
                        message=(
                            f"after migrating to process "
                            f"{dst_proc.index}, vp {rank.vp}'s GOT entry "
                            f"for {slot.symbol!r} points at unmapped "
                            f"{addr:#x}"
                        ),
                        image=self.job_name or None,
                        symbol=slot.symbol,
                        vp=rank.vp,
                        address=addr,
                        epoch=self.epoch,
                        fix_hint="the GOT must be re-resolved (or live "
                                 "in the Isomalloc slot) for migration",
                    ), dedup=("sg", rank.vp, slot.symbol), now=now)
        tls = rank.tls_instance
        if tls is not None:
            m_src = src_proc.vm.find(tls.base)
            m_dst = dst_proc.vm.find(tls.base)
            if m_src is not None and (m_dst is None or m_dst is not m_src):
                self._emit(Finding(
                    code="stale-tls",
                    severity=Severity.ERROR,
                    message=(
                        f"vp {rank.vp}'s TLS block at {tls.base:#x} did "
                        "not move with it: the destination process maps "
                        "different storage there"
                    ),
                    image=self.job_name or None,
                    vp=rank.vp,
                    address=tls.base,
                    epoch=self.epoch,
                    fix_hint="allocate the per-rank TLS copy from "
                             "Isomalloc so it migrates with the rank",
                ), dedup=("st", rank.vp), now=now)
        stale = self._stale.setdefault(rank.vp, {})
        for name, route in rank.ctx.view.routes.items():
            if name.startswith(SHIM_PREFIX):
                continue
            var = route.instance.image.vars.get(name)
            if var is None or not var.unsafe:
                continue
            base = route.instance.base
            m_src = src_proc.vm.find(base)
            if m_src is None:
                continue  # moved with the rank (or never process-mapped)
            m_dst = dst_proc.vm.find(base)
            if m_dst is None or m_dst is not m_src:
                stale[id(route.instance)] = name  # repro: allow(det-id-key) shadow map of live instances; identity is the key, order never escapes

    # -- transport hook -----------------------------------------------------

    def on_stale_delivery(self, rank: "VirtualRank", msg: Any) -> None:
        """A reliable-transport frame landed on a PE its receiver left.

        The frame's destination endpoint was resolved at send time; if
        the receiving rank migrated while the frame was in flight (e.g.
        during a retransmission backoff), delivery arrives at the old
        PE and the runtime must forward it — a window where a buggy
        location cache or an un-quiesced migration protocol loses or
        misroutes messages on real machines.
        """
        self._emit(Finding(
            code="stale-endpoint-delivery",
            severity=Severity.ERROR,
            message=(
                f"frame {msg.src_vp}->vp {msg.dst_vp} (channel seq "
                f"{msg.chan_seq}) was addressed to a PE that vp "
                f"{msg.dst_vp} migrated away from while the frame was in "
                f"flight; it now resides on PE {rank.pe.index}"
            ),
            image=self.job_name or None,
            vp=msg.dst_vp,
            epoch=self.epoch,
            fix_hint="re-resolve the destination endpoint on each "
                     "retransmission, or quiesce sends around migration",
        ), dedup=("sed", msg.src_vp, msg.dst_vp, msg.chan_seq),
            now=msg.arrival)

    # -- reporting ----------------------------------------------------------

    def _emit(self, finding: Finding, dedup: tuple, now: int) -> None:
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.counters.incr(EV_SAN_FINDING)
        if self.trace is not None:
            self.trace.instant(
                f"san:{finding.code}", "sanitize", now,
                pid=self.trace_pid, tid=finding.vp or 0,
                args={"symbol": finding.symbol, "epoch": finding.epoch},
            )
        if len(self.findings) >= self.max_findings:
            self.dropped += 1
            return
        self.findings.append(finding)

    def sorted_findings(self) -> list[Finding]:
        return sort_findings(self.findings)
