"""Micro programs shared by the harness, the CLI, and the bench.

These are the tiny single-purpose workloads the experiment drivers used
to build inline — the Figure 5 startup probe, the Figure 6 yield
ping-pong, and the Figure 2/3 hello world.  Hoisting them here gives
each a *name* in the :mod:`repro.harness.jobspec` app registry, which is
what makes runs of them serializable (and therefore recordable,
replayable, and pinnable by :mod:`repro.provenance`).

Every builder is a pure function of its keyword arguments, so a
``JobSpec`` that stores the app name plus those arguments rebuilds a
bit-identical program.
"""

from __future__ import annotations

from repro.program.source import Program, ProgramSource


def build_startup_program(code_bytes: int = 256 * 1024,
                          name: str = "startup_probe") -> ProgramSource:
    """Figure 5 probe: write one global, barrier, exit."""
    p = Program(name, code_bytes=code_bytes)
    p.add_global("x", 0)

    @p.function()
    def main(ctx):
        ctx.g.x = ctx.mpi.rank()
        ctx.mpi.barrier()
        return ctx.g.x

    return p.build()


def build_pingpong_program(yields_per_rank: int = 1000,
                           name: str = "ctxswitch_probe") -> ProgramSource:
    """Figure 6 probe: ULTs on one PE yielding back and forth."""
    p = Program(name)
    p.add_global("dummy", 0)

    @p.function()
    def main(ctx):
        for _ in range(yields_per_rank):
            ctx.mpi.yield_()
        return ctx.mpi.rank()

    return p.build()


def build_hello_program(name: str = "hello_world") -> ProgramSource:
    """The Figure 2/3 hello world: each rank reports its rank through a
    global — broken under no privatization, fixed under any method."""
    p = Program(name)
    p.add_global("my_rank", -1)

    @p.function()
    def main(ctx):
        ctx.g.my_rank = ctx.mpi.rank()
        ctx.mpi.barrier()
        return f"rank: {ctx.g.my_rank}"

    return p.build()
