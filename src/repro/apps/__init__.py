"""Workload applications used by the paper's evaluation.

* :mod:`repro.apps.jacobi3d` — the ~100-line Jacobi-3D stencil benchmark
  (Figures 6, 7, and the Section 4.5 icache study; ~3 MB code segment).
* :mod:`repro.apps.adcirc` — a storm-surge mini-app with ADCIRC's load
  structure: a moving wet front over a mostly dry floodplain (Table 2 and
  Figure 9; ~14 MB code segment, hundreds of mutable globals).
* :mod:`repro.apps.memhog` — a parameterized heap-filling rank used by
  the migration-cost experiment (Figure 8).
"""

from repro.apps.jacobi3d import JacobiConfig, build_jacobi_program, run_jacobi
from repro.apps.adcirc import AdcircConfig, build_adcirc_program, run_adcirc
from repro.apps.memhog import MemhogConfig, build_memhog_program

__all__ = [
    "JacobiConfig",
    "build_jacobi_program",
    "run_jacobi",
    "AdcircConfig",
    "build_adcirc_program",
    "run_adcirc",
    "MemhogConfig",
    "build_memhog_program",
]
