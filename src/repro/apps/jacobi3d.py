"""Jacobi-3D: a 7-point-stencil relaxation solver over virtual ranks.

This is the paper's microbenchmark workload: every variable referenced in
the innermost computational loop — relaxation weight, reciprocal stencil
divisor, local block dimensions — is a *mutable global*, so under a
privatization method each access goes through that method's routing (the
Figure 7 per-access-overhead probe), and the ~3 MB code segment is what
PIEglobals copies per rank and migrates.

The solver is real: ranks own numpy blocks of a 3-D domain decomposed on
a process grid, exchange six halo faces per iteration, relax, and
periodically allreduce the residual, which converges monotonically (tests
check this).  Simulated compute time per iteration is
``cells * compute_ns_per_cell`` plus one modelled inner-loop access to
each privatized global per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np

from repro.ampi.ops import MAX as MPI_MAX
from repro.ampi.runtime import AmpiJob, JobResult
from repro.charm.node import JobLayout
from repro.errors import ReproError
from repro.machine import GENERIC_LINUX, MachineModel
from repro.program.source import Program, ProgramSource

#: simulated .text footprint: "our Jacobi-3D standalone benchmark is
#: around 100 lines of code and has a PIEglobals code segment size of 3 MB"
JACOBI_CODE_BYTES = 3 * 1024 * 1024


@dataclass(frozen=True)
class JacobiConfig:
    n: int = 24                      #: global cube edge (n^3 cells)
    iters: int = 10
    reduce_every: int = 5            #: residual allreduce period
    omega: float = 0.8               #: relaxation weight
    compute_ns_per_cell: float = 2.0
    code_bytes: int = JACOBI_CODE_BYTES
    lb_period: int = 0               #: call AMPI_Migrate every k iters (0=off)
    #: collective checkpoint every k iters (0=off); makes the solver
    #: restart-aware: it resumes from the checkpointed iteration, both
    #: after an in-run crash recovery and under ``restore_from=``
    ckpt_period: int = 0
    #: tag the inner-loop globals ``thread_local`` — what a user does when
    #: building for TLSglobals (Figure 7's per-access overhead probe)
    tag_tls: bool = False

    def __post_init__(self) -> None:
        if self.n < 2 or self.iters < 1:
            raise ReproError("jacobi needs n >= 2 and iters >= 1")


@lru_cache(maxsize=None)
def dims_create(nranks: int, ndims: int = 3) -> tuple[int, ...]:
    """MPI_Dims_create-style balanced factorization of ``nranks``.

    Pure function of its arguments and called once per rank, so it is
    memoized — at 4k VPs the repeated factorization showed up in the
    event-loop profile.
    """
    dims = [1] * ndims
    remaining = nranks
    f = 2
    factors: list[int] = []
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for p in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def _block_bounds(n: int, parts: int, idx: int) -> tuple[int, int]:
    """[start, end) of block ``idx`` when n cells split into ``parts``."""
    base = n // parts
    extra = n % parts
    start = idx * base + min(idx, extra)
    end = start + base + (1 if idx < extra else 0)
    return start, end


def build_jacobi_program(cfg: JacobiConfig) -> ProgramSource:
    """Build the Jacobi-3D MPI program against the simulator's API."""
    p = Program("jacobi3d", code_bytes=cfg.code_bytes)
    # Inner-loop globals (all mutable => all privatization-sensitive):
    p.add_global("omega", cfg.omega, tls=cfg.tag_tls)
    p.add_global("inv6", 1.0 / 6.0, tls=cfg.tag_tls)
    p.add_global("nx", 0)
    p.add_global("ny", 0)
    p.add_global("nz", 0)
    # Static iteration counter (the Swapglobals hole, if anyone tries):
    p.add_static("cur_iter", 0)
    # Safe globals:
    p.add_global("n_global", cfg.n, write_once_same=True)
    p.add_global("residual", 0.0)
    if cfg.ckpt_period:
        # Restart state: which iteration to resume at, and the block
        # itself (checkpointed alongside the heap copy so the restored
        # solver picks up exactly where the snapshot was taken).  This
        # state is per-rank and read back after a restore, so a TLS
        # build must tag it ``__thread`` like the inner-loop globals:
        # untagged it would be process-shared under TLSglobals and a
        # restore would hand every rank its last process-mate's block.
        p.add_global("next_iter", 0, tls=cfg.tag_tls)
        p.add_global("ublock", None, tls=cfg.tag_tls)

    iters = cfg.iters
    reduce_every = cfg.reduce_every
    lb_period = cfg.lb_period
    ckpt_period = cfg.ckpt_period
    compute_ns = cfg.compute_ns_per_cell
    n = cfg.n

    @p.function(code_bytes=6144)
    def exchange_halos(ctx, u, coords, dims, comm):
        """Six-face halo exchange: all irecv/isend posted, then waited —
        deadlock-free and overlappable by the message-driven scheduler."""
        mpi = ctx.mpi
        cx, cy, cz = coords
        recvs = []
        for axis in (0, 1, 2):
            for direction in (-1, +1):
                nc = [cx, cy, cz]
                nc[axis] += direction
                if not 0 <= nc[axis] < dims[axis]:
                    continue
                # Row-major rank of the neighbour coordinate.
                nbr = (nc[0] * dims[1] + nc[1]) * dims[2] + nc[2]
                # The message I receive travels opposite to the one I send.
                send_tag = 10 + axis * 2 + (direction > 0)
                recv_tag = 10 + axis * 2 + (direction < 0)
                recvs.append(
                    (axis, direction,
                     mpi.irecv(source=nbr, tag=recv_tag, comm=comm))
                )
                mpi.isend(_face(u, axis, direction, interior=True).copy(),
                          dest=nbr, tag=send_tag, comm=comm)
        for axis, direction, req in recvs:
            _set_face(u, axis, direction, mpi.wait(req))

    @p.function(code_bytes=24576)
    def relax(ctx, u):
        """One Jacobi sweep over the interior; returns (new u, residual)."""
        om = ctx.g.omega
        inv6 = ctx.g.inv6
        stencil = (
            u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        )
        interior = u[1:-1, 1:-1, 1:-1]
        updated = (1.0 - om) * interior + (om * inv6) * stencil
        resid = float(np.max(np.abs(updated - interior)))
        cells = interior.size
        # Simulated cost of the compiled loop: arithmetic plus one access
        # to each privatized inner-loop global per cell.
        ctx.compute(cells * compute_ns)
        ctx.charge_accesses({"omega": cells, "inv6": cells})
        out = u.copy()
        out[1:-1, 1:-1, 1:-1] = updated
        return out, resid

    @p.function(code_bytes=16384)
    def main(ctx):
        mpi = ctx.mpi
        mpi.init()
        me = mpi.rank()
        nranks = mpi.size()
        comm = None  # world

        dims = dims_create(nranks, 3)
        cz = me % dims[2]
        cy = (me // dims[2]) % dims[1]
        cx = me // (dims[2] * dims[1])
        coords = (cx, cy, cz)
        (x0, x1) = _block_bounds(n, dims[0], cx)
        (y0, y1) = _block_bounds(n, dims[1], cy)
        (z0, z1) = _block_bounds(n, dims[2], cz)
        ctx.g.nx, ctx.g.ny, ctx.g.nz = x1 - x0, y1 - y0, z1 - z0

        start_iter = ctx.g.next_iter if ckpt_period else 0
        if start_iter > 0:
            # Restarted from a checkpoint: the block comes back through
            # the restored globals, already holding iteration start_iter.
            u = ctx.g.ublock
        else:
            # Initial condition: hot plane at x == 0 globally, zero
            # elsewhere.
            u = np.zeros((x1 - x0 + 2, y1 - y0 + 2, z1 - z0 + 2))
            if x0 == 0:
                u[1, 1:-1, 1:-1] = 100.0
            ctx.malloc(u.nbytes, data=u, tag="jacobi:block")

        resid = float("inf")
        for it in range(start_iter, iters):
            ctx.g.cur_iter = it
            ctx.call("exchange_halos", u, coords, dims, comm)
            u, local_resid = ctx.call("relax", u)
            if x0 == 0:
                u[1, 1:-1, 1:-1] = 100.0  # Dirichlet boundary reasserted
            if (it + 1) % reduce_every == 0 or it == iters - 1:
                resid = mpi.allreduce(local_resid, op=MPI_MAX)
                ctx.g.residual = resid
            if lb_period and (it + 1) % lb_period == 0:
                mpi.migrate()
            if ckpt_period and (it + 1) % ckpt_period == 0 \
                    and (it + 1) < iters:
                ctx.g.ublock = u
                ctx.g.next_iter = it + 1
                mpi.checkpoint()
        mpi.finalize()
        return resid

    return p.build()


def _face(u: np.ndarray, axis: int, direction: int, interior: bool) -> np.ndarray:
    """The face plane to send (interior=True) or the ghost plane index."""
    idx: list[Any] = [slice(1, -1)] * 3
    if interior:
        idx[axis] = 1 if direction < 0 else u.shape[axis] - 2
    else:
        idx[axis] = 0 if direction < 0 else u.shape[axis] - 1
    return u[tuple(idx)]


def _set_face(u: np.ndarray, axis: int, direction: int,
              data: np.ndarray) -> None:
    idx: list[Any] = [slice(1, -1)] * 3
    idx[axis] = 0 if direction < 0 else u.shape[axis] - 1
    u[tuple(idx)] = data


def run_jacobi(
    cfg: JacobiConfig,
    nvp: int,
    *,
    method: str | Any = "pieglobals",
    machine: MachineModel = GENERIC_LINUX,
    layout: JobLayout | None = None,
    optimize: int = 2,
    lb_strategy: str | Any = "greedyrefine",
    trace_fetches: bool = False,
    trace: Any = None,
    fault_plan: Any = None,
    ft: Any = None,
    transport: str = "priced",
    recovery: str = "global",
    ult_backend: Any = None,
    sanitize: Any = None,
    strict: bool = True,
) -> JobResult:
    """Build + run Jacobi-3D; returns the job result (exit value of each
    rank is the final global residual).

    Runs through the canonical :class:`repro.harness.jobspec.JobSpec`
    whenever the arguments are spec-able (preset machine, named method
    and LB strategy), so ``--provenance`` records these runs too; a
    custom machine model or method/strategy *instance* falls back to
    direct :class:`AmpiJob` construction and is not recordable.
    """
    # Lazy import: jobspec's app registry imports this module.
    from repro.harness import jobspec as _js

    preset = _js.machine_preset_name(machine)
    if preset is not None and isinstance(method, str) \
            and isinstance(lb_strategy, str):
        lay = layout or JobLayout.single(min(nvp, machine.cores_per_node))
        spec = _js.JobSpec(
            app="jacobi3d", nvp=nvp, app_config=dict(cfg.__dict__),
            method=method, machine=preset,
            layout=(lay.nodes, lay.processes_per_node, lay.pes_per_process),
            lb_strategy=lb_strategy, optimize=optimize,
            fault_plan=fault_plan.to_dict() if fault_plan is not None
            else None,
            ft_interval_ns=ft.ckpt_interval_ns if ft is not None else None,
            transport=transport, recovery=recovery,
        )
        return _js.run_spec(spec, trace=trace, sanitize=sanitize,
                            ult_backend=ult_backend,
                            trace_fetches=trace_fetches, strict=strict)
    source = build_jacobi_program(cfg)
    job = AmpiJob(
        source, nvp, method=method, machine=machine, layout=layout,
        optimize=optimize, lb_strategy=lb_strategy,
        trace_fetches=trace_fetches, trace=trace,
        fault_plan=fault_plan, ft=ft, transport=transport,
        recovery=recovery, ult_backend=ult_backend, sanitize=sanitize,
    )
    return job.run(strict=strict)
