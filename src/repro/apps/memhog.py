"""Memhog: a rank that allocates a configurable heap and migrates.

The Figure 8 workload: one rank fills its heap with ``heap_mb`` of data,
then asks to migrate to another PE.  Total migration payload is the heap
plus the ULT stack, TLS copy, and — under PIEglobals — the private
code+data segment copy, so sweeping ``heap_mb`` exposes how the fixed
code-segment surcharge amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.program.source import Program, ProgramSource


@dataclass(frozen=True)
class MemhogConfig:
    heap_mb: int = 16
    code_bytes: int = 14 * 1024 * 1024   #: ADCIRC-sized .text by default
    target_pe: int = 1                   #: where rank 0 migrates to
    chunk_mb: int = 4                    #: allocation granularity

    def __post_init__(self) -> None:
        if self.heap_mb < 1:
            raise ReproError("heap_mb must be >= 1")


def build_memhog_program(cfg: MemhogConfig) -> ProgramSource:
    p = Program("memhog", code_bytes=cfg.code_bytes)
    p.add_global("allocated_mb", 0)

    heap_mb = cfg.heap_mb
    chunk_mb = cfg.chunk_mb
    target_pe = cfg.target_pe

    @p.function(code_bytes=2048)
    def main(ctx):
        mpi = ctx.mpi
        mpi.init()
        me = mpi.rank()
        remaining = heap_mb
        while remaining > 0:
            mb = min(chunk_mb, remaining)
            data = np.zeros(mb * 1024 * 1024 // 8)
            ctx.malloc(data.nbytes, data=data, tag="memhog")
            remaining -= mb
            ctx.g.allocated_mb = heap_mb - remaining
        mpi.barrier()
        t0 = ctx.clock.now
        if me == 0:
            mpi.migrate_to(target_pe)
        migrate_ns = ctx.clock.now - t0
        mpi.barrier()
        mpi.finalize()
        return migrate_ns

    return p.build()
