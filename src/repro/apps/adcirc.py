"""ADCIRC-mini: a storm-surge mini-app with ADCIRC's load structure.

The real ADCIRC is ~50 k source lines of Fortran90 with hundreds of
mutable globals, simulating hurricane storm surge: the computationally
intensive parts of the domain follow the water as it floods low-lying
terrain, while dry areas cost almost nothing — which is exactly why
dynamic load balancing pays off (paper Section 4.6).

This mini-app reproduces that structure:

* a 2-D coastal domain (rows decomposed across virtual ranks) with
  sloping bathymetry;
* a storm (Gaussian forcing) tracking across the decomposed axis, so the
  wet front — and the work — sweeps through ranks over time;
* wetting/drying: per-step cost is proportional to *wet* cells only;
* an overdecomposition cache effect: a rank whose working set fits the
  per-core L2 computes faster per cell (the paper's 13 % single-core
  gain, where LB cannot be the explanation);
* hundreds of generated mutable globals and a ~14 MB code segment, so
  privatization coverage and PIE migration costs are ADCIRC-sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ampi.ops import SUM as MPI_SUM
from repro.ampi.runtime import AmpiJob, JobResult
from repro.charm.node import JobLayout
from repro.errors import ReproError
from repro.machine import GENERIC_LINUX, MachineModel
from repro.program.source import Program, ProgramSource

#: "code size of approximately 14 MB that must be additionally migrated
#: under PIEglobals"
ADCIRC_CODE_BYTES = 14 * 1024 * 1024

#: the mini-app declares this many generated mutable coefficient globals
#: ("hundreds of mutable global variables across nearly 50,000 lines")
N_COEFFICIENT_GLOBALS = 240


@dataclass(frozen=True)
class AdcircConfig:
    width: int = 64                 #: cross-shore columns
    height: int = 384               #: along-shore rows (decomposed axis)
    steps: int = 150
    reduce_every: int = 5
    lb_period: int = 0              #: AMPI_Migrate every k steps (0 = off)
    ns_per_wet_cell: float = 600.0
    base_step_ns: float = 500.0     #: per-rank fixed cost per step
    diffusion: float = 0.18
    decay: float = 0.02
    storm_amplitude: float = 5.0
    storm_sigma: float = 10.0       #: storm radius in cells
    dry_threshold: float = 0.05
    bytes_per_cell: int = 2048      #: working-set model (dozens of arrays/matrices)
    l2_bytes: int = 512 * 1024      #: per-core L2 (cache-blocking model)
    l2_penalty: float = 0.6         #: max slowdown when the block misses L2
    code_bytes: int = ADCIRC_CODE_BYTES

    def __post_init__(self) -> None:
        if self.width < 4 or self.height < 4:
            raise ReproError("domain too small")
        if self.steps < 1:
            raise ReproError("need at least one step")


def _row_bounds(height: int, parts: int, idx: int) -> tuple[int, int]:
    base = height // parts
    extra = height % parts
    start = idx * base + min(idx, extra)
    return start, start + base + (1 if idx < extra else 0)


def build_adcirc_program(cfg: AdcircConfig) -> ProgramSource:
    p = Program("adcirc_mini", language="fortran", code_bytes=cfg.code_bytes)

    # The handful of globals the kernel actually reads per cell:
    p.add_global("gravity", 9.81)
    p.add_global("dt", 1.0)
    p.add_global("diffusion", cfg.diffusion)
    p.add_global("decay", cfg.decay)
    p.add_global("cur_step", 0)
    p.add_static("wet_count", 0)
    p.add_global("n_steps", cfg.steps, write_once_same=True)
    # ...plus the legacy-code long tail: hundreds of mutable module
    # variables and common-block members (generated).
    for i in range(N_COEFFICIENT_GLOBALS):
        p.add_global(f"coef_{i:03d}", float(i) * 0.5)

    W, H = cfg.width, cfg.height
    steps = cfg.steps
    reduce_every = cfg.reduce_every
    lb_period = cfg.lb_period

    def storm_center(step: int) -> tuple[float, float]:
        """Track: enters at row 0, exits at the last row, mid-column.

        Along-track speed follows a smoothstep: fast approach, slow
        near landfall (mid-domain, where most of the run's steps are
        spent), fast departure — hurricanes decelerate at landfall.  The
        quasi-static middle phase is also what makes measured loads a
        good predictor for the load balancer.
        """
        t = step / max(1, steps - 1)
        eased = t * t * (3.0 - 2.0 * t)
        return (eased * (H - 1), W * 0.5)

    def bathymetry(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Ground elevation: rises linearly inland (with columns)."""
        return 0.01 * cols[None, :] + 0.0 * rows[:, None]

    @p.function(code_bytes=6144)
    def wet_work_factor(ctx, wet_cells):
        """Cache-blocking model: working sets beyond L2 cost extra."""
        ws = wet_cells * cfg.bytes_per_cell
        if ws <= cfg.l2_bytes:
            return 1.0
        overflow = 1.0 - cfg.l2_bytes / ws
        return 1.0 + cfg.l2_penalty * overflow

    @p.function(code_bytes=32768)
    def step_kernel(ctx, eta, ground, step):
        """One explicit step over this rank's rows (+2 halo rows)."""
        g = ctx.g
        D = g.diffusion
        dec = g.decay
        dt = g.dt

        wet = (eta > ground + cfg.dry_threshold)
        wet_cells = int(np.count_nonzero(wet[1:-1, :]))
        g.wet_count = wet_cells

        lap = (
            eta[:-2, :] + eta[2:, :]
            + np.pad(eta[1:-1, :-1], ((0, 0), (1, 0)))
            + np.pad(eta[1:-1, 1:], ((0, 0), (0, 1)))
            - 4.0 * eta[1:-1, :]
        )
        new_interior = eta[1:-1, :] + dt * (D * lap - dec * eta[1:-1, :])
        # Dry cells don't evolve (wetting happens via forcing/diffusion
        # raising neighbours above threshold).
        new_interior = np.where(wet[1:-1, :], new_interior, eta[1:-1, :])
        eta[1:-1, :] = np.maximum(new_interior, 0.0)

        factor = ctx.call("wet_work_factor", max(wet_cells, 1))
        ctx.compute(cfg.base_step_ns
                    + wet_cells * cfg.ns_per_wet_cell * factor)
        # Inner-loop privatized accesses: one read of each per wet cell.
        ctx.charge_accesses({
            "diffusion": wet_cells, "decay": wet_cells, "dt": wet_cells,
        })
        return wet_cells

    @p.function(code_bytes=24576)
    def main(ctx):
        mpi = ctx.mpi
        mpi.init()
        me = mpi.rank()
        nranks = mpi.size()
        r0, r1 = _row_bounds(H, nranks, me)
        my_rows = r1 - r0

        rows = np.arange(r0 - 1, r1 + 1, dtype=float)
        cols = np.arange(W, dtype=float)
        ground = bathymetry(rows, cols)
        eta = np.zeros((my_rows + 2, W))
        # Ocean boundary: leftmost columns start wet.
        eta[:, :2] = ground[:, :2] + 0.5
        ctx.malloc(eta.nbytes, data=eta, tag="adcirc:eta")
        ctx.malloc(ground.nbytes, data=ground, tag="adcirc:ground")

        total_wet_history = []
        for step in range(steps):
            ctx.g.cur_step = step
            # Storm forcing on my rows.
            crow, ccol = storm_center(step)
            rr = rows[:, None] - crow
            cc = cols[None, :] - ccol
            dist2 = rr * rr + cc * cc
            forcing = cfg.storm_amplitude * np.exp(
                -dist2 / (2.0 * cfg.storm_sigma ** 2)
            )
            eta += ctx.g.dt * 0.05 * forcing

            # Halo exchange: nonblocking both ways, then wait — the
            # standard deadlock-free pattern (and what lets the runtime
            # overlap neighbours' progress).  Tag 1 flows downward
            # (rank -> rank+1), tag 2 flows upward.
            rq_up = rq_dn = None
            if me > 0:
                rq_up = mpi.irecv(source=me - 1, tag=1)
                mpi.isend(eta[1, :].copy(), dest=me - 1, tag=2)
            if me < nranks - 1:
                rq_dn = mpi.irecv(source=me + 1, tag=2)
                mpi.isend(eta[-2, :].copy(), dest=me + 1, tag=1)
            if rq_up is not None:
                eta[0, :] = mpi.wait(rq_up)
            if rq_dn is not None:
                eta[-1, :] = mpi.wait(rq_dn)

            wet = ctx.call("step_kernel", eta, ground, step)

            if (step + 1) % reduce_every == 0 or step == steps - 1:
                total_wet = mpi.allreduce(wet, op=MPI_SUM)
                total_wet_history.append(total_wet)
            if lb_period and (step + 1) % lb_period == 0:
                mpi.migrate()
        mpi.finalize()
        return total_wet_history[-1] if total_wet_history else 0

    return p.build()


def run_adcirc(
    cfg: AdcircConfig,
    nvp: int,
    *,
    method: str | Any = "pieglobals",
    machine: MachineModel = GENERIC_LINUX,
    layout: JobLayout | None = None,
    lb_strategy: str | Any = "greedyrefine",
    optimize: int = 2,
) -> JobResult:
    """Build + run the surge model; rank exit values are the final global
    wet-cell count (identical on every rank)."""
    cfg = AdcircConfig(**{**cfg.__dict__,
                          "l2_bytes": machine.l2_per_core_bytes})
    source = build_adcirc_program(cfg)
    job = AmpiJob(
        source, nvp, method=method, machine=machine, layout=layout,
        lb_strategy=lb_strategy, optimize=optimize,
    )
    return job.run()
