"""Distributed location management of virtual ranks.

Charm++ tracks object placement so senders never need to know where a
rank currently lives; after a migration, messages are forwarded and the
sender's cache updated.  The simulator keeps one authoritative table (we
run in one process) but *charges* for the realistic behaviours: a lookup
hit is free, a stale-cache send pays a forwarding hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import Pe
    from repro.charm.vrank import VirtualRank


class LocationManager:
    """vp -> PE mapping with per-sender caches for forwarding accounting."""

    def __init__(self) -> None:
        self._home: dict[int, "Pe"] = {}
        #: per-sender cached location: (sender_vp, target_vp) -> Pe
        self._caches: dict[tuple[int, int], "Pe"] = {}
        self.forwarded_messages = 0

    def register(self, rank: "VirtualRank") -> None:
        self._home[rank.vp] = rank.pe

    def unregister(self, vp: int) -> None:
        self._home.pop(vp, None)

    def pe_of(self, vp: int) -> "Pe":
        try:
            return self._home[vp]
        except KeyError:
            raise ReproError(f"location manager: unknown rank {vp}") from None

    def __contains__(self, vp: int) -> bool:
        return vp in self._home

    def __len__(self) -> int:
        return len(self._home)

    def ranks(self) -> Iterator[int]:
        return iter(self._home)

    def moved(self, rank: "VirtualRank", new_pe: "Pe") -> None:
        """Record a migration (caches become stale on purpose)."""
        self._home[rank.vp] = new_pe

    def lookup_for_send(self, sender_vp: int, target_vp: int) -> tuple["Pe", bool]:
        """Resolve a send target.

        Returns (current PE, was_forwarded): the first send after the
        target migrated hits the sender's stale cache and pays a
        forwarding hop, after which the cache is updated — mirroring
        Charm++'s location-update protocol.
        """
        current = self.pe_of(target_vp)
        key = (sender_vp, target_vp)
        cached = self._caches.get(key)
        self._caches[key] = current
        forwarded = cached is not None and cached is not current
        if forwarded:
            self.forwarded_messages += 1
        return current, forwarded
