"""The global message-driven scheduler.

One sequential event loop simulates every PE in the job.  It always
resumes the ULT with the smallest *effective start time*
(``max(ready_time, its PE's busy_until)``), which preserves causality:
a running rank can only influence simulated times at or after its own
clock, and nothing with an earlier effective start exists when it runs.

Per context switch the scheduler charges the baseline switch cost plus
the active privatization method's surcharge (TLS pointer swap, GOT swap)
— the quantity Figure 6 measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import DeadlockError, ReproError
from repro.perf.costs import CostModel
from repro.perf.counters import CounterSet, EV_CTX_SWITCH
from repro.threads.runqueue import RunQueue
from repro.threads.ult import UltState, UserLevelThread
from repro.trace.recorder import PE_TID, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank


class JobScheduler:
    """Runs all virtual ranks of a job to completion."""

    def __init__(self, costs: CostModel, ctx_switch_extra_ns: int = 0,
                 record_timeline: bool = True,
                 trace: TraceRecorder | None = None,
                 trace_pid_base: int = 0, trace_label: str = ""):
        self.costs = costs
        self.ctx_switch_extra_ns = ctx_switch_extra_ns
        self.trace = trace
        self.trace_pid_base = trace_pid_base
        self.trace_label = trace_label
        self.counters = CounterSet()
        self.current: "VirtualRank | None" = None
        self._ranks_by_tid: dict[int, "VirtualRank"] = {}
        self._all_ranks: list["VirtualRank"] = []
        self.runq = RunQueue(self._pe_busy_of)
        #: (pe index, vp, start ns) per scheduling quantum, in order —
        #: consumed by the instruction-cache study to reconstruct the
        #: interleaving of rank code on each PE.
        self.record_timeline = record_timeline
        self.timeline: list[tuple[int, int, int]] = []
        #: called after each rank finishes (runtime hooks e.g. finalize)
        self.on_rank_done: Callable[["VirtualRank"], None] | None = None
        #: fault-injection hook, called with each quantum's effective
        #: start time before it runs; returning True means a fault fired
        #: and rolled the job back — the popped quantum is stale
        self.fault_check: Callable[[int], bool] | None = None

    # -- setup ------------------------------------------------------------------

    def register(self, rank: "VirtualRank", start_time: int) -> None:
        if rank.ult is None:
            raise ReproError(f"rank {rank.vp} has no ULT")
        self._ranks_by_tid[rank.ult.tid] = rank
        self._all_ranks.append(rank)
        rank.ult.start()
        self.runq.push(rank.ult, start_time)

    def reregister(self, rank: "VirtualRank", start_time: int) -> None:
        """Re-admit a rank after fault recovery gave it a fresh ULT.

        The rank stays in ``_all_ranks``; only the tid mapping and the
        run queue entry are renewed.
        """
        if rank.ult is None:
            raise ReproError(f"rank {rank.vp} has no ULT")
        self._ranks_by_tid[rank.ult.tid] = rank
        if rank.ult.state is UltState.NEW:
            rank.ult.start()
        self.runq.push(rank.ult, start_time)

    def flush(self) -> None:
        """Drop every queued quantum (fault rollback)."""
        self.runq.drain()

    def _pe_busy_of(self, ult: UserLevelThread) -> int:
        return self._ranks_by_tid[ult.tid].pe.busy_until

    # -- blocking / waking (called by the MPI layer) ---------------------------------

    def block_current(self, reason: str) -> None:
        """Suspend the running rank (must be called from its ULT)."""
        rank = self.current
        if rank is None or rank.ult is None:
            raise ReproError("block_current outside a running rank")
        tr = self.trace
        if tr is not None:
            tr.instant(f"block:{reason}", "sched", rank.clock.now,
                       pid=self.trace_pid_base + rank.pe.index, tid=rank.vp)
        rank.ult.yield_(reason)

    def wake(self, rank: "VirtualRank", at_time: int) -> None:
        """Make a blocked rank runnable no earlier than ``at_time``."""
        if rank is self.current or rank.finished:
            return
        self.runq.push(rank.ult, max(at_time, rank.clock.now))

    def yield_current(self, resume_at: int) -> None:
        """Suspend the running rank and requeue it at ``resume_at`` —
        used after self-migration so it resumes on its *new* PE."""
        rank = self.current
        if rank is None or rank.ult is None:
            raise ReproError("yield_current outside a running rank")
        self.runq.push(rank.ult, max(resume_at, rank.clock.now))
        rank.ult.yield_("reschedule")

    # -- the event loop ------------------------------------------------------------------

    def run(self) -> None:
        ctx_switch_ns = self.costs.context_switch_ns + self.ctx_switch_extra_ns
        tr = self.trace
        try:
            while True:
                item = self.runq.pop()
                if item is None:
                    if all(r.finished for r in self._all_ranks):
                        return
                    self._report_deadlock()
                ult, ready_time = item
                rank = self._ranks_by_tid[ult.tid]
                pe = rank.pe

                if self.fault_check is not None and \
                        self.fault_check(max(ready_time, pe.busy_until)):
                    # A fault fired and the job rolled back: the popped
                    # quantum belongs to a killed ULT generation.
                    continue

                if ready_time > pe.busy_until:
                    if tr is not None:
                        tr.span("idle", "sched-idle", pe.busy_until,
                                ready_time - pe.busy_until,
                                pid=self.trace_pid_base + pe.index,
                                tid=PE_TID)
                    pe.idle_ns += ready_time - pe.busy_until
                switch_at = max(ready_time, pe.busy_until)
                start = switch_at + ctx_switch_ns
                pe.ctx_switches += 1
                self.counters.incr(EV_CTX_SWITCH)
                ult.clock.advance_to(start)
                if tr is not None:
                    tr.span("ctx-switch", "sched-overhead", switch_at,
                            ctx_switch_ns,
                            pid=self.trace_pid_base + pe.index, tid=rank.vp,
                            args={"method": self.trace_label,
                                  "surcharge_ns": self.ctx_switch_extra_ns})

                if self.record_timeline:
                    self.timeline.append((pe.index, rank.vp, start))
                self.current = rank
                state = ult.switch_in()
                self.current = None

                ran_ns = max(0, ult.clock.now - start)
                rank.record_run(ran_ns)
                pe.busy_ns += ran_ns
                pe.busy_until = ult.clock.now
                pe.last_rank = rank
                if tr is not None and ran_ns > 0:
                    tr.span(f"vp{rank.vp}", "exec", start, ran_ns,
                            pid=self.trace_pid_base + pe.index, tid=rank.vp)

                if state is UltState.ERROR:
                    exc = ult.exception
                    self.shutdown()
                    raise exc
                if state is UltState.DONE:
                    rank.finished = True
                    rank.exit_value = ult.result
                    if self.on_rank_done is not None:
                        self.on_rank_done(rank)
        finally:
            # Leave no orphan OS threads behind on any exit path.
            self.shutdown()

    def _report_deadlock(self) -> None:
        blocked = [
            f"vp {r.vp} ({r.ult.block_reason or 'blocked'}) at t={r.clock.now}"
            for r in self._all_ranks
            if not r.finished
        ]
        self.shutdown()
        raise DeadlockError(
            "no runnable rank but the job is not finished; blocked: "
            + "; ".join(blocked)
        )

    def shutdown(self) -> None:
        """Force-unwind every live ULT (idempotent)."""
        for rank in self._all_ranks:
            if rank.ult is not None and not rank.ult.finished:
                rank.ult.kill()

    # -- reporting ------------------------------------------------------------------------

    def makespan_ns(self) -> int:
        """Job completion time: the latest rank clock."""
        return max((r.clock.now for r in self._all_ranks), default=0)

    def ranks(self) -> list["VirtualRank"]:
        return list(self._all_ranks)
