"""The global message-driven scheduler.

One sequential event loop simulates every PE in the job.  It always
resumes the ULT with the smallest *effective start time*
(``max(ready_time, its PE's busy_until)``), which preserves causality:
a running rank can only influence simulated times at or after its own
clock, and nothing with an earlier effective start exists when it runs.

Per context switch the scheduler charges the baseline switch cost plus
the active privatization method's surcharge (TLS pointer swap, GOT swap)
— the quantity Figure 6 measures.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable

from repro.errors import DeadlockError, ReproError
from repro.perf.costs import CostModel
from repro.perf.counters import CounterSet, EV_CTX_SWITCH
from repro.threads.runqueue import RunQueue
from repro.threads.ult import UltState, UserLevelThread
from repro.trace.recorder import PE_TID, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank


class JobScheduler:
    """Runs all virtual ranks of a job to completion."""

    def __init__(self, costs: CostModel, ctx_switch_extra_ns: int = 0,
                 record_timeline: bool = True,
                 trace: TraceRecorder | None = None,
                 trace_pid_base: int = 0, trace_label: str = ""):
        self.costs = costs
        self.ctx_switch_extra_ns = ctx_switch_extra_ns
        self.trace = trace
        self.trace_pid_base = trace_pid_base
        self.trace_label = trace_label
        self.counters = CounterSet()
        self.current: "VirtualRank | None" = None
        self._ranks_by_tid: dict[int, "VirtualRank"] = {}
        self._tid_by_vp: dict[int, int] = {}
        self._all_ranks: list["VirtualRank"] = []
        #: ULT OS threads that survived their join timeout at shutdown
        self.orphaned = 0
        self.runq = RunQueue(self._pe_busy_of, pe_of=self._pe_of)
        #: (pe index, vp, start ns) per scheduling quantum, in order —
        #: consumed by the instruction-cache study to reconstruct the
        #: interleaving of rank code on each PE.
        self.record_timeline = record_timeline
        self.timeline: list[tuple[int, int, int]] = []
        #: called after each rank finishes (runtime hooks e.g. finalize)
        self.on_rank_done: Callable[["VirtualRank"], None] | None = None
        #: fault-injection hook, called with each quantum's effective
        #: start time before it runs; returning True means a fault fired
        #: and rolled the job back — the popped quantum is stale
        self.fault_check: Callable[[int], bool] | None = None
        #: sanitizer epoch hook, called once per scheduling quantum;
        #: ``None`` (the default) keeps the hot loop untouched
        self.on_quantum: Callable[[], None] | None = None
        #: simulated-time timer heap ``(at_ns, seq, callback)`` — used by
        #: the reliable transport for retransmission timeouts and by the
        #: message log for replay wakeups.  Empty (and therefore free in
        #: the hot loop) unless a subsystem schedules one.
        self._timers: list[tuple[int, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()

    # -- setup ------------------------------------------------------------------

    def register(self, rank: "VirtualRank", start_time: int) -> None:
        if rank.ult is None:
            raise ReproError(f"rank {rank.vp} has no ULT")
        self._ranks_by_tid[rank.ult.tid] = rank
        self._tid_by_vp[rank.vp] = rank.ult.tid
        self._all_ranks.append(rank)
        rank.ult.start()
        self.runq.push(rank.ult, start_time)

    def reregister(self, rank: "VirtualRank", start_time: int) -> None:
        """Re-admit a rank after fault recovery gave it a fresh ULT.

        The rank stays in ``_all_ranks``; the dead ULT generation's tid
        mapping is purged so repeated crash/recover cycles cannot grow
        ``_ranks_by_tid`` without bound.
        """
        if rank.ult is None:
            raise ReproError(f"rank {rank.vp} has no ULT")
        old_tid = self._tid_by_vp.get(rank.vp)
        if old_tid is not None and old_tid != rank.ult.tid:
            self._ranks_by_tid.pop(old_tid, None)
        self._ranks_by_tid[rank.ult.tid] = rank
        self._tid_by_vp[rank.vp] = rank.ult.tid
        if rank.ult.state is UltState.NEW:
            rank.ult.start()
        self.runq.push(rank.ult, start_time)

    def flush(self) -> None:
        """Drop every queued quantum and pending timer (fault rollback)."""
        self.runq.drain()
        self._timers.clear()

    # -- simulated-time timers ------------------------------------------------------

    def add_timer(self, at_ns: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at simulated time ``at_ns``.

        Timers fire *between* scheduling quanta: before any quantum whose
        effective start is at or after ``at_ns``, and whenever the run
        queue is empty.  Ties are broken by insertion order, so timer
        firing is deterministic.  ``flush()`` (global rollback) discards
        pending timers along with the timeline they belong to.
        """
        heapq.heappush(self._timers, (int(at_ns), next(self._timer_seq), fn))

    @property
    def pending_timers(self) -> int:
        return len(self._timers)

    def _pe_busy_of(self, ult: UserLevelThread) -> int:
        return self._ranks_by_tid[ult.tid].pe.busy_until

    def _pe_of(self, ult: UserLevelThread):
        return self._ranks_by_tid[ult.tid].pe

    # -- blocking / waking (called by the MPI layer) ---------------------------------

    def block_current(self, reason: str) -> None:
        """Suspend the running rank (must be called from its ULT)."""
        rank = self.current
        if rank is None or rank.ult is None:
            raise ReproError("block_current outside a running rank")
        tr = self.trace
        if tr is not None:
            tr.instant(f"block:{reason}", "sched", rank.clock.now,
                       pid=self.trace_pid_base + rank.pe.index, tid=rank.vp)
        rank.ult.yield_(reason)

    def wake(self, rank: "VirtualRank", at_time: int) -> None:
        """Make a blocked rank runnable no earlier than ``at_time``."""
        if rank is self.current or rank.finished:
            return
        if rank.ult is None:
            # Post-recovery window: the rank's dead ULT is gone and its
            # replacement has not been reregistered yet.  Recovery will
            # requeue it; waking a ghost here would be an AttributeError.
            return
        self.runq.push(rank.ult, max(at_time, rank.clock.now))

    def yield_current(self, resume_at: int) -> None:
        """Suspend the running rank and requeue it at ``resume_at`` —
        used after self-migration so it resumes on its *new* PE."""
        rank = self.current
        if rank is None or rank.ult is None:
            raise ReproError("yield_current outside a running rank")
        self.runq.push(rank.ult, max(resume_at, rank.clock.now))
        rank.ult.yield_("reschedule")

    # -- the event loop ------------------------------------------------------------------

    def run(self) -> None:
        # The loop below runs once per scheduling quantum — hundreds of
        # thousands of iterations for paper-scale sweeps — so everything
        # invariant across quanta is hoisted into locals, including the
        # trace/timeline/fault guards (all three are decided before run()
        # and stay fixed for its duration).
        ctx_switch_ns = self.costs.context_switch_ns + self.ctx_switch_extra_ns
        tr = self.trace
        pid_base = self.trace_pid_base
        runq_pop = self.runq.pop
        ranks_by_tid = self._ranks_by_tid
        incr_ctx = self.counters.incr
        fault_check = self.fault_check
        on_quantum = self.on_quantum
        record_timeline = self.record_timeline
        timeline_append = self.timeline.append
        timers = self._timers
        heappop = heapq.heappop
        DONE = UltState.DONE
        ERROR = UltState.ERROR
        try:
            while True:
                item = runq_pop()
                if item is None:
                    if timers:
                        # Nothing runnable but a timeout is pending (e.g.
                        # a retransmission whose receiver blocks on it).
                        # The fault check runs *before* the pop: a crash
                        # firing here may roll the job back, and under
                        # local recovery a survivor's timer must stay in
                        # the heap and fire after the outage — popping
                        # first would silently drop it (a lost
                        # retransmission deadlocks its receiver).
                        at = timers[0][0]
                        if fault_check is not None and fault_check(at):
                            continue
                        at, _, fn = heappop(timers)
                        fn()
                        continue
                    if all(r.finished for r in self._all_ranks):
                        return
                    self._report_deadlock()
                ult, ready_time = item
                rank = ranks_by_tid.get(ult.tid)
                if rank is None:
                    # Stale quantum of a rolled-back ULT generation
                    # (local recovery does not flush survivors' queues).
                    continue
                pe = rank.pe
                busy_until = pe.busy_until
                eff_start = ready_time if ready_time > busy_until \
                    else busy_until

                if timers and timers[0][0] <= eff_start:
                    # Timers due before this quantum may deliver messages
                    # (or fire a crash) that change who should run next:
                    # fire them, requeue the popped quantum, re-pop.
                    while timers and timers[0][0] <= eff_start:
                        at = timers[0][0]
                        if fault_check is not None and fault_check(at):
                            continue  # rollback may have cleared timers
                        at, _, fn = heappop(timers)
                        fn()
                    if ranks_by_tid.get(ult.tid) is rank:
                        self.runq.push(ult, ready_time)
                    continue

                if fault_check is not None and fault_check(eff_start):
                    # A fault fired and the job rolled back.  Under
                    # global recovery the popped quantum belongs to a
                    # killed ULT generation; under local recovery a
                    # survivor's quantum stays valid and is requeued.
                    if ranks_by_tid.get(ult.tid) is rank:
                        self.runq.push(ult, ready_time)
                    continue

                if ready_time > busy_until:
                    if tr is not None:
                        tr.span("idle", "sched-idle", busy_until,
                                ready_time - busy_until,
                                pid=pid_base + pe.index,
                                tid=PE_TID)
                    pe.idle_ns += ready_time - busy_until
                    switch_at = ready_time
                else:
                    switch_at = busy_until
                start = switch_at + ctx_switch_ns
                pe.ctx_switches += 1
                incr_ctx(EV_CTX_SWITCH)
                ult.clock.advance_to(start)
                if tr is not None:
                    tr.span("ctx-switch", "sched-overhead", switch_at,
                            ctx_switch_ns,
                            pid=pid_base + pe.index, tid=rank.vp,
                            args={"method": self.trace_label,
                                  "surcharge_ns": self.ctx_switch_extra_ns})

                if record_timeline:
                    timeline_append((pe.index, rank.vp, start))
                if on_quantum is not None:
                    on_quantum()
                self.current = rank
                state = ult.switch_in()
                self.current = None

                now = ult.clock.now
                ran_ns = now - start
                if ran_ns < 0:
                    ran_ns = 0
                rank.record_run(ran_ns)
                pe.busy_ns += ran_ns
                pe.busy_until = now
                pe.last_rank = rank
                if tr is not None and ran_ns > 0:
                    tr.span(f"vp{rank.vp}", "exec", start, ran_ns,
                            pid=pid_base + pe.index, tid=rank.vp)

                if state is DONE:
                    rank.finished = True
                    rank.exit_value = ult.result
                    if self.on_rank_done is not None:
                        self.on_rank_done(rank)
                elif state is ERROR:
                    exc = ult.exception
                    self.shutdown()
                    raise exc
        finally:
            # Leave no orphan OS threads behind on any exit path.
            self.shutdown()

    def _report_deadlock(self) -> None:
        blocked = []
        for r in self._all_ranks:
            if r.finished:
                continue
            if r.ult is None:
                # Post-recovery window: don't let a secondary error here
                # (no ULT means no clock either) mask the DeadlockError
                # we are trying to raise.
                blocked.append(f"vp {r.vp} (no ULT (awaiting recovery))")
            else:
                reason = r.ult.block_reason or "blocked"
                blocked.append(f"vp {r.vp} ({reason}) at t={r.clock.now}")
        self.shutdown()
        raise DeadlockError(
            "no runnable rank but the job is not finished; blocked: "
            + "; ".join(blocked)
        )

    def shutdown(self) -> None:
        """Force-unwind every live ULT and release its OS thread.

        Idempotent.  A backing thread that refuses to die within the
        backend's join timeout is counted in :attr:`orphaned` (and in the
        process-wide :func:`repro.threads.orphan_count`) instead of being
        silently leaked across sweeps.
        """
        for rank in self._all_ranks:
            ult = rank.ult
            if ult is None:
                continue
            if not ult.finished:
                ult.kill()
            if ult.join_thread():
                self.orphaned += 1

    # -- reporting ------------------------------------------------------------------------

    def makespan_ns(self) -> int:
        """Job completion time: the latest rank clock."""
        return max((r.clock.now for r in self._all_ranks), default=0)

    def ranks(self) -> list["VirtualRank"]:
        return list(self._all_ranks)
