"""Charm++-style runtime substrate: the machine hierarchy
(node -> OS process -> PE), virtual ranks as migratable entities, the
location manager, the migration engine, and the load-balancing framework.
"""

from repro.charm.node import JobLayout, Node, OsProcess, Pe
from repro.charm.vrank import VirtualRank
from repro.charm.messages import Message, Mailbox
from repro.charm.locmgr import LocationManager
from repro.charm.migration import MigrationEngine

__all__ = [
    "JobLayout",
    "Node",
    "OsProcess",
    "Pe",
    "VirtualRank",
    "Message",
    "Mailbox",
    "LocationManager",
    "MigrationEngine",
]
