"""Virtual ranks: the migratable entities.

A :class:`VirtualRank` bundles everything one virtualized MPI rank owns:
its user-level thread (and hence its simulated clock), its heap and stack
(Isomalloc-backed), its globals view and code-segment instance (whatever
the privatization method decided), and load-balancing instrumentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mem.address_space import Mapping
from repro.mem.heap import RankHeap
from repro.mem.segments import CodeInstance, SegmentInstance
from repro.perf.counters import CounterSet
from repro.program.context import ExecutionContext
from repro.threads.ult import UserLevelThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import Pe


class VirtualRank:
    """One virtual MPI rank (an AMPI "VP")."""

    def __init__(self, vp: int, pe: "Pe"):
        self.vp = vp
        self.pe = pe
        pe.resident[vp] = self

        self.ult: UserLevelThread | None = None
        self.ctx: ExecutionContext | None = None
        self.heap: RankHeap | None = None
        self.stack_mapping: Mapping | None = None
        self.counters = CounterSet()

        # Set by the privatization method during setup:
        self.code: CodeInstance | None = None          #: code this rank executes
        self.tls_instance: SegmentInstance | None = None
        self.method_data: dict[str, Any] = {}          #: per-method bookkeeping

        # Load-balancing instrumentation:
        self.load_ns = 0          #: CPU ns since the last LB step
        self.total_cpu_ns = 0
        self.migrations = 0

        # MPI progress bookkeeping (owned by the AMPI layer):
        self.finished = False
        self.exit_value: Any = None

    @property
    def clock(self):
        if self.ult is None:
            raise RuntimeError(f"rank {self.vp} has no ULT yet")
        return self.ult.clock

    @property
    def process(self):
        return self.pe.process

    def record_run(self, ns: int) -> None:
        self.load_ns += ns
        self.total_cpu_ns += ns

    def reset_load(self) -> None:
        self.load_ns = 0

    def move_to(self, pe: "Pe") -> None:
        """Re-home the rank (bookkeeping only; the migration engine does
        the memory movement and cost accounting)."""
        del self.pe.resident[self.vp]
        self.pe = pe
        pe.resident[self.vp] = self
        self.migrations += 1

    def memory_footprint(self) -> int:
        """Bytes of this rank's migratable memory in its current process."""
        return sum(
            m.size for m in self.process.vm.mappings_of_rank(self.vp)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualRank(vp={self.vp}, pe={self.pe.index})"
