"""Reduction spanning tree over PEs.

Charm++ reduces contributions up a spanning tree of *processing
elements*: each PE combines its resident ranks' contributions locally,
then partial results flow up a binary tree of PE indices.  Interior tree
PEs must apply the reduction operator — and with PIEglobals a
user-defined operator is stored as an *offset* that can only be rebased
against some rank resident on that PE.  A PE emptied by migration
therefore raises :class:`~repro.errors.ReductionOffsetError`
(Section 3.3), which this module reproduces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import Pe


def tree_parent(i: int) -> int | None:
    return None if i == 0 else (i - 1) // 2


def tree_children(i: int, n: int) -> list[int]:
    return [c for c in (2 * i + 1, 2 * i + 2) if c < n]


def tree_depth(n: int) -> int:
    """Depth of the binary combining tree over ``n`` PEs."""
    if n <= 1:
        return 0
    d = 0
    while (1 << d) < n:
        d += 1
    return d


def reduce_over_pes(
    pes: Sequence["Pe"],
    contributions: dict[int, list[Any]],
    combine: Callable[["Pe", Any, Any], Any],
) -> tuple[Any, int]:
    """Combine contributions up the PE tree.

    Parameters
    ----------
    pes:
        All PEs of the job, indexed by tree position.
    contributions:
        tree position -> list of values contributed by ranks on that PE.
    combine:
        ``combine(pe, a, b)`` applies the operator *on that PE* — the
        hook where PIEglobals rebases user-op offsets (and where an empty
        PE fails).

    Returns (result, ops_applied).  Combining is deterministic: within a
    PE in contribution order, across PEs children-then-parent in index
    order (valid for commutative/associative ops, which MPI requires
    unless the op says otherwise).
    """
    n = len(pes)
    ops = 0
    partial: dict[int, Any] = {}

    # Local combine on each contributing PE.
    for idx in range(n):
        vals = contributions.get(idx, [])
        acc = None
        for v in vals:
            if acc is None:
                acc = v
            else:
                acc = combine(pes[idx], acc, v)
                ops += 1
        if acc is not None:
            partial[idx] = acc

    # Walk the tree bottom-up (highest index first reaches parents last).
    for idx in range(n - 1, 0, -1):
        if idx not in partial:
            continue
        parent = tree_parent(idx)
        # The parent PE applies the operator when merging a child's
        # partial result — even if the parent contributed nothing itself.
        if parent in partial:
            partial[parent] = combine(pes[parent], partial[parent],
                                      partial.pop(idx))
            ops += 1
        else:
            # Parent had no value yet: it still *hosts* the pass-through.
            # No operator application is needed for a single value, so an
            # empty PE forwards without failing (matching the paper: the
            # error fires only when a combine must happen there).
            partial[parent] = partial.pop(idx)

    result = partial.get(0)
    return result, ops
