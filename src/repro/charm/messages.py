"""Messages and per-rank mailboxes with MPI matching semantics."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

ANY_SOURCE = -1
ANY_TAG = -1

_msg_seq = itertools.count()


@dataclass(slots=True)
class Message:
    """One in-flight or delivered point-to-point message."""

    src: int              #: sender rank (within the communicator)
    dst: int              #: receiver rank (within the communicator)
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    sent_at: int          #: sender's simulated send time
    arrival: int          #: earliest time the receiver can consume it
    seq: int = field(default_factory=lambda: next(_msg_seq))
    #: sender/receiver virtual ranks — stable across migration, used by
    #: the reliable transport's per-channel state and the message log
    src_vp: int = -1
    dst_vp: int = -1
    #: per-(src_vp, dst_vp) channel sequence number assigned by the
    #: reliable transport (-1 under the priced transport)
    chan_seq: int = -1
    #: destination endpoint resolved at send time (reliable transport
    #: only) — lets the sanitizer flag frames that land on a PE the
    #: receiver migrated away from before arrival
    dest_endpoint: Any = None

    def matches(self, src: int, tag: int, comm_id: int) -> bool:
        return (
            self.comm_id == comm_id
            and (src == ANY_SOURCE or self.src == src)
            and (tag == ANY_TAG or self.tag == tag)
        )


class Mailbox:
    """Unexpected-message queue for one rank.

    Messages are kept in send order per (source, tag, comm), which — since
    each sender's clock is monotone — preserves MPI's non-overtaking rule.
    """

    def __init__(self) -> None:
        self._messages: list[Message] = []

    def deliver(self, msg: Message) -> None:
        self._messages.append(msg)

    def match(self, src: int, tag: int, comm_id: int) -> Message | None:
        """Remove and return the first matching message (None if absent)."""
        for i, m in enumerate(self._messages):
            if m.matches(src, tag, comm_id):
                return self._messages.pop(i)
        return None

    def peek(self, src: int, tag: int, comm_id: int) -> Message | None:
        """Non-destructive match (MPI_Probe / MPI_Iprobe)."""
        for m in self._messages:
            if m.matches(src, tag, comm_id):
                return m
        return None

    def __len__(self) -> int:
        return len(self._messages)

    def pending(self) -> list[Message]:
        return list(self._messages)
