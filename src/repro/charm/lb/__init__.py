"""Dynamic load-balancing framework: measured-load strategies applied at
AMPI_Migrate sync points, with migrations executed by the migration
engine."""

from repro.charm.lb.strategies import (
    GreedyLB,
    GreedyRefineLB,
    LbStrategy,
    NullLB,
    RandomLB,
    RankStat,
    RotateLB,
    get_strategy,
)
from repro.charm.lb.instrumentation import LoadSummary, summarize_loads

__all__ = [
    "LbStrategy",
    "GreedyLB",
    "GreedyRefineLB",
    "RotateLB",
    "RandomLB",
    "NullLB",
    "RankStat",
    "get_strategy",
    "LoadSummary",
    "summarize_loads",
]
