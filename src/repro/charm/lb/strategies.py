"""Load-balancing strategies.

Strategies are pure functions from measured per-rank loads to a new
rank->PE assignment; the LB driver measures, asks, migrates, and resets.
``GreedyRefineLB`` is the strategy the paper uses for ADCIRC: it reaches
for greedy-quality balance while *minimizing migrations* by keeping ranks
where they are unless moving them is needed to deflate an overloaded PE.
"""

from __future__ import annotations

import abc
import heapq
import random
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class RankStat:
    """Measured load of one rank over the last LB period."""

    vp: int
    load_ns: int
    pe: int     #: current PE index


class LbStrategy(abc.ABC):
    """rank loads -> new assignment (vp -> PE index)."""

    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        ...

    @staticmethod
    def pe_loads(stats: list[RankStat], assignment: dict[int, int],
                 n_pes: int) -> list[int]:
        loads = [0] * n_pes
        for s in stats:
            loads[assignment[s.vp]] += s.load_ns
        return loads


class NullLB(LbStrategy):
    """Keep everything in place (measures LB overhead floor)."""

    name = "NullLB"

    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        return {s.vp: s.pe for s in stats}


class GreedyLB(LbStrategy):
    """Classic greedy: heaviest rank first onto the least-loaded PE.

    Produces near-optimal balance but ignores current placement, so it
    migrates almost everything every time.
    """

    name = "GreedyLB"

    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        if n_pes <= 0:
            raise ReproError("need at least one PE")
        heap: list[tuple[int, int]] = [(0, p) for p in range(n_pes)]
        heapq.heapify(heap)
        out: dict[int, int] = {}
        for s in sorted(stats, key=lambda s: (-s.load_ns, s.vp)):
            load, pe = heapq.heappop(heap)
            out[s.vp] = pe
            heapq.heappush(heap, (load + s.load_ns, pe))
        return out


class GreedyRefineLB(LbStrategy):
    """Greedy balance quality with migration-count restraint.

    Starting from the current placement, repeatedly move the best-fitting
    rank off the most overloaded PE onto the least loaded one, stopping
    once every PE is within ``tolerance`` of the average (or no move
    helps).  This mirrors Charm++'s GreedyRefineLB intent.
    """

    name = "GreedyRefineLB"

    def __init__(self, tolerance: float = 1.05, max_passes: int = 10_000):
        if tolerance < 1.0:
            raise ReproError("tolerance must be >= 1.0")
        self.tolerance = tolerance
        self.max_passes = max_passes

    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        if n_pes <= 0:
            raise ReproError("need at least one PE")
        assignment = {s.vp: s.pe if 0 <= s.pe < n_pes else 0 for s in stats}
        by_pe: dict[int, list[RankStat]] = {p: [] for p in range(n_pes)}
        loads = [0] * n_pes
        for s in stats:
            by_pe[assignment[s.vp]].append(s)
            loads[assignment[s.vp]] += s.load_ns

        total = sum(loads)
        if total == 0:
            return assignment
        avg = total / n_pes
        threshold = avg * self.tolerance

        for _ in range(self.max_passes):
            donor = max(range(n_pes), key=lambda p: loads[p])
            if loads[donor] <= threshold or not by_pe[donor]:
                break
            receiver = min(range(n_pes), key=lambda p: loads[p])
            if donor == receiver:
                break
            # Move the donor rank that minimizes the resulting pairwise
            # max — this correctly relocates ranks *larger than the
            # average* (a lone hot rank sharing a PE moves to an idle
            # one), which budget-based refinement cannot do.
            current_max = loads[donor]
            pick = None
            pick_newmax = current_max
            for s in by_pe[donor]:
                newmax = max(loads[donor] - s.load_ns,
                             loads[receiver] + s.load_ns)
                if newmax < pick_newmax:
                    pick, pick_newmax = s, newmax
            if pick is None:
                break  # no single move improves the pair
            by_pe[donor].remove(pick)
            by_pe[receiver].append(pick)
            loads[donor] -= pick.load_ns
            loads[receiver] += pick.load_ns
            assignment[pick.vp] = receiver
        return assignment


class RotateLB(LbStrategy):
    """Shift every rank to the next PE — a stress test for migration."""

    name = "RotateLB"

    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        return {s.vp: (s.pe + 1) % n_pes for s in stats}


class RandomLB(LbStrategy):
    """Uniformly random placement (seeded; a chaos baseline)."""

    name = "RandomLB"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def assign(self, stats: list[RankStat], n_pes: int) -> dict[int, int]:
        rng = random.Random(self.seed)
        return {s.vp: rng.randrange(n_pes) for s in stats}


_STRATEGIES = {
    "null": NullLB,
    "greedy": GreedyLB,
    "greedyrefine": GreedyRefineLB,
    "rotate": RotateLB,
    "random": RandomLB,
}


def get_strategy(name_or_obj: "str | LbStrategy") -> LbStrategy:
    if isinstance(name_or_obj, LbStrategy):
        return name_or_obj
    try:
        return _STRATEGIES[name_or_obj.lower()]()
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ReproError(
            f"unknown LB strategy {name_or_obj!r}; known: {known}"
        ) from None
