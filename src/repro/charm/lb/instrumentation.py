"""Load metrics the runtime gathers for LB decisions and reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.charm.lb.strategies import RankStat


@dataclass(frozen=True)
class LoadSummary:
    total_ns: int
    max_pe_ns: int
    min_pe_ns: int
    avg_pe_ns: float
    imbalance: float    #: max / avg (1.0 == perfectly balanced)


def summarize_loads(stats: list[RankStat], n_pes: int) -> LoadSummary:
    loads = [0] * n_pes
    for s in stats:
        if 0 <= s.pe < n_pes:
            loads[s.pe] += s.load_ns
    total = sum(loads)
    avg = total / n_pes if n_pes else 0.0
    mx = max(loads, default=0)
    return LoadSummary(
        total_ns=total,
        max_pe_ns=mx,
        min_pe_ns=min(loads, default=0),
        avg_pe_ns=avg,
        imbalance=(mx / avg) if avg > 0 else 1.0,
    )
