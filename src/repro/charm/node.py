"""The machine hierarchy: job -> nodes -> OS processes -> PEs.

A *PE* (processing element) is one scheduler thread pinned to a core, the
Charm++ unit of execution.  Non-SMP mode runs one PE per OS process; SMP
mode runs many PEs per process sharing one address space — the mode
Swapglobals cannot support (one active GOT per process) and where
PIPglobals' namespace limit bites hardest (more ranks per process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.machine import MachineModel
from repro.mem.address_space import VirtualMemory
from repro.mem.isomalloc import Isomalloc, IsomallocArena
from repro.net.network import Endpoint
from repro.perf.clock import SimClock
from repro.perf.counters import CounterSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank
    from repro.elf.loader import DynamicLoader


@dataclass(frozen=True)
class JobLayout:
    """How many nodes/processes/PEs a job runs with.

    ``smp_mode`` is implied by ``pes_per_process > 1``.
    """

    nodes: int = 1
    processes_per_node: int = 1
    pes_per_process: int = 1

    def __post_init__(self) -> None:
        if min(self.nodes, self.processes_per_node, self.pes_per_process) < 1:
            raise ReproError("layout dimensions must be >= 1")

    @property
    def smp_mode(self) -> bool:
        return self.pes_per_process > 1

    @property
    def total_processes(self) -> int:
        return self.nodes * self.processes_per_node

    @property
    def total_pes(self) -> int:
        return self.total_processes * self.pes_per_process

    @staticmethod
    def single(pes: int = 1) -> "JobLayout":
        """One SMP process on one node with ``pes`` scheduler threads."""
        return JobLayout(nodes=1, processes_per_node=1, pes_per_process=pes)


class Pe:
    """One processing element: a core running a message-driven scheduler."""

    def __init__(self, index: int, process: "OsProcess"):
        self.index = index                #: global PE number
        self.process = process
        self.busy_until = 0               #: ns at which this PE is next free
        self.busy_ns = 0                  #: accumulated execution time
        self.idle_ns = 0                  #: accumulated idle gaps
        self.ctx_switches = 0
        self.failed = False               #: set when the PE's node crashed
        self.last_rank: "VirtualRank | None" = None
        self.resident: dict[int, "VirtualRank"] = {}  #: vp -> rank
        self.counters = CounterSet()
        #: cached — identical for every PE of the process, read on every
        #: message transfer
        self.endpoint = process.endpoint

    @property
    def node_index(self) -> int:
        return self.process.node.index

    def resident_ranks(self) -> list["VirtualRank"]:
        return list(self.resident.values())

    def any_resident(self) -> "VirtualRank | None":
        return next(iter(self.resident.values()), None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pe({self.index}, proc={self.process.index}, "
            f"busy_until={self.busy_until}, ranks={sorted(self.resident)})"
        )


class OsProcess:
    """One OS process: an address space shared by its PEs and ranks."""

    def __init__(self, index: int, node: "Node", arena: IsomallocArena):
        self.index = index                #: global process number
        self.node = node
        self.vm = VirtualMemory(name=f"proc{index}")
        self.isomalloc = Isomalloc(arena, self.vm)
        self.pes: list[Pe] = []
        self.startup_clock = SimClock()   #: charges AMPI init / privatization setup
        self.counters = CounterSet()
        self.loader: "DynamicLoader | None" = None  # attached by the runtime
        #: cached — node/process numbers are fixed for the process's life
        self.endpoint = Endpoint(node=node.index, process=index)

    def resident_ranks(self) -> list["VirtualRank"]:
        out: list["VirtualRank"] = []
        for pe in self.pes:
            out.extend(pe.resident.values())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OsProcess({self.index}, node={self.node.index}, pes={len(self.pes)})"


class Node:
    """One physical node."""

    def __init__(self, index: int):
        self.index = index
        self.processes: list[OsProcess] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.index}, procs={len(self.processes)})"


def build_topology(
    layout: JobLayout, machine: MachineModel, arena: IsomallocArena
) -> tuple[list[Node], list[OsProcess], list[Pe]]:
    """Instantiate the node/process/PE tree for a layout.

    Raises if the layout oversubscribes the machine's cores per node.
    """
    cores_needed = layout.processes_per_node * layout.pes_per_process
    if cores_needed > machine.cores_per_node:
        raise ReproError(
            f"layout needs {cores_needed} cores/node but machine "
            f"{machine.name!r} has {machine.cores_per_node}"
        )
    nodes: list[Node] = []
    processes: list[OsProcess] = []
    pes: list[Pe] = []
    for n in range(layout.nodes):
        node = Node(n)
        nodes.append(node)
        for _ in range(layout.processes_per_node):
            proc = OsProcess(len(processes), node, arena)
            node.processes.append(proc)
            processes.append(proc)
            for _ in range(layout.pes_per_process):
                pe = Pe(len(pes), proc)
                proc.pes.append(pe)
                pes.append(pe)
    return nodes, processes, pes
