"""Rank migration between address spaces.

The Figure 8 experiment lives here: migrating a rank moves everything in
its Isomalloc slot — heap, ULT stack, TLS copy, and (under PIEglobals)
its private code+data segments, which is why PIE migration carries a
code-size surcharge that amortizes as heap size grows.

Methods that cannot migrate fail in two independent ways, both modelled:
the method's own declaration (:meth:`PrivatizationMethod.check_migratable`)
and the Isomalloc invariant (a rank owning loader-mmap'd private pages
cannot be extracted) — either raises
:class:`~repro.errors.MigrationUnsupportedError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import IsomallocError, MigrationUnsupportedError
from repro.net.network import Network
from repro.perf.counters import (
    CounterSet,
    EV_MIGRATIONS,
    EV_MIGRATION_BYTES,
)
from repro.privatization.base import PrivatizationMethod
from repro.trace.recorder import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.locmgr import LocationManager
    from repro.charm.node import Pe
    from repro.charm.vrank import VirtualRank


@dataclass(frozen=True)
class MigrationRecord:
    vp: int
    src_pe: int
    dst_pe: int
    nbytes: int
    ns: int
    cross_process: bool


class MigrationEngine:
    def __init__(
        self,
        network: Network,
        locmgr: "LocationManager",
        method: PrivatizationMethod,
        counters: CounterSet | None = None,
        trace: TraceRecorder | None = None,
        trace_pid_base: int = 0,
    ):
        self.network = network
        self.locmgr = locmgr
        self.method = method
        self.counters = counters if counters is not None else CounterSet()
        self.trace = trace
        self.trace_pid_base = trace_pid_base
        self.records: list[MigrationRecord] = []
        #: RaceDetector when the job sanitizes; ``None`` costs one
        #: ``is not None`` test per cross-process migration
        self.sanitizer: Any = None

    def migrate(self, rank: "VirtualRank", dest_pe: "Pe") -> MigrationRecord:
        """Move ``rank`` to ``dest_pe``; returns the cost record.

        The caller decides whose clock the returned ``ns`` is charged to
        (the LB driver charges the migrating rank and folds the time into
        the LB barrier).
        """
        if dest_pe.failed:
            raise MigrationUnsupportedError(
                f"cannot migrate vp {rank.vp} to failed PE {dest_pe.index}"
            )
        src_pe = rank.pe
        if dest_pe is src_pe:
            rec = MigrationRecord(rank.vp, src_pe.index, dest_pe.index, 0, 0,
                                  cross_process=False)
            self.records.append(rec)
            return rec

        self.method.check_migratable(rank)
        src_proc = src_pe.process
        dst_proc = dest_pe.process
        cross = src_proc is not dst_proc

        if cross:
            # Differential migration (paper future work): content the
            # destination already holds need not be transferred.
            discount = self.method.migration_discount_bytes(rank, dst_proc)
            try:
                mappings = src_proc.isomalloc.extract_rank(rank.vp)
            except IsomallocError as e:
                raise MigrationUnsupportedError(str(e)) from e
            nbytes = sum(m.size for m in mappings)
            try:
                ns = self.network.migration_ns(
                    max(0, nbytes - discount),
                    src_proc.endpoint, dst_proc.endpoint,
                )
                dst_proc.isomalloc.install_rank(rank.vp, mappings)
            except BaseException:
                # The rank's pages were already extracted; losing them
                # here would strand the rank with no mappings anywhere.
                # Put them back where they came from before re-raising.
                src_proc.isomalloc.install_rank(rank.vp, mappings)
                raise
            if rank.heap is not None:
                rank.heap.isomalloc = dst_proc.isomalloc
        else:
            # Same address space: only scheduler bookkeeping moves.
            nbytes = 0
            ns = self.network.costs.migration_pack_ns

        try:
            rank.move_to(dest_pe)
        except BaseException:
            if cross:
                # Undo the half-finished transfer: pull the pages out of
                # the destination and reinstall them at the source so the
                # rank remains consistent (and migratable later).
                mappings = dst_proc.isomalloc.extract_rank(rank.vp)
                src_proc.isomalloc.install_rank(rank.vp, mappings)
                if rank.heap is not None:
                    rank.heap.isomalloc = src_proc.isomalloc
            raise
        self.locmgr.moved(rank, dest_pe)
        self.counters.incr(EV_MIGRATIONS)
        self.counters.incr(EV_MIGRATION_BYTES, nbytes)
        rec = MigrationRecord(rank.vp, src_pe.index, dest_pe.index, nbytes,
                              ns, cross_process=cross)
        if self.trace is not None:
            self.trace.span(
                f"migrate vp{rank.vp}", "mig", rank.clock.now, ns,
                pid=self.trace_pid_base + src_pe.index, tid=rank.vp,
                args={"nbytes": nbytes, "src_pe": src_pe.index,
                      "dst_pe": dest_pe.index, "cross_process": cross},
            )
        self.records.append(rec)
        if self.sanitizer is not None and cross:
            self.sanitizer.on_migrate(rank, src_proc, dst_proc, rec)
        return rec

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def count(self) -> int:
        return sum(1 for r in self.records if r.src_pe != r.dst_pe)
