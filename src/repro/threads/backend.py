"""Pluggable execution backends for user-level threads.

A :class:`UserLevelThread` needs a real OS stack to park blocked user
code on, but *how* that stack is provided is an implementation detail
the rest of the simulator never sees.  Two backends exist:

``thread``
    One OS thread per ULT, created at :meth:`UserLevelThread.start` and
    joined at teardown — the original, simple fallback.  Costs one
    thread create + join per virtual rank per job, which dominates
    sweeps at paper scale (hundreds–thousands of VPs per job).

``pooled``
    A process-wide pool of persistent worker threads.  A worker is
    bound to a ULT lazily at its first ``switch_in`` and recycled the
    moment the ULT finishes or is killed, so ranks and whole jobs reuse
    the same OS threads: after the pool has warmed up to a job's
    high-water mark, running another job of the same scale performs
    **zero** thread creates/joins.  Baton handoff uses raw locks, the
    cheapest cross-thread wakeup CPython offers.

Determinism contract: backends only decide which OS stack runs a ULT's
body; they never touch simulated clocks, the run queue, or scheduling
order.  The same seed + workload therefore produces byte-identical
simulated timelines under either backend (enforced by tests).

Orphan accounting: an OS thread that outlives its join timeout (user
code swallowing :class:`~repro.threads.ult.UltKilled`, a wedged worker)
is *surfaced* instead of silently leaked — a warning is emitted and the
module-wide counter returned by :func:`orphan_count` grows, so sweeps
can assert they shut down clean.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import TYPE_CHECKING, Callable

from _thread import allocate_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.ult import UserLevelThread

#: default seconds to wait for a dying ULT thread before declaring it
#: orphaned (kept short in tests via the ``join_timeout`` argument)
JOIN_TIMEOUT_S = 5.0

_orphans = 0
_orphan_lock = threading.Lock()


def orphan_count() -> int:
    """OS threads that failed to terminate within their join timeout."""
    return _orphans


def consume_orphan_count() -> int:
    """Return the orphan count and reset it (shutdown-check idiom)."""
    global _orphans
    with _orphan_lock:
        n = _orphans
        _orphans = 0
    return n


def _record_orphan(name: str, context: str) -> None:
    global _orphans
    with _orphan_lock:
        _orphans += 1
    warnings.warn(
        f"ULT thread {name!r} did not terminate within its join timeout "
        f"({context}); {_orphans} orphan OS thread(s) now outstanding",
        ResourceWarning,
        stacklevel=3,
    )


class ExecutionBackend:
    """Interface a ULT uses to obtain and release its OS stack.

    ``attach`` is called from :meth:`UserLevelThread.start`; ``bind``
    from the first ``switch_in`` and must return a *runner* exposing
    ``resume()`` (caller side: hand the baton to the ULT, block until it
    comes back) and ``park()`` (ULT side: hand the baton back, block
    until resumed).  ``reap`` releases whatever ``attach``/``bind``
    allocated once the ULT has finished.
    """

    name = "abstract"

    def attach(self, ult: "UserLevelThread") -> None:
        raise NotImplementedError

    def bind(self, ult: "UserLevelThread"):
        raise NotImplementedError

    def reap(self, ult: "UserLevelThread", timeout: float | None = None) -> bool:
        """Release ``ult``'s OS resources; True if anything leaked."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# thread backend: one OS thread per ULT (the fallback)
# ---------------------------------------------------------------------------


class _ThreadRunner:
    """Event-baton runner owning a dedicated OS thread."""

    __slots__ = ("_my_turn", "_caller_turn", "thread", "_ult")

    def __init__(self, ult: "UserLevelThread"):
        self._my_turn = threading.Event()
        self._caller_turn = threading.Event()
        self._ult = ult
        self.thread = threading.Thread(
            target=self._bootstrap, name=f"ult-{ult.name}", daemon=True
        )
        self.thread.start()

    def _bootstrap(self) -> None:
        self._my_turn.wait()
        try:
            self._ult._main()
        finally:
            self._caller_turn.set()

    def resume(self) -> None:
        self._caller_turn.clear()
        self._my_turn.set()
        self._caller_turn.wait()

    def park(self) -> None:
        self._my_turn.clear()
        self._caller_turn.set()
        self._my_turn.wait()


class ThreadBackend(ExecutionBackend):
    """One OS thread per ULT, spawned eagerly at ``start()``."""

    name = "thread"

    def attach(self, ult: "UserLevelThread") -> None:
        ult._runner = _ThreadRunner(ult)

    def bind(self, ult: "UserLevelThread") -> _ThreadRunner:
        # attach() already bound a runner; bind is only reached when a
        # ULT was constructed without start() being called through the
        # normal path, which start() forbids.
        return ult._runner

    def reap(self, ult: "UserLevelThread", timeout: float | None = None) -> bool:
        runner = ult._runner
        if runner is None or runner.thread is None:
            return False
        t = runner.thread
        t.join(timeout=JOIN_TIMEOUT_S if timeout is None else timeout)
        # Drop the reference either way: a thread that survived its join
        # timeout is recorded as an orphan exactly once, then abandoned
        # (daemonized) rather than re-joined 5s at a time forever.
        runner.thread = None
        if t.is_alive():
            _record_orphan(t.name, "thread backend reap")
            return True
        return False


# ---------------------------------------------------------------------------
# pooled backend: persistent workers, recycled across ULTs and jobs
# ---------------------------------------------------------------------------


class _PoolWorker:
    """A persistent OS thread that hosts one ULT at a time.

    The two raw locks form the baton: ``_resume`` is the ULT side's
    token, ``_yield`` the caller side's.  Both start held, so either
    party blocks until the other hands over.  One worker services many
    ULT lifetimes; binding costs two attribute writes.
    """

    __slots__ = ("_resume", "_yield", "_pool", "_ult", "thread")

    def __init__(self, pool: "PooledBackend", index: int):
        self._resume = allocate_lock()
        self._resume.acquire()
        self._yield = allocate_lock()
        self._yield.acquire()
        self._pool = pool
        self._ult: "UserLevelThread | None" = None
        self.thread = threading.Thread(
            target=self._loop, name=f"ult-pool-w{index}", daemon=True
        )
        self.thread.start()

    def _loop(self) -> None:
        acquire = self._resume.acquire
        while True:
            acquire()                  # first resume of a bound ULT
            ult = self._ult
            if ult is None:            # shutdown sentinel
                return
            ult._main()
            # Clear the binding BEFORE releasing the caller: the caller
            # may rebind this worker (via the free list) immediately.
            self._ult = None
            self._yield.release()      # switch_in returns with DONE/ERROR
            self._pool._recycle(self)

    # -- runner protocol -----------------------------------------------------

    def resume(self) -> None:
        self._resume.release()
        self._yield.acquire()

    def park(self) -> None:
        self._yield.release()
        self._resume.acquire()


class PooledBackend(ExecutionBackend):
    """Fixed pool of worker threads reused across ULT lifetimes and jobs.

    The pool starts empty (or at ``prewarm``) and grows on demand to the
    high-water mark of simultaneously-live ULTs; workers are never
    destroyed until :meth:`close`.  ``kill()`` on a ULT unwinds its user
    stack and recycles the worker instead of joining an OS thread.
    """

    name = "pooled"

    def __init__(self, prewarm: int = 0):
        self._free: list[_PoolWorker] = []
        self._lock = threading.Lock()
        self.created = 0       #: workers ever created (== high-water mark)
        self.binds = 0         #: ULT lifetimes served
        self.closed = False
        if prewarm:
            self.prewarm(prewarm)

    # -- worker management ---------------------------------------------------

    def _new_worker(self) -> _PoolWorker:
        w = _PoolWorker(self, self.created)
        self.created += 1
        return w

    def prewarm(self, n: int) -> None:
        """Grow the free list to at least ``n`` idle workers."""
        with self._lock:
            while len(self._free) < n:
                self._free.append(self._new_worker())

    def _recycle(self, worker: _PoolWorker) -> None:
        with self._lock:
            if self.closed:
                worker._ult = None
                worker._resume.release()   # let the loop exit
                return
            self._free.append(worker)

    def idle_workers(self) -> int:
        with self._lock:
            return len(self._free)

    # -- backend interface ---------------------------------------------------

    def attach(self, ult: "UserLevelThread") -> None:
        # Lazy: no OS resources until the ULT first runs, so ranks that
        # are killed before their first quantum never consume a worker.
        return

    def bind(self, ult: "UserLevelThread") -> _PoolWorker:
        with self._lock:
            if self.closed:
                raise RuntimeError("pooled ULT backend is closed")
            self.binds += 1
            worker = self._free.pop() if self._free else self._new_worker()
        worker._ult = ult
        return worker

    def reap(self, ult: "UserLevelThread", timeout: float | None = None) -> bool:
        # Workers persist by design; a finished ULT's worker is already
        # back in the pool.  A ULT still bound after kill() means user
        # code swallowed UltKilled and wedged the worker — surface it.
        runner = ult._runner
        if runner is not None and runner._ult is ult and not ult.finished:
            if not getattr(ult, "_orphan_recorded", False):
                ult._orphan_recorded = True
                _record_orphan(runner.thread.name, "pooled worker wedged")
                return True
        return False

    def close(self) -> int:
        """Terminate idle workers (tests / interpreter teardown).

        Returns the number of workers told to exit.  Workers currently
        bound to live ULTs are left alone and counted as leaked by
        their owner's shutdown path.
        """
        with self._lock:
            self.closed = True
            idle = self._free
            self._free = []
        for w in idle:
            w._ult = None
            w._resume.release()
        for w in idle:
            w.thread.join(timeout=JOIN_TIMEOUT_S)
        return len(idle)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {
    "thread": ThreadBackend,
    "pooled": PooledBackend,
}

_instances: dict[str, ExecutionBackend] = {}
_default: ExecutionBackend | None = None


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_backend(spec: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Resolve a backend name/instance/None to a live backend.

    Names resolve to process-wide shared instances so the pooled
    backend's workers are reused across jobs, which is the point.
    ``None`` resolves to the default backend (the ``REPRO_ULT_BACKEND``
    environment variable, else ``thread``).
    """
    if spec is None:
        return default_backend()
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        factory = _BACKENDS[spec]
    except KeyError:
        raise ValueError(
            f"unknown ULT backend {spec!r}; known: {backend_names()}"
        ) from None
    inst = _instances.get(spec)
    if inst is None or getattr(inst, "closed", False):
        inst = _instances[spec] = factory()
    return inst


def default_backend() -> ExecutionBackend:
    global _default
    if _default is None:
        _default = get_backend(os.environ.get("REPRO_ULT_BACKEND", "thread"))
    return _default


def set_default_backend(spec: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Set (and return) the process-wide default ULT backend."""
    global _default
    _default = None if spec is None else get_backend(spec)
    return default_backend()
