"""Global run queue for the discrete-event ULT scheduler.

The simulator runs every PE of the whole job from a single sequential
event loop.  Correct parallel timing requires always resuming the ULT
with the globally smallest *effective start time*:

    effective_start(ult) = max(ult ready time, busy_until of its PE)

because a PE serializes its resident ranks.

The queue is two-level: a per-PE min-heap of ``(ready_time, seq, ult)``
plus one global min-heap over PEs keyed by each PE's effective start
(``max(pe busy_until, its earliest ready time)``).  Since every rank on
a PE shares the same ``busy_until``, a PE getting busier invalidates
exactly one global entry instead of every queued entry of that PE — the
single-heap predecessor re-pushed the whole resident set each quantum,
which at 64 ranks/PE meant ~45 stale heap operations per pop.  Both
levels are lazy: stale entries (superseded wake times, migrated ranks,
outdated PE keys) are dropped or re-routed at pop time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable

from repro.threads.ult import UserLevelThread, UltState


class RunQueue:
    """Priority queue of (ULT, ready_time) honouring per-PE serialization.

    ``pe_busy_until`` maps a ULT to its PE's current ``busy_until`` time;
    it is supplied by the owner (the charm scheduler) so this module stays
    free of runtime dependencies.  ``pe_of`` (optional) maps a ULT to a
    stable PE identity used to bucket entries; without it every ULT gets
    its own bucket, which degenerates to the classic single-heap queue.
    """

    def __init__(
        self,
        pe_busy_until: Callable[[UserLevelThread], int],
        pe_of: Callable[[UserLevelThread], object] | None = None,
    ):
        self._pe_busy_until = pe_busy_until
        self._pe_of = pe_of
        self._seq = itertools.count()
        #: authoritative ready time per queued ULT (tid -> time); a ULT not
        #: present here is not ready, whatever stale heap entries say.
        self._ready_time: dict[int, int] = {}
        self._ults: dict[int, UserLevelThread] = {}
        #: bucket key -> heap of (ready_time, seq, ult)
        self._buckets: dict = {}
        #: heap of (effective_start, version, key); one *live* entry per
        #: non-empty bucket, identified by ``_bucket_ver[key]``
        self._global: list[tuple[int, int, object]] = []
        self._bucket_ver: dict = {}

    def __len__(self) -> int:
        return len(self._ready_time)

    def __contains__(self, ult: UserLevelThread) -> bool:
        return ult.tid in self._ready_time

    def _key_of(self, ult: UserLevelThread):
        return self._pe_of(ult) if self._pe_of is not None else ult.tid

    def push(self, ult: UserLevelThread, ready_time: int) -> None:
        """Mark ``ult`` ready at ``ready_time`` (idempotent; earliest wins)."""
        prev = self._ready_time.get(ult.tid)
        if prev is not None and prev <= ready_time:
            return
        self._ready_time[ult.tid] = ready_time
        self._ults[ult.tid] = ult
        key = self._key_of(ult)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
        heapq.heappush(bucket, (ready_time, next(self._seq), ult))
        self._repost(key)

    # -- bucket maintenance ------------------------------------------------------

    def _clean_top(self, key):
        """Drop stale entries off bucket ``key``'s top; return the live
        top ``(ready, seq, ult)`` or None if the bucket emptied."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        ready_times = self._ready_time
        while bucket:
            top = bucket[0]
            ready, _, ult = top
            current = ready_times.get(ult.tid)
            if current is None or current != ready:
                heapq.heappop(bucket)      # popped or re-pushed earlier
                continue
            actual_key = self._key_of(ult)
            if actual_key != key:
                # Rank migrated while queued: route to its current PE.
                heapq.heappop(bucket)
                nb = self._buckets.get(actual_key)
                if nb is None:
                    nb = self._buckets[actual_key] = []
                heapq.heappush(nb, top)
                self._repost(actual_key)
                continue
            return top
        del self._buckets[key]
        self._bucket_ver.pop(key, None)
        return None

    def _repost(self, key) -> None:
        """Refresh bucket ``key``'s single live entry in the global heap."""
        top = self._clean_top(key)
        if top is None:
            return
        ready, _, ult = top
        eff = self._pe_busy_until(ult)
        if ready > eff:
            eff = ready
        ver = next(self._seq)
        self._bucket_ver[key] = ver
        heapq.heappush(self._global, (eff, ver, key))

    # -- consuming ---------------------------------------------------------------

    def pop(self) -> tuple[UserLevelThread, int] | None:
        """Remove and return (ULT, ready_time) with the smallest effective
        start, or None when empty."""
        g = self._global
        while g:
            eff, ver, key = g[0]
            if self._bucket_ver.get(key) != ver:
                heapq.heappop(g)           # superseded by a newer repost
                continue
            top = self._clean_top(key)
            if top is None:
                heapq.heappop(g)
                continue
            ready, _, ult = top
            true_eff = self._pe_busy_until(ult)
            if ready > true_eff:
                true_eff = ready
            if true_eff > eff:
                # PE got busier since this entry was posted; refresh.
                heapq.heappop(g)
                self._repost(key)
                continue
            heapq.heappop(g)
            heapq.heappop(self._buckets[key])
            del self._ready_time[ult.tid]
            del self._ults[ult.tid]
            self._repost(key)
            return ult, ready
        return None

    def peek_effective(self) -> int | None:
        """Smallest effective start currently queued (None when empty)."""
        g = self._global
        while g:
            eff, ver, key = g[0]
            if self._bucket_ver.get(key) != ver:
                heapq.heappop(g)
                continue
            top = self._clean_top(key)
            if top is None:
                heapq.heappop(g)
                continue
            ready, _, ult = top
            true_eff = self._pe_busy_until(ult)
            if ready > true_eff:
                true_eff = ready
            if true_eff > eff:
                heapq.heappop(g)
                self._repost(key)
                continue
            return eff
        return None

    def discard(self, ult: UserLevelThread) -> None:
        """Forget ``ult`` if queued (no-op otherwise).

        Heap entries are left behind and dropped lazily at pop time, the
        same way superseded wake times are.  Local fault recovery uses
        this to retract exactly the dead ranks' quanta while survivors'
        queues stay intact.
        """
        self._ready_time.pop(ult.tid, None)
        self._ults.pop(ult.tid, None)

    def drain(self) -> Iterable[UserLevelThread]:
        """Remove and yield everything (shutdown / fault rollback)."""
        out = list(self._ults.values())
        self._ready_time.clear()
        self._ults.clear()
        self._buckets.clear()
        self._global.clear()
        self._bucket_ver.clear()
        return out

    def blocked_elsewhere(self, all_ults: Iterable[UserLevelThread]) -> list[UserLevelThread]:
        """ULTs alive but neither queued here nor finished (deadlock report)."""
        return [
            u
            for u in all_ults
            if not u.finished
            and u.tid not in self._ready_time
            and u.state is UltState.BLOCKED
        ]
