"""Global run queue for the discrete-event ULT scheduler.

The simulator runs every PE of the whole job from a single sequential
event loop.  Correct parallel timing requires always resuming the ULT
with the globally smallest *effective start time*:

    effective_start(ult) = max(ult ready time, busy_until of its PE)

because a PE serializes its resident ranks.  The queue is a lazy binary
heap: entries are pushed with the effective start computed at push time
and re-validated at pop time (a PE may have become busier since).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable

from repro.threads.ult import UserLevelThread, UltState


class RunQueue:
    """Priority queue of (ULT, ready_time) honouring per-PE serialization.

    ``pe_busy_until`` maps a ULT to its PE's current ``busy_until`` time;
    it is supplied by the owner (the charm scheduler) so this module stays
    free of runtime dependencies.
    """

    def __init__(self, pe_busy_until: Callable[[UserLevelThread], int]):
        self._pe_busy_until = pe_busy_until
        self._heap: list[tuple[int, int, UserLevelThread, int]] = []
        self._seq = itertools.count()
        #: authoritative ready time per queued ULT (tid -> time); a ULT not
        #: present here is not ready, whatever stale heap entries say.
        self._ready_time: dict[int, int] = {}
        self._ults: dict[int, UserLevelThread] = {}

    def __len__(self) -> int:
        return len(self._ready_time)

    def __contains__(self, ult: UserLevelThread) -> bool:
        return ult.tid in self._ready_time

    def push(self, ult: UserLevelThread, ready_time: int) -> None:
        """Mark ``ult`` ready at ``ready_time`` (idempotent; earliest wins)."""
        prev = self._ready_time.get(ult.tid)
        if prev is not None and prev <= ready_time:
            return
        self._ready_time[ult.tid] = ready_time
        self._ults[ult.tid] = ult
        eff = max(ready_time, self._pe_busy_until(ult))
        heapq.heappush(self._heap, (eff, next(self._seq), ult, ready_time))

    def pop(self) -> tuple[UserLevelThread, int] | None:
        """Remove and return (ULT, ready_time) with the smallest effective
        start, or None when empty."""
        while self._heap:
            eff, _, ult, pushed_ready = heapq.heappop(self._heap)
            current_ready = self._ready_time.get(ult.tid)
            if current_ready is None or current_ready != pushed_ready:
                continue  # stale: ULT was popped or re-pushed earlier
            true_eff = max(current_ready, self._pe_busy_until(ult))
            if true_eff > eff:
                # PE got busier since this entry was pushed; re-queue.
                heapq.heappush(
                    self._heap, (true_eff, next(self._seq), ult, current_ready)
                )
                continue
            del self._ready_time[ult.tid]
            del self._ults[ult.tid]
            return ult, current_ready
        return None

    def peek_effective(self) -> int | None:
        """Smallest effective start currently queued (None when empty)."""
        while self._heap:
            eff, seq, ult, pushed_ready = self._heap[0]
            current_ready = self._ready_time.get(ult.tid)
            if current_ready is None or current_ready != pushed_ready:
                heapq.heappop(self._heap)
                continue
            true_eff = max(current_ready, self._pe_busy_until(ult))
            if true_eff > eff:
                heapq.heappop(self._heap)
                heapq.heappush(
                    self._heap, (true_eff, next(self._seq), ult, current_ready)
                )
                continue
            return eff
        return None

    def drain(self) -> Iterable[UserLevelThread]:
        """Remove and yield everything (shutdown path)."""
        out = list(self._ults.values())
        self._heap.clear()
        self._ready_time.clear()
        self._ults.clear()
        return out

    def blocked_elsewhere(self, all_ults: Iterable[UserLevelThread]) -> list[UserLevelThread]:
        """ULTs alive but neither queued here nor finished (deadlock report)."""
        return [
            u
            for u in all_ults
            if not u.finished
            and u.tid not in self._ready_time
            and u.state is UltState.BLOCKED
        ]
