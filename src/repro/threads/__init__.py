"""User-level threads (ULTs) and scheduling primitives.

Virtual MPI ranks run as ULTs, exactly as in AMPI: blocking communication
suspends the ULT and the processing element's scheduler switches to
another ready rank.  The simulator implements ULTs as baton-passing OS
threads — only one ever runs at a time, handed off explicitly — with all
*reported* time coming from per-ULT simulated clocks.
"""

from repro.threads.ult import UserLevelThread, UltState, UltKilled
from repro.threads.runqueue import RunQueue
from repro.threads.backend import (
    ExecutionBackend,
    PooledBackend,
    ThreadBackend,
    backend_names,
    consume_orphan_count,
    default_backend,
    get_backend,
    orphan_count,
    set_default_backend,
)

__all__ = [
    "UserLevelThread",
    "UltState",
    "UltKilled",
    "RunQueue",
    "ExecutionBackend",
    "ThreadBackend",
    "PooledBackend",
    "get_backend",
    "default_backend",
    "set_default_backend",
    "backend_names",
    "orphan_count",
    "consume_orphan_count",
]
