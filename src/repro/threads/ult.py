"""Baton-passing user-level threads.

Each :class:`UserLevelThread` wraps a real OS thread that spends almost
all of its life blocked on a private event.  Control is handed over
explicitly: the scheduler calls :meth:`UserLevelThread.switch_in`, which
wakes the ULT and blocks the caller until the ULT either *yields* (blocks
on communication) or finishes.  At any instant exactly one thread — the
scheduler or one ULT — is runnable, so no user-visible locking is needed
and execution is fully deterministic.

Simulated time lives in ``ult.clock`` (a :class:`~repro.perf.clock.SimClock`);
the real threads exist only to give user code an ordinary blocking call
stack, like AMPI gives legacy MPI code.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable

from repro.errors import ReproError
from repro.perf.clock import SimClock


class UltState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    ERROR = "error"


class UltKilled(BaseException):
    """Raised inside a ULT to unwind its stack at forced shutdown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class UserLevelThread:
    """One cooperative thread of execution with its own simulated clock."""

    _id_counter = 0

    def __init__(
        self,
        name: str,
        target: Callable[..., Any],
        args: tuple = (),
        stack_bytes: int = 1 << 20,
    ):
        UserLevelThread._id_counter += 1
        self.tid = UserLevelThread._id_counter
        self.name = name
        self.target = target
        self.args = args
        self.stack_bytes = stack_bytes  #: simulated ULT stack reservation
        self.clock = SimClock()
        self.state = UltState.NEW
        self.block_reason: str = ""
        self.result: Any = None
        self.exception: BaseException | None = None

        self._my_turn = threading.Event()
        self._caller_turn = threading.Event()
        self._kill = False
        self._thread: threading.Thread | None = None

    # -- lifecycle (scheduler side) ---------------------------------------------

    def start(self) -> None:
        """Create the backing thread, paused before user code runs."""
        if self.state is not UltState.NEW:
            raise ReproError(f"ULT {self.name} already started")
        self._thread = threading.Thread(
            target=self._run, name=f"ult-{self.name}", daemon=True
        )
        self.state = UltState.READY
        self._thread.start()

    def switch_in(self) -> UltState:
        """Hand the baton to this ULT; returns when it yields or finishes."""
        if self.state not in (UltState.READY, UltState.BLOCKED):
            raise ReproError(
                f"cannot switch to ULT {self.name} in state {self.state.value}"
            )
        self.state = UltState.RUNNING
        self._caller_turn.clear()
        self._my_turn.set()
        self._caller_turn.wait()
        return self.state

    def kill(self) -> None:
        """Force the ULT to unwind (used at abnormal shutdown)."""
        if self.state in (UltState.DONE, UltState.ERROR, UltState.NEW):
            return
        self._kill = True
        self._caller_turn.clear()
        self._my_turn.set()
        self._caller_turn.wait()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def join_thread(self) -> None:
        if self._thread is not None:
            self._thread.join(timeout=5)

    # -- ULT side -----------------------------------------------------------------

    def yield_(self, reason: str = "yield") -> None:
        """Suspend; returns when the scheduler switches back in."""
        self.block_reason = reason
        self.state = UltState.BLOCKED
        self._my_turn.clear()
        self._caller_turn.set()
        self._my_turn.wait()
        if self._kill:
            raise UltKilled(self.name)
        self.block_reason = ""

    def _run(self) -> None:
        self._my_turn.wait()
        if self._kill:
            self.state = UltState.ERROR
            self.exception = UltKilled(self.name)
            self._caller_turn.set()
            return
        try:
            self.result = self.target(*self.args)
            self.state = UltState.DONE
        except UltKilled as e:
            self.state = UltState.ERROR
            self.exception = e
        except BaseException as e:  # noqa: BLE001 - reported to the scheduler
            self.state = UltState.ERROR
            self.exception = e
        finally:
            self._caller_turn.set()

    # -- introspection --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in (UltState.DONE, UltState.ERROR)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ULT({self.name}, {self.state.value}, t={self.clock.now}ns"
            + (f", blocked on {self.block_reason}" if self.block_reason else "")
            + ")"
        )
