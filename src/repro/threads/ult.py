"""Baton-passing user-level threads.

Each :class:`UserLevelThread` runs its user code on a real OS stack
supplied by an :class:`~repro.threads.backend.ExecutionBackend` — a
dedicated thread (``thread`` backend) or a recycled pool worker
(``pooled`` backend).  The stack spends almost all of its life blocked
on a private baton.  Control is handed over explicitly: the scheduler
calls :meth:`UserLevelThread.switch_in`, which wakes the ULT and blocks
the caller until the ULT either *yields* (blocks on communication) or
finishes.  At any instant exactly one thread — the scheduler or one ULT
— is runnable, so no user-visible locking is needed and execution is
fully deterministic regardless of backend.

Simulated time lives in ``ult.clock`` (a :class:`~repro.perf.clock.SimClock`);
the real threads exist only to give user code an ordinary blocking call
stack, like AMPI gives legacy MPI code.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.errors import ReproError
from repro.perf.clock import SimClock
from repro.threads.backend import ExecutionBackend, get_backend


class UltState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    ERROR = "error"


class UltKilled(BaseException):
    """Raised inside a ULT to unwind its stack at forced shutdown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class UserLevelThread:
    """One cooperative thread of execution with its own simulated clock."""

    _id_counter = 0

    def __init__(
        self,
        name: str,
        target: Callable[..., Any],
        args: tuple = (),
        stack_bytes: int = 1 << 20,
        backend: "ExecutionBackend | str | None" = None,
    ):
        UserLevelThread._id_counter += 1
        self.tid = UserLevelThread._id_counter
        self.name = name
        self.target = target
        self.args = args
        self.stack_bytes = stack_bytes  #: simulated ULT stack reservation
        self.backend = get_backend(backend)
        self.clock = SimClock()
        self.state = UltState.NEW
        self.block_reason: str = ""
        self.result: Any = None
        self.exception: BaseException | None = None

        self._kill = False
        self._runner = None  # set by the backend (attach or first bind)

    # -- lifecycle (scheduler side) ---------------------------------------------

    def start(self) -> None:
        """Make the ULT runnable, paused before user code runs.

        The thread backend spawns the backing OS thread here; the pooled
        backend defers until the first :meth:`switch_in` so never-run
        ULTs cost nothing.
        """
        if self.state is not UltState.NEW:
            raise ReproError(f"ULT {self.name} already started")
        self.state = UltState.READY
        self.backend.attach(self)

    def switch_in(self) -> UltState:
        """Hand the baton to this ULT; returns when it yields or finishes."""
        if self.state not in (UltState.READY, UltState.BLOCKED):
            raise ReproError(
                f"cannot switch to ULT {self.name} in state {self.state.value}"
            )
        runner = self._runner
        if runner is None:
            runner = self._runner = self.backend.bind(self)
        self.state = UltState.RUNNING
        runner.resume()
        return self.state

    def kill(self) -> None:
        """Force the ULT to unwind (used at abnormal shutdown).

        Under the pooled backend this recycles the worker rather than
        joining an OS thread; under the thread backend the dead thread
        is joined, and a join that times out is surfaced through the
        backend's orphan counter instead of being silently ignored.
        """
        if self.state in (UltState.DONE, UltState.ERROR, UltState.NEW):
            return
        self._kill = True
        if self._runner is None:
            # Started but never ran: no user stack exists to unwind.
            self.state = UltState.ERROR
            self.exception = UltKilled(self.name)
            return
        # resume() returns only once the ULT has unwound (or yielded
        # again, if user code swallowed UltKilled).  OS-thread cleanup
        # and leak detection happen in join_thread()/backend.reap so a
        # wedged stack is reported exactly once.
        self._runner.resume()

    def join_thread(self, timeout: float | None = None) -> bool:
        """Release the ULT's OS resources; True if a thread leaked."""
        if self._runner is None:
            return False
        return self.backend.reap(self, timeout=timeout)

    # -- ULT side -----------------------------------------------------------------

    def yield_(self, reason: str = "yield") -> None:
        """Suspend; returns when the scheduler switches back in."""
        self.block_reason = reason
        self.state = UltState.BLOCKED
        self._runner.park()
        if self._kill:
            raise UltKilled(self.name)
        self.block_reason = ""

    def _main(self) -> None:
        """Body executed on the backing OS stack (backend-invoked).

        The first ``resume()`` has already been consumed by the backend
        before this runs.  Never raises: all outcomes are captured in
        ``state``/``result``/``exception`` for the scheduler.
        """
        if self._kill:
            self.state = UltState.ERROR
            self.exception = UltKilled(self.name)
            return
        try:
            self.result = self.target(*self.args)
            self.state = UltState.DONE
        except UltKilled as e:
            self.state = UltState.ERROR
            self.exception = e
        except BaseException as e:  # noqa: BLE001 - reported to the scheduler
            self.state = UltState.ERROR
            self.exception = e

    # -- introspection --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in (UltState.DONE, UltState.ERROR)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ULT({self.name}, {self.state.value}, t={self.clock.now}ns"
            + (f", blocked on {self.block_reason}" if self.block_reason else "")
            + ")"
        )
