"""repro — reproduction of "Runtime Techniques for Automatic Process
Virtualization" (Ramos, White, Bhosale, Kale; ICPP Workshops 2022).

An AMPI-style process-virtualization runtime on a simulated machine:
virtual MPI ranks as user-level threads, a simulated ELF loader
(dlopen/dlmopen/dl_iterate_phdr), Isomalloc-backed migration, dynamic
load balancing, and eight global-variable privatization methods,
including the paper's three new runtime methods (PIPglobals, FSglobals,
PIEglobals).

Quickstart
----------
>>> from repro import Program, AmpiJob
>>> p = Program("hello")
>>> p.add_global("my_rank", 0)
>>> @p.function()
... def main(ctx):
...     ctx.g.my_rank = ctx.mpi.rank()
...     ctx.mpi.barrier()
...     return ctx.g.my_rank          # wrong under method="none"!
>>> result = AmpiJob(p.build(), nvp=4, method="pieglobals").run()
>>> sorted(result.exit_values.values())
[0, 1, 2, 3]
"""

from repro.program import Program, ProgramSource, Compiler, CompileOptions
from repro.ampi import AmpiJob, JobResult, Checkpoint
from repro.charm.node import JobLayout
from repro.machine import (
    BRIDGES2,
    BRIDGES2_PATCHED_GLIBC,
    GENERIC_LINUX,
    LEGACY_LINUX_OLD_LD,
    MACOS_ARM,
    STAMPEDE2_ICX,
    TEST_MACHINE,
    MachineModel,
    Toolchain,
    get_machine,
)
from repro.privatization import get_method, method_names

__version__ = "1.0.0"

__all__ = [
    "Program",
    "ProgramSource",
    "Compiler",
    "CompileOptions",
    "AmpiJob",
    "JobResult",
    "Checkpoint",
    "JobLayout",
    "MachineModel",
    "Toolchain",
    "get_machine",
    "get_method",
    "method_names",
    "BRIDGES2",
    "BRIDGES2_PATCHED_GLIBC",
    "GENERIC_LINUX",
    "LEGACY_LINUX_OLD_LD",
    "MACOS_ARM",
    "STAMPEDE2_ICX",
    "TEST_MACHINE",
    "__version__",
]
