"""Automatic crash recovery: detect, roll back, re-map, replay.

When a :class:`~repro.ft.plan.NodeCrash` fires, the node's PEs fail and
every rank resident there is lost.  Recovery is global, like Charm++'s
in-memory restart protocol: *all* ranks (not just the dead ones) roll
back to the last buddy checkpoint, because messages sent after it are
gone with the node that acknowledged them.  Concretely:

1. flush the run queue and reset the MPI layer (mailboxes, posted
   receives, wait/probe registrations, in-flight collectives);
2. re-map dead-node ranks onto surviving PEs through the existing
   :class:`~repro.charm.migration.MigrationEngine` (least-loaded
   surviving PE, deterministic vp order) — recovery migrations show up
   in ``JobResult.migrations`` like any LB move;
3. restore every rank's globals + heap from the checkpoint and give it
   a fresh ULT **reusing its old simulated clock object** (the rank's
   execution context captured that clock at privatization setup);
4. charge a recovery cost (restart barrier + state memcpy + slowest
   retrieval/migration) and re-register every rank at
   ``crash time + recovery time``.

Restart-aware programs (ones that consult restored globals before
iterating, the same contract ``restore_from=`` uses) then replay from
the checkpointed step and finish with numerics identical to a
failure-free run.  Anything that makes this impossible — no redundant
snapshot copy left, a non-checkpointable method, no surviving PE —
raises :class:`~repro.errors.FaultUnrecoverableError` out of the
scheduler loop instead of hanging, carrying a structured ``reason``
from :data:`~repro.errors.UNRECOVERABLE_REASONS`.

Overlapping faults are part of the protocol, not an afterthought:

* a crash whose instant falls inside an in-progress recovery's outage
  window (``[crash, resume)``) is drained *during* that recovery and
  re-enters the protocol with the enlarged failure set — the restart is
  priced as one extended outage and the job never resumes onto a node
  that died mid-restart.  If the cascade kills the restart itself (both
  copies of a snapshot gone), the failure is classified
  ``crash-during-recovery``;
* pending retransmission timers touching dead endpoints are squashed at
  crash-detection time (:meth:`ReliableTransport.on_crash
  <repro.net.reliable.ReliableTransport.on_crash>`), before
  recoverability is decided, so classification is immediate and no
  zombie RTO chain burns fault draws against a dead rank;
* the checkpoint restored from is the newest generation that passes its
  snapshot checksums — a corrupted generation falls back to the
  previous one under global rollback (local recovery cannot: its
  message-log cursors belong to the newest checkpoint) instead of
  silently restoring garbage.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.charm.messages import Mailbox
from repro.charm.reduction import tree_depth
from repro.errors import FaultUnrecoverableError, ReproError
from repro.ft.plan import FaultInjector, NodeCrash
from repro.perf.counters import (
    EV_CASCADE,
    EV_CKPT_FALLBACK,
    EV_FAULT,
    EV_RECOVERY_NS,
)
from repro.threads.ult import UserLevelThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiJob


class RecoveryManager:
    """Watches the scheduler for due node crashes and performs recovery."""

    #: a corrupted current checkpoint generation may be served by the
    #: previous one (False for local recovery: the message-log cursor
    #: snapshot only matches the newest generation)
    supports_ckpt_fallback = True

    def __init__(self, job: "AmpiJob", injector: FaultInjector):
        self.job = job
        self.injector = injector
        self.dead_procs: set[int] = set()
        self.recoveries = 0
        self.recovery_ns_total = 0
        #: crashes absorbed while a recovery was already in progress
        self.cascades = 0
        #: vp -> number of times recovery rolled that rank back; global
        #: rollback counts every rank, local rollback only the dead ones
        self.rollback_counts: Counter[int] = Counter()
        #: one entry per *recovered* crash, in handling order — the
        #: machine-checkable account the chaos invariants reconcile
        #: rollback counters against
        self.crash_log: list[dict[str, Any]] = []
        self._recovering = False
        self._queued: list[NodeCrash] = []
        for crash in injector.plan.node_crashes:
            if crash.node >= len(job.nodes):
                raise ReproError(
                    f"fault plan crashes node {crash.node} but the job "
                    f"has only {len(job.nodes)} nodes"
                )

    # -- scheduler hook -----------------------------------------------------------

    def poll(self, now_ns: int) -> bool:
        """Called before each scheduling quantum; True if a crash fired
        (the popped quantum is stale and must be discarded)."""
        crash = self.injector.next_crash(now_ns)
        if crash is None:
            return False
        self.handle_crash(crash)
        return True

    # -- the recovery protocol ------------------------------------------------------

    def handle_crash(self, crash: NodeCrash) -> None:
        """Recover from ``crash`` and from every crash that lands inside
        the resulting outage window (a *cascade*), re-entering the
        protocol with the enlarged failure set each time.

        Re-entrant calls (none of the scheduler's code paths produce one
        today, but a hardened protocol must not corrupt state if one
        ever does) park the crash on a queue that the active invocation
        drains deterministically.
        """
        if self._recovering:
            self._queued.append(crash)
            return
        self._recovering = True
        try:
            horizon = self._recover_one(crash, cascade=False)
            while horizon is not None:
                if self._queued:
                    nxt = self._queued.pop(0)
                else:
                    # Strictly inside the window: a crash due exactly at
                    # the resume instant is an ordinary next fault.
                    nxt = self.injector.next_crash(horizon - 1)
                if nxt is None:
                    break
                self.cascades += 1
                self.job.counters.incr(EV_CASCADE)
                later = self._recover_one(nxt, cascade=True,
                                          resume_floor=horizon)
                if later is not None:
                    horizon = max(horizon, later)
        finally:
            self._recovering = False

    def _recover_one(self, crash: NodeCrash, *, cascade: bool,
                     resume_floor: int = 0) -> int | None:
        """Handle one crash; returns the resume instant (None when the
        node was already down)."""
        job = self.job
        node = job.nodes[crash.node]
        job.counters.incr(EV_FAULT)
        if job.trace is not None:
            job.trace.instant(
                "fault:node-crash", "ft", crash.at_ns,
                pid=job._pe_pid_base,
                args={"node": crash.node, "cascade": cascade,
                      "pes": [pe.index for proc in node.processes
                              for pe in proc.pes]},
            )

        newly_dead = [pe for proc in node.processes for pe in proc.pes
                      if not pe.failed]
        if not newly_dead:
            return None  # node already down; nothing further to lose
        for pe in newly_dead:
            pe.failed = True
        self.dead_procs.update(proc.index for proc in node.processes)

        # Residents of the PEs that just died (earlier recoveries have
        # already migrated everyone off previously-failed PEs).
        dead_vps = sorted(r.vp for r in job.ranks() if r.pe.failed)
        if job.reliable is not None:
            # Squash RTO chains touching the dead endpoints *now*, before
            # recoverability is decided: even an unrecoverable
            # classification must not race pending retransmissions.
            job.reliable.on_crash(set(dead_vps))

        survivors = [pe for pe in job.pes if not pe.failed]
        if not survivors:
            raise FaultUnrecoverableError(
                f"node {crash.node} crash at t={crash.at_ns} left no "
                "surviving PE",
                reason="crash-during-recovery" if cascade
                else "no-survivor",
            )
        bc = job.buddy_ckpt
        if bc is None or bc.current is None:
            raise FaultUnrecoverableError(
                f"node {crash.node} crashed at t={crash.at_ns} with no "
                "checkpoint to restart from",
                reason="no-checkpoint",
            )
        gen, fellback = bc.usable_generation(
            self.dead_procs, allow_fallback=self.supports_ckpt_fallback)
        if gen is None:
            lost = bc.lost_ranks(self.dead_procs)
            if cascade:
                reason = "crash-during-recovery"
            elif len(job.processes) == 1:
                reason = "nprocs-too-small"
            else:
                reason = "buddy-pair-dead"
            raise FaultUnrecoverableError(
                f"node {crash.node} crash at t={crash.at_ns}"
                f"{' (during recovery)' if cascade else ''} destroyed "
                f"both snapshot copies of vp(s) {lost}; with "
                f"{len(job.processes)} OS process(es) the buddy scheme "
                "holds no surviving replica",
                reason=reason,
            )
        if fellback:
            job.counters.incr(EV_CKPT_FALLBACK)

        recovery_ns, resume_at = self._rollback(crash, survivors,
                                                gen.ckpt, resume_floor)
        self.recoveries += 1
        self.recovery_ns_total += recovery_ns
        job.counters.incr(EV_RECOVERY_NS, recovery_ns)
        self.crash_log.append({
            "node": crash.node,
            "at_ns": crash.at_ns,
            "dead_vps": dead_vps,
            "cascade": cascade,
            "ckpt_fallback": fellback,
            "recovery_ns": recovery_ns,
            "resume_ns": resume_at,
        })
        if job.trace is not None:
            job.trace.span(
                "recovery", "ft", crash.at_ns, recovery_ns,
                pid=job._pe_pid_base,
                args={"node": crash.node, "recoveries": self.recoveries,
                      "cascade": cascade},
            )
        return resume_at

    def _rollback(self, crash: NodeCrash, survivors: list, ckpt,
                  resume_floor: int = 0) -> tuple[int, int]:
        """Global rollback to checkpoint ``ckpt``; returns (cost,
        resume instant)."""
        job = self.job

        # 1. Quiesce: nothing queued or half-communicated survives the
        #    rollback horizon.  The transport's receive cursors must
        #    resync to its send cursors: the flush kills any in-flight
        #    retransmission mid-chain, so its seq will never complete,
        #    and the replayed ranks re-send with fresh seqs above it.
        job.scheduler.flush()
        job._ft_reset_mpi_state()
        if job.reliable is not None:
            job.reliable.resync()

        # 2. Dead ranks move to the least-loaded surviving PE, in vp
        #    order — the same deterministic tie-break the LB uses.
        move_ns = 0
        for rank in sorted((r for r in job.ranks() if r.pe.failed),
                           key=lambda r: r.vp):
            target = min(survivors,
                         key=lambda pe: (len(pe.resident), pe.index))
            rec = job.migration_engine.migrate(rank, target)
            move_ns = max(move_ns, rec.ns)

        # 3. Every rank restarts from its snapshot on a fresh ULT that
        #    keeps the old SimClock object (contexts hold references).
        for rank in job.ranks():
            old = rank.ult
            clock = old.clock
            if not old.finished:
                old.kill()
            old.join_thread()
            ult = UserLevelThread(
                f"vp{rank.vp}", job._rank_entry, (rank,),
                stack_bytes=job.stack_bytes,
                backend=job.ult_backend,
            )
            ult.clock = clock
            rank.ult = ult
            rank.finished = False
            rank.exit_value = None
            ckpt.restore_rank(rank, reset_heap=True)
            self.rollback_counts[rank.vp] += 1

        # 4. Price the restart: a job-wide barrier, unpacking the
        #    checkpoint state, and the slowest snapshot retrieval/move.
        costs = job.costs
        recovery_ns = (
            tree_depth(job.nvp) * costs.collective_step_ns
            + costs.memcpy_ns(ckpt.nbytes)
            + move_ns
        )
        # A cascade never resumes before the recovery it interrupted
        # would have (the outage window only ever extends).
        resume_at = max(crash.at_ns + recovery_ns, resume_floor)
        for rank in job.ranks():
            # A rank can never run before its process finished AMPI
            # startup, even when the crash struck mid-initialization.
            job.scheduler.reregister(
                rank,
                max(resume_at, rank.pe.process.startup_clock.now),
            )
        return recovery_ns, resume_at


class LocalRecoveryManager(RecoveryManager):
    """Message-logging local recovery: only dead-node ranks roll back.

    Requires the job's :class:`~repro.ft.msglog.MessageLogger` (armed by
    ``recovery="local"``).  Where the global protocol flushes the whole
    scheduler and rewinds every rank, this one retracts exactly the lost
    timeline — the dead ranks' queued quanta, mailboxes, collective
    arrivals and transport channels — restores only those ranks from the
    buddy checkpoint, and lets them catch up by replaying logged
    messages and collective results while survivors keep running.  The
    recovery cost therefore scales with the *recovering* set (its
    restart barrier, its snapshot bytes, its slowest move), not with the
    job: deterministically cheaper than a global rollback of the same
    crash.
    """

    supports_ckpt_fallback = False

    def _rollback(self, crash: NodeCrash, survivors: list, ckpt,
                  resume_floor: int = 0) -> tuple[int, int]:
        job = self.job
        recovering = sorted((r for r in job.ranks() if r.pe.failed),
                            key=lambda r: r.vp)
        if not recovering:
            return 0, crash.at_ns
        vps = {r.vp for r in recovering}

        # 1. Retract exactly the lost timeline.  Survivors' run-queue
        #    entries, mailboxes and half-built collectives stay live.
        for rank in recovering:
            job.scheduler.runq.discard(rank.ult)
            job._mailboxes[rank.vp] = Mailbox()
            job._posted[rank.vp] = []
            job._waiting.pop(rank.vp, None)
            job._waiting_any.pop(rank.vp, None)
            job._probing.pop(rank.vp, None)
            # The rank re-executes from MPI_Init; its lifecycle markers
            # belong to the timeline that just died.
            job._initialized.discard(rank.vp)
            job._finalized.discard(rank.vp)
        job.collectives.purge_ranks(vps)
        job.msglog.rollback(vps, job)

        # 2. Dead ranks move to the least-loaded surviving PE, in vp
        #    order — the same deterministic tie-break the LB uses.
        move_ns = 0
        for rank in recovering:
            target = min(survivors,
                         key=lambda pe: (len(pe.resident), pe.index))
            rec = job.migration_engine.migrate(rank, target)
            move_ns = max(move_ns, rec.ns)

        # 3. Only the recovering ranks restart from their snapshots, on
        #    fresh ULTs keeping the old SimClock objects.
        restored_bytes = 0
        for rank in recovering:
            old = rank.ult
            clock = old.clock
            if not old.finished:
                old.kill()
            old.join_thread()
            ult = UserLevelThread(
                f"vp{rank.vp}", job._rank_entry, (rank,),
                stack_bytes=job.stack_bytes,
                backend=job.ult_backend,
            )
            ult.clock = clock
            rank.ult = ult
            rank.finished = False
            rank.exit_value = None
            ckpt.restore_rank(rank, reset_heap=True)
            snap = ckpt.snapshots.get(rank.vp)
            if snap is not None:
                restored_bytes += snap.nbytes
            self.rollback_counts[rank.vp] += 1

        # 4. Price the restart over the recovering set only: its restart
        #    barrier, its snapshot bytes, its slowest retrieval/move.
        costs = job.costs
        recovery_ns = (
            tree_depth(len(recovering)) * costs.collective_step_ns
            + costs.memcpy_ns(restored_bytes)
            + move_ns
        )
        resume_at = max(crash.at_ns + recovery_ns, resume_floor)
        for rank in recovering:
            job.scheduler.reregister(
                rank,
                max(resume_at, rank.pe.process.startup_clock.now),
            )
        return recovery_ns, resume_at
