"""Double in-memory ("buddy") checkpointing.

Charm++'s classic in-memory fault-tolerance scheme: at a checkpoint
collective every OS process keeps its ranks' packed snapshots locally
*and* pushes a copy to a buddy process — ``(p + 1) % nprocs``.  A single
node failure then always leaves at least one surviving copy of every
rank's state; recovery restores from it without touching disk.

The simulator prices a checkpoint as the slowest process's work:
a local memcpy of its share plus the :meth:`~repro.net.network.Network.
transfer_ns` of shipping that share to the buddy's endpoint, on top of
the collective barrier the caller already pays.  A job with a single OS
process has nowhere redundant to put the copy — its buddy is itself —
so a crash there is deliberately unrecoverable.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CheckpointError, FaultUnrecoverableError
from repro.ampi.checkpoint import Checkpoint, RankSnapshot
from repro.net.network import Network
from repro.perf.costs import CostModel
from repro.perf.counters import CounterSet, EV_CKPT, EV_CKPT_BYTES
from repro.trace.recorder import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiJob


def snapshot_checksum(snap: RankSnapshot) -> int:
    """CRC32 over a rank snapshot's packed state.

    Computed when the checkpoint is taken and re-verified before any
    restore, so a snapshot that rotted in place (the in-memory analogue
    of a bad DIMM or a truncated buddy transfer) is *detected* instead
    of silently restored as garbage.  Pickle protocol is pinned so the
    encoding — and therefore the checksum — is stable within a run.
    """
    return zlib.crc32(pickle.dumps(
        (snap.vp, snap.clock_ns, snap.globals_, snap.heap_items),
        protocol=4,
    ))


@dataclass
class CheckpointGeneration:
    """One consistent checkpoint: state + holders + integrity checksums."""

    ckpt: Checkpoint
    #: vp -> (primary process index, buddy process index)
    holders: dict[int, tuple[int, int]]
    #: vp -> CRC32 of the snapshot as captured
    checksums: dict[int, int]
    at_ns: int

    def corrupt_vps(self) -> list[int]:
        """Ranks whose stored snapshot no longer matches its checksum."""
        return sorted(
            vp for vp, snap in self.ckpt.snapshots.items()
            if snapshot_checksum(snap) != self.checksums[vp]
        )

    def recoverable_after(self, dead_procs: set[int]) -> bool:
        """Does every rank still have a surviving snapshot copy?"""
        return all(
            primary not in dead_procs or buddy not in dead_procs
            for primary, buddy in self.holders.values()
        )

    def lost_ranks(self, dead_procs: set[int]) -> list[int]:
        """Ranks whose both snapshot copies died (for error reporting)."""
        return sorted(
            vp for vp, (primary, buddy) in self.holders.items()
            if primary in dead_procs and buddy in dead_procs
        )


@dataclass(frozen=True)
class FtConfig:
    """Fault-tolerance knobs for one job.

    ``ckpt_interval_ns = 0`` accepts every ``mpi.checkpoint()`` request;
    a positive interval coalesces requests arriving sooner than that
    after the last accepted checkpoint into a plain barrier, so apps can
    call the collective every iteration and let the runtime pick the
    actual cadence.
    """

    ckpt_interval_ns: int = 0

    def __post_init__(self) -> None:
        if self.ckpt_interval_ns < 0:
            raise FaultUnrecoverableError(
                "checkpoint interval must be >= 0",
                reason="bad-ft-config",
            )


class BuddyCheckpointer:
    """Owns the job's last consistent double in-memory checkpoint."""

    def __init__(self, config: FtConfig, network: Network, costs: CostModel,
                 counters: CounterSet, trace: TraceRecorder | None = None,
                 trace_pid_base: int = 0):
        self.config = config
        self.network = network
        self.costs = costs
        self.counters = counters
        self.trace = trace
        self.trace_pid_base = trace_pid_base
        #: the two retained checkpoint generations, newest first; the
        #: previous generation is the fallback when the current one
        #: fails its integrity checksums at recovery time
        self.current: CheckpointGeneration | None = None
        self.previous: CheckpointGeneration | None = None
        self.last_at_ns: int | None = None
        self.taken = 0
        self.coalesced = 0
        #: generations discarded after failing checksum verification
        self.fallbacks = 0

    # Back-compat accessors: most of the runtime only cares about the
    # newest generation.

    @property
    def checkpoint(self) -> Checkpoint | None:
        return self.current.ckpt if self.current is not None else None

    @property
    def holders(self) -> dict[int, tuple[int, int]]:
        return self.current.holders if self.current is not None else {}

    @staticmethod
    def buddy_of(proc_index: int, nprocs: int) -> int:
        return (proc_index + 1) % nprocs

    @staticmethod
    def _live_buddy_of(job: "AmpiJob", proc_index: int) -> int:
        """The next process ring-wise that still has live PEs.

        Before any failure this is ``(p + 1) % nprocs``; after one, the
        replacement checkpoint must not park its redundant copy on a
        dead process.  A job reduced to one live process gets itself —
        deliberately non-redundant.
        """
        nprocs = len(job.processes)
        for step in range(1, nprocs + 1):
            cand = job.processes[(proc_index + step) % nprocs]
            if any(not pe.failed for pe in cand.pes):
                return cand.index
        return proc_index

    def due(self, at_ns: int) -> bool:
        """Would a checkpoint request at ``at_ns`` be accepted?"""
        if self.last_at_ns is None or self.config.ckpt_interval_ns == 0:
            return True
        return at_ns - self.last_at_ns >= self.config.ckpt_interval_ns

    def take(self, job: "AmpiJob", at_ns: int) -> int:
        """Capture + replicate one collective checkpoint at ``at_ns``.

        Returns the extra simulated ns (beyond the caller's barrier):
        the slowest process's local copy plus buddy transfer.
        """
        try:
            ckpt = Checkpoint.capture(job)
        except CheckpointError as e:
            raise FaultUnrecoverableError(
                f"buddy checkpointing impossible under method "
                f"{job.method.name!r}: {e}",
                reason="method-uncheckpointable",
            ) from e

        share: dict[int, int] = {p.index: 0 for p in job.processes}
        holders: dict[int, tuple[int, int]] = {}
        for rank in job.ranks():
            pidx = rank.pe.process.index
            share[pidx] += ckpt.snapshots[rank.vp].nbytes
            holders[rank.vp] = (pidx, self._live_buddy_of(job, pidx))

        extra = 0
        for proc in job.processes:
            if all(pe.failed for pe in proc.pes):
                continue  # dead processes hold no ranks and no copies
            nbytes = share[proc.index]
            buddy = job.processes[self._live_buddy_of(job, proc.index)]
            ns = self.costs.memcpy_ns(nbytes)
            if buddy is not proc:
                ns += self.network.transfer_ns(
                    nbytes, proc.endpoint, buddy.endpoint
                )
            extra = max(extra, ns)

        self.previous = self.current
        self.current = CheckpointGeneration(
            ckpt=ckpt, holders=holders,
            checksums={vp: snapshot_checksum(snap)
                       for vp, snap in ckpt.snapshots.items()},
            at_ns=at_ns,
        )
        self.last_at_ns = at_ns
        self.taken += 1
        if getattr(job, "msglog", None) is not None:
            # Local recovery never rewinds below this checkpoint: the
            # message log snapshots its cursors and drops entries the
            # checkpoint made unreachable.
            job.msglog.on_checkpoint(job)
        self.counters.incr(EV_CKPT)
        self.counters.incr(EV_CKPT_BYTES, ckpt.nbytes)
        if self.trace is not None:
            self.trace.instant(
                "buddy-ckpt", "ft", at_ns,
                pid=self.trace_pid_base,
                args={"nbytes": ckpt.nbytes, "extra_ns": extra,
                      "nprocs": len(job.processes)},
            )
        return extra

    def recoverable_after(self, dead_procs: set[int]) -> bool:
        """Does every rank still have a surviving snapshot copy?"""
        if self.current is None:
            return False
        return self.current.recoverable_after(dead_procs)

    def lost_ranks(self, dead_procs: set[int]) -> list[int]:
        """Ranks whose both snapshot copies died (for error reporting)."""
        return self.current.lost_ranks(dead_procs) if self.current else []

    # -- recovery-time selection --------------------------------------------------

    def corrupt_snapshot(self, vp: int) -> None:
        """Deliberately rot rank ``vp``'s stored snapshot (test hook).

        Mutates the captured globals so the generation's checksum no
        longer matches — the deterministic stand-in for an in-memory
        copy decaying between checkpoint and crash.
        """
        if self.current is None:
            raise CheckpointError("no checkpoint generation to corrupt")
        self.current.ckpt.snapshots[vp].globals_["__rotted__"] = True

    def usable_generation(
        self, dead_procs: set[int], *, allow_fallback: bool = True,
    ) -> tuple[CheckpointGeneration | None, bool]:
        """The newest *intact* generation to restore from.

        Verifies the current generation's snapshot checksums.  If any
        snapshot rotted, the generation is discarded and — when
        ``allow_fallback`` (global rollback; local recovery cannot use
        it because the message-log cursors belong to the newest
        checkpoint) — recovery falls back to the previous generation,
        which must itself verify.  Restoring an older generation only
        costs extra re-execution; restoring garbage would corrupt the
        job, so exhausting intact generations raises
        :class:`FaultUnrecoverableError` with reason
        ``checkpoint-corrupt``.

        Returns ``(generation, fellback)``; ``(None, False)`` when the
        intact generation cannot cover ``dead_procs`` (the caller
        classifies that as buddy-pair death).
        """
        assert self.current is not None
        bad = self.current.corrupt_vps()
        if not bad:
            if self.current.recoverable_after(dead_procs):
                return self.current, False
            return None, False
        prev = self.previous if allow_fallback else None
        prev_bad = prev.corrupt_vps() if prev is not None else None
        if prev is not None and not prev_bad \
                and prev.recoverable_after(dead_procs):
            # Promote: the corrupt generation is gone for good; every
            # later recovery (until the next checkpoint) restores from
            # the surviving one.
            self.current = prev
            self.previous = None
            self.fallbacks += 1
            return prev, True
        if not allow_fallback:
            detail = ("local recovery cannot fall back to an older "
                      "generation (message-log cursors belong to the "
                      "newest checkpoint)")
        elif prev is None:
            detail = "no previous generation retained"
        elif prev_bad:
            detail = f"previous generation corrupt too (vp(s) {prev_bad})"
        else:
            detail = "previous generation lost its surviving copy"
        raise FaultUnrecoverableError(
            f"checkpoint snapshot(s) of vp(s) {bad} failed checksum "
            f"verification and {detail}",
            reason="checkpoint-corrupt",
        )
