"""Fault-tolerance subsystem: deterministic fault injection, buddy
checkpointing, and automatic restart.

The paper's privatization methods exist to make AMPI ranks migratable;
the flagship payoff of migratability in the Charm++/AMPI ecosystem is
fault tolerance — double in-memory ("buddy") checkpointing and restart
on surviving PEs.  This package adds exactly that to the simulator:

* :mod:`repro.ft.prng` — a counter-based PRNG (splitmix64-style) so
  every fault decision is a pure function of ``(seed, stream, counter)``
  — no hidden generator state, no wall clock, fully replayable;
* :mod:`repro.ft.plan` — :class:`FaultPlan` schedules node crashes at
  simulated-ns instants and message-level faults (drop / duplicate /
  corrupt) by probability, and :class:`FaultInjector` executes it;
* :mod:`repro.ft.buddy` — :class:`BuddyCheckpointer`, the periodic
  collective double-in-memory checkpoint scheme (each process stores
  its ranks' snapshots locally *and* on a buddy process);
* :mod:`repro.ft.recovery` — :class:`RecoveryManager`, which detects
  node death, rolls every rank back to the last consistent checkpoint,
  re-maps dead-node ranks onto surviving PEs via the migration engine,
  and replays; :class:`LocalRecoveryManager` rolls back *only* the dead
  ranks and replays them from the message log while survivors keep
  running;
* :mod:`repro.ft.msglog` — :class:`MessageLogger`, the sender-based
  message/determinant/collective-result log behind
  ``recovery="local"`` (requires ``transport="reliable"``).
"""

from repro.ft.buddy import BuddyCheckpointer, FtConfig
from repro.ft.msglog import MessageLogger
from repro.ft.plan import FaultInjector, FaultPlan, MessageFaults, NodeCrash
from repro.ft.prng import CounterRng
from repro.ft.recovery import LocalRecoveryManager, RecoveryManager

__all__ = [
    "BuddyCheckpointer",
    "CounterRng",
    "FaultInjector",
    "FaultPlan",
    "FtConfig",
    "LocalRecoveryManager",
    "MessageFaults",
    "MessageLogger",
    "NodeCrash",
    "RecoveryManager",
]
