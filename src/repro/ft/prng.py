"""Counter-based pseudo-random numbers for deterministic fault injection.

gem5-style reproducibility (Pai et al., PAPERS.md) demands that a
simulation be a pure function of its inputs.  Stateful generators break
that the moment two subsystems interleave draws differently; wall-clock
seeding breaks it always.  A *counter-based* generator sidesteps both:
the n-th value of a stream is ``mix(seed ^ stream ^ n)`` — stateless,
order-independent, and trivially replayable.  The mixer is the
splitmix64 finalizer (Steele et al.), which passes BigCrush when used
this way and needs only integer ops.
"""

from __future__ import annotations

import zlib

_MASK64 = (1 << 64) - 1
#: golden-ratio increment, the splitmix64 stream constant
_GAMMA = 0x9E3779B97F4A7C15


def _mix(x: int) -> int:
    """splitmix64 finalizer: a 64-bit avalanche permutation."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _stream_id(stream: int | str) -> int:
    """Derive a 64-bit stream id; strings hash via CRC32 (stable across
    Python processes, unlike ``hash``)."""
    if isinstance(stream, str):
        return _mix(zlib.crc32(stream.encode("utf-8")))
    return stream & _MASK64


class CounterRng:
    """A family of independent deterministic random streams.

    ``CounterRng(seed, "msg").u64(i)`` is the same value in every run,
    on every platform, regardless of how many draws other streams made.
    """

    __slots__ = ("seed", "stream", "_base")

    def __init__(self, seed: int, stream: int | str = 0):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed
        self.stream = stream
        self._base = _mix(seed ^ _mix(_stream_id(stream)))

    def u64(self, counter: int) -> int:
        """The ``counter``-th 64-bit value of this stream."""
        return _mix(self._base + (counter & _MASK64) * _GAMMA)

    def uniform(self, counter: int) -> float:
        """The ``counter``-th float in [0, 1) (53-bit resolution)."""
        return (self.u64(counter) >> 11) * (1.0 / (1 << 53))

    def randrange(self, counter: int, n: int) -> int:
        """The ``counter``-th integer in [0, n)."""
        if n <= 0:
            raise ValueError("randrange needs n >= 1")
        return self.u64(counter) % n
