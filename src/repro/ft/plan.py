"""Fault plans: *what* fails, *when*, decided before the job runs.

A :class:`FaultPlan` is immutable data — node crashes pinned to
simulated-ns instants plus per-message fault probabilities.  The plan
never consults a wall clock or a stateful generator, so two jobs built
from the same plan inject byte-for-byte identical fault sequences
(the determinism acceptance bar for this subsystem).

:class:`FaultInjector` is the small mutable cursor that walks a plan
during one job: it remembers which crashes already fired and numbers
the messages so each send's fault decision is
``CounterRng(seed, "msg").uniform(message_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ft.prng import CounterRng


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies at simulated instant ``at_ns``.

    The crash takes effect at the first scheduling decision at or after
    ``at_ns`` (the simulator's event granularity): every PE on the node
    fails and every rank resident there is lost.
    """

    at_ns: int
    node: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ReproError(f"crash time must be >= 0, got {self.at_ns}")
        if self.node < 0:
            raise ReproError(f"node index must be >= 0, got {self.node}")

    def to_dict(self) -> dict:
        return {"at_ns": self.at_ns, "node": self.node}

    @classmethod
    def from_dict(cls, d: dict) -> "NodeCrash":
        return cls(at_ns=d["at_ns"], node=d["node"])


@dataclass(frozen=True)
class MessageFaults:
    """Per-message fault probabilities for point-to-point traffic.

    How a fault is paid for depends on the job's transport:

    * ``transport="priced"`` does not model the repair protocol — each
      faulted send is charged a flat latency lump
      (:meth:`FaultInjector.message_penalty_ns`: ``retry_timeout_ns``
      plus a retransmission for drop/corrupt, one overhead for a
      discarded duplicate) on its one-and-only delivery;
    * ``transport="reliable"`` runs the real protocol
      (:mod:`repro.net.reliable`): one fault draw per transmission
      *attempt*, checksum rejection, dedup windows, and retransmission
      timers with ``retry_timeout_ns`` as the base RTO (exponential
      backoff) — no flat penalty is ever added on top.

    Either way the payload arrives intact exactly once, so faults cost
    latency but never change application data — numerics stay identical
    to a fault-free run.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    #: priced transport: detection + retransmission lump per lost or
    #: corrupt message; reliable transport: base retransmission timeout
    retry_timeout_ns: int = 50_000

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ReproError(f"{name} probability must be in [0,1], "
                                 f"got {p}")
        if self.drop + self.duplicate + self.corrupt > 1.0:
            raise ReproError("fault probabilities must sum to <= 1")
        if self.retry_timeout_ns < 0:
            raise ReproError("retry_timeout_ns must be >= 0")

    @property
    def any(self) -> bool:
        return (self.drop + self.duplicate + self.corrupt) > 0.0

    def to_dict(self) -> dict:
        return {"drop": self.drop, "duplicate": self.duplicate,
                "corrupt": self.corrupt,
                "retry_timeout_ns": self.retry_timeout_ns}

    @classmethod
    def from_dict(cls, d: dict) -> "MessageFaults":
        return cls(drop=d.get("drop", 0.0),
                   duplicate=d.get("duplicate", 0.0),
                   corrupt=d.get("corrupt", 0.0),
                   retry_timeout_ns=d.get("retry_timeout_ns", 50_000))


@dataclass(frozen=True)
class FaultPlan:
    """The complete, deterministic fault schedule for one job."""

    seed: int = 0
    node_crashes: tuple[NodeCrash, ...] = ()
    message_faults: MessageFaults | None = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ReproError("fault-plan seed must be non-negative")
        # Normalize: accept any iterable of crashes, store sorted tuple.
        crashes = tuple(sorted(self.node_crashes,
                               key=lambda c: (c.at_ns, c.node)))
        object.__setattr__(self, "node_crashes", crashes)

    @classmethod
    def random_crashes(cls, seed: int, k: int, nodes: int,
                       window: tuple[int, int],
                       message_faults: MessageFaults | None = None,
                       ) -> "FaultPlan":
        """``k`` crashes of distinct nodes at seeded-random instants in
        ``[window[0], window[1])``.

        Deterministic in ``(seed, k, nodes, window)``; the first ``j``
        crashes of a ``k``-crash plan equal the ``j``-crash plan, so
        overhead sweeps over ``k`` nest naturally.
        """
        if k < 0:
            raise ReproError("crash count must be >= 0")
        if k > nodes:
            raise ReproError(f"cannot crash {k} distinct nodes out of "
                             f"{nodes}")
        lo, hi = window
        if not 0 <= lo < hi:
            raise ReproError(f"bad crash window {window!r}")
        rng = CounterRng(seed, "crash")
        crashes = []
        alive = list(range(nodes))
        for i in range(k):
            at = lo + rng.randrange(2 * i, hi - lo)
            node = alive.pop(rng.randrange(2 * i + 1, len(alive)))
            crashes.append(NodeCrash(at_ns=at, node=node))
        return cls(seed=seed, node_crashes=tuple(crashes),
                   message_faults=message_faults)

    def to_dict(self) -> dict:
        """JSON-able encoding; :meth:`from_dict` round-trips it, so any
        result row that embeds its plan is reproducible by itself."""
        return {
            "seed": self.seed,
            "node_crashes": [c.to_dict() for c in self.node_crashes],
            "message_faults": (self.message_faults.to_dict()
                               if self.message_faults is not None else None),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        mf = d.get("message_faults")
        return cls(
            seed=d.get("seed", 0),
            node_crashes=tuple(NodeCrash.from_dict(c)
                               for c in d.get("node_crashes", ())),
            message_faults=(MessageFaults.from_dict(mf)
                            if mf is not None else None),
        )


#: message fault kinds in draw order (drop | duplicate | corrupt)
MSG_FAULT_KINDS = ("drop", "duplicate", "corrupt")


@dataclass
class FaultInjector:
    """Mutable cursor executing a :class:`FaultPlan` during one job."""

    plan: FaultPlan
    _crash_idx: int = 0
    _msg_idx: int = field(default=0, repr=False)
    _msg_rng: CounterRng | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._msg_rng = CounterRng(self.plan.seed, "msg")

    # -- node crashes -----------------------------------------------------------

    def next_crash(self, now_ns: int) -> NodeCrash | None:
        """Pop the next crash due at or before ``now_ns``, if any."""
        crashes = self.plan.node_crashes
        if self._crash_idx < len(crashes) \
                and crashes[self._crash_idx].at_ns <= now_ns:
            crash = crashes[self._crash_idx]
            self._crash_idx += 1
            return crash
        return None

    @property
    def pending_crashes(self) -> int:
        return len(self.plan.node_crashes) - self._crash_idx

    # -- draw accounting --------------------------------------------------------

    @property
    def draws(self) -> int:
        """Message-fault decisions consumed so far.

        The determinism ledger: exactly one draw is spent per
        transmission *attempt* (``transport="reliable"``) or per send
        (``transport="priced"``), so after a run this reconciles with
        the transport counters — see
        :func:`repro.chaos.invariants.check_fault_draws`.
        """
        return self._msg_idx

    # -- message faults -----------------------------------------------------------

    def next_message_fault(self) -> str | None:
        """Fault kind for the next point-to-point send (or None).

        Decision ``i`` depends only on ``(seed, i)`` — the i-th send of
        a run is faulted identically in every replay.
        """
        mf = self.plan.message_faults
        if mf is None or not mf.any:
            return None
        i = self._msg_idx
        self._msg_idx += 1
        r = self._msg_rng.uniform(i)
        acc = 0.0
        for kind in MSG_FAULT_KINDS:
            acc += getattr(mf, kind)
            if r < acc:
                return kind
        return None

    def message_penalty_ns(self, kind: str, transfer_ns: int,
                           msg_overhead_ns: int) -> int:
        """Extra latency the transport pays to repair fault ``kind``."""
        mf = self.plan.message_faults
        if kind in ("drop", "corrupt"):
            # Detected (timeout / checksum), then fully retransmitted.
            return mf.retry_timeout_ns + transfer_ns
        if kind == "duplicate":
            # Receiver identifies and discards the spurious copy.
            return msg_overhead_ns
        raise ReproError(f"unknown message fault kind {kind!r}")
