"""Sender-based message logging for local rollback recovery.

Global rollback (:class:`~repro.ft.recovery.RecoveryManager`) is simple
but wasteful: a single node death rewinds *every* rank to the last buddy
checkpoint.  The classic message-logging alternative — Charm++'s local
recovery protocol — rolls back only the ranks that actually died, and
re-executes them by *replaying* the messages they had received, while
survivors keep running.  For that to work the runtime must remember, on
the sender side, every payload sent since the last checkpoint, plus each
receiver's *determinants* (the order in which it consumed messages, so
wildcard receives replay identically).

:class:`MessageLogger` is that memory:

* ``log_send``      — retain a copy of each outgoing payload, keyed by
  the reliable transport's per-channel sequence number;
* ``on_consume``    — advance the receiver's per-channel consumption
  cursor and append/verify its determinant entry;
* ``log_collective``/``replay_collective`` — collective results are
  logged per ``(vp, comm, seq)`` at completion, so a recovering rank
  replays collectives that survivors already finished without a new
  rendezvous (which could never complete — survivors will not re-enter);
* ``replay_match``  — serve a recovering rank's posted receive from the
  log, in determinant order for wildcard sources;
* ``on_checkpoint`` — snapshot every cursor (channel send seqs, consume
  windows, determinant positions, collective sequence counters) and
  garbage-collect log entries the checkpoint made unreachable;
* ``rollback``      — rewind exactly the recovering ranks' cursors to
  the snapshot and discard their own post-checkpoint log entries (those
  re-sends regenerate during replay).

Logging requires ``transport="reliable"``: channel sequence numbers are
the identity that makes replay suppression and exactly-once delivery
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ampi.collectives import _copy_payload
from repro.charm.messages import ANY_TAG, Message
from repro.net.reliable import SeqWindow
from repro.perf.counters import CounterSet, EV_LOG_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiJob


@dataclass(slots=True)
class LoggedMessage:
    """One sender-side log entry (a payload copy plus matching metadata)."""

    src_vp: int
    dst_vp: int
    seq: int          #: channel sequence number (reliable transport)
    src: int          #: sender's communicator rank
    dst: int          #: receiver's communicator rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int


class _DetLog:
    """One receiver's determinant sequence ``(src_vp, chan_seq)``.

    Positions are absolute (stable across front-truncation GC):
    ``items[i - base]`` holds determinant ``i``; ``pos`` is the next
    position to consume.  Outside replay ``pos == end`` and consumption
    appends; during replay ``pos < end`` and consumption re-confirms the
    recorded order.
    """

    __slots__ = ("base", "items", "pos")

    def __init__(self) -> None:
        self.base = 0
        self.items: list[tuple[int, int]] = []
        self.pos = 0

    @property
    def end(self) -> int:
        return self.base + len(self.items)

    def at(self, pos: int) -> tuple[int, int]:
        return self.items[pos - self.base]

    def gc(self) -> None:
        """Drop determinants before the current position (checkpointed
        history is never replayed)."""
        del self.items[: self.pos - self.base]
        self.base = self.pos


@dataclass
class _CkptCursors:
    """Every replay cursor as of the last accepted checkpoint."""

    send_seqs: dict[tuple[int, int], int] = field(default_factory=dict)
    consumed: dict[tuple[int, int], tuple[int, frozenset]] = \
        field(default_factory=dict)
    det_pos: dict[int, int] = field(default_factory=dict)
    coll_seq: dict[tuple[int, int], int] = field(default_factory=dict)


class MessageLogger:
    """Owns the job's message/determinant/collective logs and cursors."""

    def __init__(self, counters: CounterSet):
        self.counters = counters
        #: (src_vp, dst_vp) -> {chan_seq: LoggedMessage}
        self._entries: dict[tuple[int, int], dict[int, LoggedMessage]] = {}
        #: (src_vp, dst_vp) -> consumed chan_seqs (receiver side)
        self._consumed: dict[tuple[int, int], SeqWindow] = {}
        self._determinants: dict[int, _DetLog] = {}
        #: (vp, comm cid, collective seq) -> (release_ns, result)
        self._coll_log: dict[tuple[int, int, int], tuple[int, Any]] = {}
        self._ckpt = _CkptCursors()
        #: ranks that have ever been locally rolled back; their receives
        #: consult the log first until its entries run dry
        self.replaying: set[int] = set()
        self.logged_msgs = 0
        self.logged_bytes = 0

    # -- recording (failure-free fast path) ------------------------------------------

    def log_send(self, msg: Message) -> None:
        """Retain ``msg`` after the transport assigned its ``chan_seq``."""
        key = (msg.src_vp, msg.dst_vp)
        chan = self._entries.get(key)
        if chan is None:
            chan = self._entries[key] = {}
        chan[msg.chan_seq] = LoggedMessage(
            src_vp=msg.src_vp, dst_vp=msg.dst_vp, seq=msg.chan_seq,
            src=msg.src, dst=msg.dst, tag=msg.tag, comm_id=msg.comm_id,
            payload=_copy_payload(msg.payload), nbytes=msg.nbytes,
        )
        self.logged_msgs += 1
        self.logged_bytes += msg.nbytes
        self.counters.incr(EV_LOG_BYTES, msg.nbytes)

    def on_consume(self, vp: int, src_vp: int, chan_seq: int) -> None:
        """A receive completed: record the determinant and mark the
        channel sequence number consumed."""
        if chan_seq < 0:
            return  # collective-internal or priced-transport delivery
        w = self._consumed.get((src_vp, vp))
        if w is None:
            w = self._consumed[(src_vp, vp)] = SeqWindow()
        w.add(chan_seq)
        d = self._determinants.get(vp)
        if d is None:
            d = self._determinants[vp] = _DetLog()
        if d.pos < d.end:
            d.pos += 1  # replay: the recorded determinant re-confirmed
        else:
            d.items.append((src_vp, chan_seq))
            d.pos = d.end

    def log_collective(self, vp: int, cid: int, seq: int, release_ns: int,
                       result: Any) -> None:
        self._coll_log[(vp, cid, seq)] = (release_ns, _copy_payload(result))

    def already_consumed(self, dst_vp: int, src_vp: int,
                         chan_seq: int) -> bool:
        """Has ``dst_vp`` already consumed this channel sequence number?

        The MPI match layer uses this to discard duplicate copies of a
        message that reached the rank twice during local recovery — once
        from the sender's re-execution through the transport and once
        from this log (a co-recovering sender's re-send is re-logged the
        moment it happens, so the replaying receiver can legitimately
        see both).  Whichever copy is consumed first wins; the window
        makes the other one inert instead of satisfying a later receive
        with stale data.
        """
        if chan_seq < 0:
            return False
        w = self._consumed.get((src_vp, dst_vp))
        return w is not None and chan_seq in w

    # -- replay ------------------------------------------------------------------------

    def is_replaying(self, vp: int) -> bool:
        return vp in self.replaying

    def replay_collective(self, vp: int, cid: int,
                          seq: int) -> tuple[int, Any] | None:
        """Logged ``(release_ns, result)`` of a collective this rank
        already completed in the lost timeline, or None."""
        hit = self._coll_log.get((vp, cid, seq))
        if hit is None:
            return None
        return hit[0], _copy_payload(hit[1])

    def replay_match(self, vp: int, source_vp: int | None, tag: int,
                     comm_id: int) -> Message | None:
        """Serve a posted receive of recovering rank ``vp`` from the log.

        ``source_vp`` is the sender's virtual rank, or None for
        MPI_ANY_SOURCE — which replays in recorded determinant order.
        Returns a Message built from the logged entry (not yet marked
        consumed: completion flows through the normal consume hook), or
        None when the log holds nothing for this receive (the matching
        send either never happened before the crash, or regenerates from
        a recovering sender's own re-execution).
        """
        if vp not in self.replaying:
            return None
        if source_vp is None:
            d = self._determinants.get(vp)
            if d is None or d.pos >= d.end:
                return None
            det_src, det_seq = d.at(d.pos)
            entry = self._entries.get((det_src, vp), {}).get(det_seq)
            if entry is None:
                return None  # sender also rolled back; will re-send
            if entry.comm_id != comm_id or \
                    (tag != ANY_TAG and entry.tag != tag):
                return None
            return self._to_message(entry)
        chan = self._entries.get((source_vp, vp))
        if not chan:
            return None
        w = self._consumed.get((source_vp, vp))
        for seq in sorted(chan):
            if w is not None and seq in w:
                continue
            entry = chan[seq]
            if entry.comm_id != comm_id:
                continue
            if tag == ANY_TAG or entry.tag == tag:
                return self._to_message(entry)
            # First unconsumed entry decides per (source, tag) order;
            # a tag mismatch just means this one replays via another
            # receive — keep scanning, like Mailbox.match does.
        return None

    @staticmethod
    def _to_message(entry: LoggedMessage) -> Message:
        return Message(
            src=entry.src, dst=entry.dst, tag=entry.tag,
            comm_id=entry.comm_id,
            payload=_copy_payload(entry.payload), nbytes=entry.nbytes,
            sent_at=0, arrival=0,
            src_vp=entry.src_vp, dst_vp=entry.dst_vp, chan_seq=entry.seq,
        )

    # -- checkpoint integration -----------------------------------------------------------

    def on_checkpoint(self, job: "AmpiJob") -> None:
        """Snapshot every cursor and GC entries the checkpoint obsoleted."""
        transport = job.reliable
        self._ckpt = _CkptCursors(
            send_seqs=(transport.seq_snapshot()
                       if transport is not None else {}),
            consumed={k: (w.low, frozenset(w.seen))
                      for k, w in self._consumed.items()},
            det_pos={vp: d.pos for vp, d in self._determinants.items()},
            coll_seq=dict(job.collectives._seq),
        )
        # A rollback never reaches below this checkpoint, so anything
        # its receiver consumed by now is dead weight.
        for key, chan in list(self._entries.items()):
            w = self._consumed.get(key)
            if w is None:
                continue
            for seq in [s for s in chan if s in w]:
                entry = chan.pop(seq)
                self.logged_msgs -= 1
                self.logged_bytes -= entry.nbytes
            if not chan:
                del self._entries[key]
        for d in self._determinants.values():
            d.gc()
        snap_seq = self._ckpt.coll_seq
        self._coll_log = {
            k: v for k, v in self._coll_log.items()
            if k[2] >= snap_seq.get((k[0], k[1]), 0)
        }

    def rollback(self, vps: set[int], job: "AmpiJob") -> None:
        """Rewind the recovering ranks ``vps`` to the last checkpoint."""
        snap = self._ckpt
        if job.reliable is not None:
            job.reliable.rewind(vps, snap.send_seqs)
        # The recovering ranks' own post-checkpoint sends regenerate
        # during replay; pre-checkpoint entries stay servable (logged
        # state is checkpointed with its sender, like Charm++'s
        # sender-side logs).
        for (src, dst), chan in list(self._entries.items()):
            if src in vps:
                cut = snap.send_seqs.get((src, dst), 0)
                for seq in [s for s in chan if s >= cut]:
                    entry = chan.pop(seq)
                    self.logged_msgs -= 1
                    self.logged_bytes -= entry.nbytes
                if not chan:
                    del self._entries[(src, dst)]
        for key, w in self._consumed.items():
            if key[1] in vps:
                low, seen = snap.consumed.get(key, (0, frozenset()))
                w.low = low
                w.seen = set(seen)
        for vp in vps:
            d = self._determinants.get(vp)
            if d is not None:
                d.pos = snap.det_pos.get(vp, d.base)
        engine_seq = job.collectives._seq
        for key in list(engine_seq):
            if key[0] in vps:
                engine_seq[key] = snap.coll_seq.get(key, 0)
        self.replaying |= set(vps)
