"""Per-rank heap built on Isomalloc.

User programs allocate through :class:`RankHeap` (the simulator's
``malloc``); every allocation lives inside the rank's Isomalloc slot, so
the whole heap migrates with the rank.  Allocations carry an optional
Python payload (e.g. a numpy array) whose simulated size is what migration
and memory accounting charge for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import IsomallocError
from repro.mem.address_space import MapKind, Mapping
from repro.mem.isomalloc import Isomalloc


@dataclass
class Allocation:
    """One live heap allocation."""

    addr: int
    nbytes: int
    data: Any = None
    tag: str = ""
    #: function-pointer values stored inside this allocation (simulated
    #: addresses into some code segment); PIEglobals must rebase these
    #: when replicating constructor-made allocations.
    fn_ptr_slots: dict[str, int] = field(default_factory=dict)
    #: data-pointer values (addresses of globals or other heap blocks)
    #: stored inside this allocation; also rebased by PIEglobals.
    ptr_slots: dict[str, int] = field(default_factory=dict)


class RankHeap:
    """malloc/free facade for one virtual rank.

    A heap *may* be backed by Isomalloc (the AMPI case) or detached
    (plain bookkeeping) for programs run without a runtime underneath.
    """

    def __init__(self, rank: int, isomalloc: Isomalloc | None = None):
        self.rank = rank
        self.isomalloc = isomalloc
        self.allocations: dict[int, Allocation] = {}
        self._mappings: dict[int, Mapping] = {}
        self._detached_next = 0x6000_0000  # fake addresses when no allocator
        self.bytes_allocated = 0
        self.alloc_count = 0

    def malloc(self, nbytes: int, data: Any = None, tag: str = "") -> Allocation:
        if nbytes <= 0:
            raise IsomallocError(f"malloc of non-positive size {nbytes}")
        if self.isomalloc is not None:
            mapping = self.isomalloc.alloc(
                self.rank, nbytes, MapKind.HEAP, tag=tag or "heap"
            )
            addr = mapping.start
            self._mappings[addr] = mapping
        else:
            addr = self._detached_next
            self._detached_next += (nbytes + 15) & ~15
        alloc = Allocation(addr=addr, nbytes=nbytes, data=data, tag=tag)
        if self.isomalloc is not None:
            self._mappings[addr].payload = alloc
        self.allocations[addr] = alloc
        self.bytes_allocated += nbytes
        self.alloc_count += 1
        return alloc

    def free(self, addr: int) -> None:
        alloc = self.allocations.pop(addr, None)
        if alloc is None:
            raise IsomallocError(f"free of unknown address {addr:#x}")
        self.bytes_allocated -= alloc.nbytes
        mapping = self._mappings.pop(addr, None)
        if mapping is not None and self.isomalloc is not None:
            self.isomalloc.free(mapping)

    def realloc(self, addr: int, nbytes: int) -> Allocation:
        old = self.allocations.get(addr)
        if old is None:
            raise IsomallocError(f"realloc of unknown address {addr:#x}")
        new = self.malloc(nbytes, data=old.data, tag=old.tag)
        new.fn_ptr_slots = dict(old.fn_ptr_slots)
        self.free(addr)
        return new

    def __iter__(self) -> Iterator[Allocation]:
        return iter(self.allocations.values())

    def __len__(self) -> int:
        return len(self.allocations)

    def live_bytes(self) -> int:
        return sum(a.nbytes for a in self.allocations.values())

    def attach_isomalloc(self, isomalloc: Isomalloc) -> None:
        """Late-bind an allocator (runtime startup order convenience)."""
        if self.allocations:
            raise IsomallocError(
                "cannot attach an allocator to a heap with live allocations"
            )
        self.isomalloc = isomalloc
