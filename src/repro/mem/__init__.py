"""Simulated memory substrate: virtual address spaces, mmap, segments,
and the Isomalloc migratable allocator."""

from repro.mem.layout import PAGE_SIZE, page_align_up
from repro.mem.address_space import VirtualMemory, Mapping, MapKind
from repro.mem.segments import (
    SegmentKind,
    VarDef,
    SegmentImage,
    SegmentInstance,
    CodeImage,
    CodeInstance,
)
from repro.mem.isomalloc import Isomalloc, IsomallocArena
from repro.mem.heap import RankHeap, Allocation

__all__ = [
    "PAGE_SIZE",
    "page_align_up",
    "VirtualMemory",
    "Mapping",
    "MapKind",
    "SegmentKind",
    "VarDef",
    "SegmentImage",
    "SegmentInstance",
    "CodeImage",
    "CodeInstance",
    "Isomalloc",
    "IsomallocArena",
    "RankHeap",
    "Allocation",
]
