"""Canonical simulated address-space layout.

A single 47-bit user address space, laid out the way the real systems in
the paper lay theirs out:

====================  =====================================================
range                 use
====================  =====================================================
0x0000__0000_0000     NULL guard (never mapped)
0x0000__0040_0000     non-PIE executable load base (``ET_EXEC``)
0x0100__0000_0000     PIE / shared-object load area used by the system
                      dynamic loader (its *internal* mmap — the one
                      Isomalloc cannot intercept)
0x1000__0000_0000     Isomalloc arena: carved into per-virtual-rank slots
                      that are globally unique across the whole job, so a
                      migrated rank's memory lands at identical virtual
                      addresses on the destination
0x7F00__0000_0000     system anonymous mmap area (runtime-internal)
====================  =====================================================
"""

from __future__ import annotations

PAGE_SIZE = 4096

NULL_GUARD_END = 0x0001_0000
EXEC_BASE = 0x0040_0000

LOADER_AREA_BASE = 0x0100_0000_0000
LOADER_AREA_END = 0x0FFF_0000_0000

ISOMALLOC_BASE = 0x1000_0000_0000
ISOMALLOC_END = 0x7000_0000_0000

SYSTEM_MMAP_BASE = 0x7F00_0000_0000
SYSTEM_MMAP_END = 0x7FFF_0000_0000

#: Default size of one rank's Isomalloc slot (virtual reservation, not RSS).
DEFAULT_SLOT_SIZE = 1 << 30  # 1 GiB


def page_align_up(n: int) -> int:
    """Round ``n`` up to the next page boundary."""
    if n < 0:
        raise ValueError("negative size")
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def is_page_aligned(addr: int) -> bool:
    return (addr & (PAGE_SIZE - 1)) == 0
