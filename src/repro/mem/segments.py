"""Segment images and instances.

An *image* is the linker's output: a layout of named slots (variables or
functions) at fixed offsets.  An *instance* is one materialized copy of an
image at a base address in some address space.  Privatization methods are,
at bottom, policies for how many instances of which segments exist and how
a rank's accesses are routed to them:

* no privatization — one data instance shared by every rank;
* Swapglobals — one data instance per rank for GOT-addressed globals only;
* TLSglobals — one TLS instance per rank for tagged variables;
* PIP/FS/PIEglobals — full per-rank copies of code+data instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import SegFault


class SegmentKind(enum.Enum):
    CODE = "code"    # .text
    DATA = "data"    # .data + .bss
    RODATA = "rodata"
    TLS = "tls"      # .tdata + .tbss


POINTER_SIZE = 8


@dataclass(frozen=True)
class VarDef:
    """One global/static/TLS variable declaration.

    The flags mirror the paper's taxonomy of unsafe variables
    (Section 2.2): mutable globals and statics are unsafe; const or
    written-once-to-the-same-value variables are safe to share.
    """

    name: str
    size: int = POINTER_SIZE
    init: Any = 0
    const: bool = False          #: read-only -> safe to share
    static: bool = False         #: static linkage (not in the GOT!)
    tls: bool = False            #: tagged thread_local / __thread
    write_once_same: bool = False  #: e.g. num_ranks: same value everywhere
    #: MPC hierarchical-local-storage level: how far privatization must
    #: go ("rank" = one copy per ULT; "process"/"node" = coarser sharing
    #: to save memory — Section 2.3.5's HLS extension).
    hls_level: str = "rank"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"variable {self.name!r} has non-positive size")
        if self.const and self.tls:
            raise ValueError(f"variable {self.name!r}: const TLS is pointless")
        if self.hls_level not in ("rank", "process", "node"):
            raise ValueError(
                f"variable {self.name!r}: unknown HLS level "
                f"{self.hls_level!r}"
            )

    @property
    def unsafe(self) -> bool:
        """True if sharing one copy across ranks can produce wrong results."""
        return not (self.const or self.write_once_same)


@dataclass(frozen=True)
class FuncDef:
    """One function: a named span of simulated machine code.

    ``fn`` is the Python callable that *interprets* the function body when
    a rank executes it; ``code_bytes`` is how much .text it occupies (what
    gets copied, migrated, and fetched through the icache model).
    """

    name: str
    code_bytes: int = 256
    fn: Callable[..., Any] | None = None
    src_file: str | None = None  #: host .py file the body was defined in
    src_line: int = 0            #: 1-based first line of the body there

    def __post_init__(self) -> None:
        if self.code_bytes <= 0:
            raise ValueError(f"function {self.name!r} has non-positive size")


class SegmentImage:
    """Linker layout of a data/rodata/TLS segment: name -> (offset, VarDef)."""

    def __init__(self, kind: SegmentKind, variables: Iterable[VarDef] = (),
                 pad_to: int = 0):
        if kind is SegmentKind.CODE:
            raise ValueError("use CodeImage for code segments")
        self.kind = kind
        self.offsets: dict[str, int] = {}
        self.vars: dict[str, VarDef] = {}
        off = 0
        for v in variables:
            if v.name in self.vars:
                raise ValueError(f"duplicate variable {v.name!r}")
            # 8-byte alignment for every slot, like a real linker would.
            off = (off + POINTER_SIZE - 1) & ~(POINTER_SIZE - 1)
            self.offsets[v.name] = off
            self.vars[v.name] = v
            off += v.size
        self.size = max(off, pad_to, POINTER_SIZE)

    def var_names(self) -> list[str]:
        return list(self.vars)

    def __contains__(self, name: str) -> bool:
        return name in self.vars

    def instantiate(self, base: int) -> "SegmentInstance":
        return SegmentInstance(self, base)


class SegmentInstance:
    """One copy of a data/TLS segment at a base address.

    Values live in a per-instance dict; the pointer-scan API exposes them
    as (address, value) slots so PIEglobals' GOT-fixup scan can operate on
    instances the same way it would on raw memory.
    """

    __slots__ = ("image", "base", "values")

    def __init__(self, image: SegmentImage, base: int):
        self.image = image
        self.base = base
        self.values: dict[str, Any] = {
            name: v.init for name, v in image.vars.items()
        }

    @property
    def end(self) -> int:
        return self.base + self.image.size

    def addr_of(self, name: str) -> int:
        return self.base + self.image.offsets[name]

    def read(self, name: str) -> Any:
        try:
            return self.values[name]
        except KeyError:
            raise SegFault(self.base, f"no variable {name!r} in segment") from None

    def write(self, name: str, value: Any) -> None:
        if name not in self.values:
            raise SegFault(self.base, f"no variable {name!r} in segment")
        var = self.image.vars[name]
        if var.const:
            raise SegFault(self.addr_of(name),
                           f"write to const variable {name!r}")
        self.values[name] = value

    def slots(self) -> Iterator[tuple[int, str, Any]]:
        """Yield (simulated address, name, value) for every slot."""
        for name, off in self.image.offsets.items():
            yield self.base + off, name, self.values[name]

    def clone_at(self, base: int) -> "SegmentInstance":
        """A deep-enough copy at a new base (values copied, image shared)."""
        inst = SegmentInstance(self.image, base)
        inst.values = dict(self.values)
        return inst


class CodeImage:
    """Linker layout of a .text segment: function name -> offset."""

    def __init__(self, functions: Iterable[FuncDef] = (), pad_to: int = 0):
        self.offsets: dict[str, int] = {}
        self.funcs: dict[str, FuncDef] = {}
        off = 0
        for f in functions:
            if f.name in self.funcs:
                raise ValueError(f"duplicate function {f.name!r}")
            off = (off + 15) & ~15  # 16-byte function alignment
            self.offsets[f.name] = off
            self.funcs[f.name] = f
            off += f.code_bytes
        self.size = max(off, pad_to, 16)

    def func_names(self) -> list[str]:
        return list(self.funcs)

    def __contains__(self, name: str) -> bool:
        return name in self.funcs

    def instantiate(self, base: int) -> "CodeInstance":
        return CodeInstance(self, base)


class CodeInstance:
    """One copy of a code segment at a base address."""

    __slots__ = ("image", "base")

    def __init__(self, image: CodeImage, base: int):
        self.image = image
        self.base = base

    @property
    def end(self) -> int:
        return self.base + self.image.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def addr_of(self, name: str) -> int:
        try:
            return self.base + self.image.offsets[name]
        except KeyError:
            raise SegFault(self.base, f"no function {name!r} in code segment") from None

    def symbol_at(self, addr: int) -> tuple[str, int]:
        """Map an address back to (function name, offset inside it)."""
        if not self.contains(addr):
            raise SegFault(addr, "address outside this code segment")
        rel = addr - self.base
        best_name, best_off = None, -1
        for name, off in self.image.offsets.items():
            if off <= rel and off > best_off:
                f = self.image.funcs[name]
                if rel < off + f.code_bytes:
                    best_name, best_off = name, off
        if best_name is None:
            raise SegFault(addr, "address falls in inter-function padding")
        return best_name, rel - best_off

    def fn(self, name: str) -> Callable[..., Any]:
        f = self.image.funcs[name].fn
        if f is None:
            raise SegFault(self.addr_of(name),
                           f"function {name!r} has no body to execute")
        return f
