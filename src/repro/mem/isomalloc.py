"""Isomalloc: the migratable memory allocator.

AMPI's Isomalloc (inspired by PM2's iso-address scheme) reserves a slice
of virtual address space for every virtual rank that is *globally unique
across the whole job*.  All of a rank's migratable memory — heap, ULT
stack, and under PIEglobals its private code+data segment copies — is
allocated inside its slice.  Migration then reduces to copying the slice's
live mappings to the destination process, where they are installed at the
*same* virtual addresses, so every pointer in the rank's data remains
valid with no user serialization code.

The simulator enforces the same invariant the real allocator does: an
:class:`IsomallocArena` hands out per-rank slots from a job-wide base, and
:class:`Isomalloc` performs allocations for one rank inside one process's
:class:`~repro.mem.address_space.VirtualMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import IsomallocError
from repro.mem.address_space import MapKind, Mapping, VirtualMemory
from repro.mem.layout import (
    DEFAULT_SLOT_SIZE,
    ISOMALLOC_BASE,
    ISOMALLOC_END,
    page_align_up,
)


@dataclass(frozen=True)
class RankSlot:
    """One rank's reserved virtual range (identical in every process)."""

    rank: int
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


class IsomallocArena:
    """Job-wide assignment of virtual-address slots to virtual ranks.

    One arena is shared by every simulated OS process in a job: slot
    addresses must agree everywhere for migration to work.
    """

    def __init__(self, max_ranks: int, slot_size: int = DEFAULT_SLOT_SIZE):
        if max_ranks <= 0:
            raise IsomallocError("need at least one rank slot")
        slot_size = page_align_up(slot_size)
        if ISOMALLOC_BASE + max_ranks * slot_size > ISOMALLOC_END:
            raise IsomallocError(
                f"arena too large: {max_ranks} ranks x {slot_size:#x} bytes "
                f"exceeds the Isomalloc address range"
            )
        self.max_ranks = max_ranks
        self.slot_size = slot_size

    def slot(self, rank: int) -> RankSlot:
        if not 0 <= rank < self.max_ranks:
            raise IsomallocError(
                f"rank {rank} outside arena (max_ranks={self.max_ranks})"
            )
        start = ISOMALLOC_BASE + rank * self.slot_size
        return RankSlot(rank=rank, start=start, size=self.slot_size)

    def rank_of_address(self, addr: int) -> int | None:
        """Which rank's slot contains ``addr`` (None if outside the arena)."""
        if not ISOMALLOC_BASE <= addr < ISOMALLOC_BASE + self.max_ranks * self.slot_size:
            return None
        return (addr - ISOMALLOC_BASE) // self.slot_size


class Isomalloc:
    """Per-process allocator front-end over the shared arena.

    Allocations are simple bump-pointer with an explicit free list; real
    Isomalloc is similar (it values address stability over fragmentation
    cleverness).
    """

    def __init__(self, arena: IsomallocArena, vm: VirtualMemory):
        self.arena = arena
        self.vm = vm
        self._bump: dict[int, int] = {}      # rank -> next free offset
        self._free: dict[int, list[tuple[int, int]]] = {}  # rank -> [(off, size)]

    # -- allocation -------------------------------------------------------------

    def alloc(
        self,
        rank: int,
        nbytes: int,
        kind: MapKind = MapKind.HEAP,
        tag: str = "",
        payload: Any = None,
        rss_bytes: int | None = None,
    ) -> Mapping:
        """Allocate ``nbytes`` (page-rounded) inside ``rank``'s slot."""
        if nbytes <= 0:
            raise IsomallocError(f"bad allocation size {nbytes}")
        size = page_align_up(nbytes)
        slot = self.arena.slot(rank)

        # First-fit from the free list, else bump.
        start = None
        freelist = self._free.get(rank, [])
        for i, (off, fsize) in enumerate(freelist):
            if fsize >= size:
                start = slot.start + off
                if fsize > size:
                    freelist[i] = (off + size, fsize - size)
                else:
                    del freelist[i]
                break
        if start is None:
            off = self._bump.get(rank, 0)
            if off + size > slot.size:
                raise IsomallocError(
                    f"rank {rank}: Isomalloc slot exhausted "
                    f"({off + size:#x} > {slot.size:#x})"
                )
            start = slot.start + off
            self._bump[rank] = off + size

        return self.vm.map_at(
            start,
            size,
            kind,
            owner_rank=rank,
            via_isomalloc=True,
            tag=tag or f"iso:{kind.value}[{rank}]",
            payload=payload,
            rss_bytes=min(rss_bytes, size) if rss_bytes is not None else None,
        )

    def free(self, mapping: Mapping) -> None:
        if not mapping.via_isomalloc:
            raise IsomallocError("mapping was not allocated via Isomalloc")
        rank = mapping.owner_rank
        if rank is None:
            raise IsomallocError("Isomalloc mapping has no owner rank")
        slot = self.arena.slot(rank)
        self.vm.unmap(mapping.start)
        self._free.setdefault(rank, []).append(
            (mapping.start - slot.start, mapping.size)
        )

    # -- migration support -----------------------------------------------------

    def rank_footprint(self, rank: int) -> int:
        """Total mapped bytes in this process belonging to ``rank``."""
        return sum(m.size for m in self.vm.mappings_of_rank(rank))

    def extract_rank(self, rank: int) -> list[Mapping]:
        """Detach all of a rank's Isomalloc mappings for migration.

        Raises :class:`IsomallocError` if the rank owns any private mapping
        *outside* Isomalloc — those cannot be reinstalled at a stable
        address on the destination (the PIP/FS failure mode; callers turn
        this into :class:`~repro.errors.MigrationUnsupportedError`).
        """
        maps = self.vm.mappings_of_rank(rank)
        rogue = [m for m in maps if not m.via_isomalloc and not m.shared]
        if rogue:
            raise IsomallocError(
                f"rank {rank} owns non-Isomalloc private mappings "
                f"(e.g. {rogue[0].tag or hex(rogue[0].start)}); "
                f"cannot migrate"
            )
        migratable = [m for m in maps if m.via_isomalloc]
        for m in migratable:
            self.vm.unmap(m.start)
        # Whatever bump state this process held for the rank moves with it.
        self._bump.pop(rank, None)
        self._free.pop(rank, None)
        return migratable

    def install_rank(self, rank: int, mappings: Iterable[Mapping]) -> None:
        """Install migrated mappings at their original virtual addresses.

        The *same* Mapping objects are adopted (not copied) so references
        held by the rank's heap and context stay valid — the simulated
        analogue of Isomalloc's iso-address guarantee that no pointer
        needs updating after a migration.
        """
        slot = self.arena.slot(rank)
        high = 0
        for m in mappings:
            if not (slot.start <= m.start and m.end <= slot.end):
                raise IsomallocError(
                    f"mapping {m.start:#x} is outside rank {rank}'s slot"
                )
            self.vm.adopt(m)
            high = max(high, m.end - slot.start)
        # Conservatively resume bumping after the highest installed mapping.
        self._bump[rank] = max(self._bump.get(rank, 0), high)
