"""Per-OS-process virtual memory: page-granular mappings and mmap.

The point of simulating this at all is migration support (Figure 8 and the
"why PIP/FS cannot migrate" story): the migration engine walks a rank's
mappings and refuses to move any private mapping that was created by the
*system loader's internal mmap* rather than through Isomalloc — exactly
the failure mode the paper hits with ``dlmopen``/``dlopen`` segments.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import MapError, SegFault
from repro.mem.layout import (
    PAGE_SIZE,
    SYSTEM_MMAP_BASE,
    SYSTEM_MMAP_END,
    page_align_up,
)


class MapKind(enum.Enum):
    CODE = "code"
    DATA = "data"
    TLS = "tls"
    HEAP = "heap"
    STACK = "stack"
    ANON = "anon"
    FILE = "file"


@dataclass
class Mapping:
    """One contiguous mapped region.

    ``payload`` is an opaque object (segment instance, heap block table,
    numpy array, ...) whose *simulated* size is ``size``; the simulator
    never stores real bytes for bulk memory, only sizes plus the live
    Python objects the region represents.
    """

    start: int
    size: int
    kind: MapKind
    owner_rank: int | None = None     #: virtual rank owning this region, if any
    via_isomalloc: bool = False       #: allocated through Isomalloc (migratable)
    via_loader: bool = False          #: created by the dynamic loader's internal mmap
    shared: bool = False              #: shared mapping (safe to leave behind)
    tag: str = ""                     #: debugging label, e.g. "pie:code[3]"
    payload: Any = None
    #: resident (physical) bytes attributed to this mapping.  File-backed
    #: mappings of already-resident pages contribute 0 — the accounting
    #: behind the paper's mmap-from-one-fd code-dedup idea (Section 6).
    rss_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.rss_bytes is None:
            self.rss_bytes = self.size

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("I", self.via_isomalloc),
                ("L", self.via_loader),
                ("S", self.shared),
            )
            if on
        )
        return (
            f"Mapping({self.start:#x}..{self.end:#x} {self.kind.value}"
            f" rank={self.owner_rank} {flags} {self.tag})"
        )


class VirtualMemory:
    """A process's address space: non-overlapping, page-aligned mappings."""

    def __init__(self, name: str = "proc"):
        self.name = name
        self._starts: list[int] = []       # sorted mapping start addresses
        self._maps: dict[int, Mapping] = {}
        self._next_system_addr = SYSTEM_MMAP_BASE

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._maps)

    def mappings(self) -> Iterator[Mapping]:
        for s in self._starts:
            yield self._maps[s]

    def mappings_of_rank(self, rank: int) -> list[Mapping]:
        return [m for m in self.mappings() if m.owner_rank == rank]

    def find(self, addr: int) -> Mapping | None:
        """The mapping containing ``addr``, or None."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        m = self._maps[self._starts[i]]
        return m if m.contains(addr) else None

    def resolve(self, addr: int) -> Mapping:
        """Like :meth:`find` but raises :class:`SegFault` on a miss."""
        m = self.find(addr)
        if m is None:
            raise SegFault(addr, f"{self.name}: unmapped address {addr:#x}")
        return m

    def total_mapped(self) -> int:
        """Virtual bytes mapped."""
        return sum(m.size for m in self._maps.values())

    def total_rss(self) -> int:
        """Resident (physical) bytes — where file-backed page sharing
        shows its savings."""
        return sum(m.rss_bytes for m in self._maps.values())

    def overlaps(self, start: int, size: int) -> bool:
        i = bisect.bisect_right(self._starts, start) - 1
        if i >= 0:
            m = self._maps[self._starts[i]]
            if m.end > start:
                return True
        if i + 1 < len(self._starts):
            return self._starts[i + 1] < start + size
        return False

    # -- mutation ----------------------------------------------------------------

    def map_at(
        self,
        start: int,
        size: int,
        kind: MapKind,
        **attrs: Any,
    ) -> Mapping:
        """Map ``size`` bytes at a fixed address (MAP_FIXED semantics,
        except that overlap is an error rather than a silent clobber)."""
        if start % PAGE_SIZE:
            raise MapError(f"unaligned map address {start:#x}")
        if size <= 0:
            raise MapError(f"bad map size {size}")
        size = page_align_up(size)
        if self.overlaps(start, size):
            raise MapError(
                f"{self.name}: mapping {start:#x}+{size:#x} overlaps an "
                f"existing region"
            )
        m = Mapping(start=start, size=size, kind=kind, **attrs)
        bisect.insort(self._starts, start)
        self._maps[start] = m
        return m

    def mmap(self, size: int, kind: MapKind = MapKind.ANON, **attrs: Any) -> Mapping:
        """Anonymous mmap in the system area (address chosen by the kernel)."""
        size = page_align_up(size)
        if size <= 0:
            raise MapError(f"bad map size {size}")
        start = self._next_system_addr
        if start + size > SYSTEM_MMAP_END:
            raise MapError(f"{self.name}: system mmap area exhausted")
        self._next_system_addr = start + size
        return self.map_at(start, size, kind, **attrs)

    def adopt(self, mapping: Mapping) -> Mapping:
        """Insert an existing Mapping object (migration install path).

        Keeps the object's identity so references held elsewhere (e.g. a
        rank heap's allocation table) remain valid across a migration.
        """
        if mapping.start % PAGE_SIZE:
            raise MapError(f"unaligned map address {mapping.start:#x}")
        if self.overlaps(mapping.start, mapping.size):
            raise MapError(
                f"{self.name}: adopted mapping {mapping.start:#x}+"
                f"{mapping.size:#x} overlaps an existing region"
            )
        bisect.insort(self._starts, mapping.start)
        self._maps[mapping.start] = mapping
        return mapping

    def unmap(self, start: int) -> Mapping:
        """Remove the mapping that *starts* at ``start``."""
        m = self._maps.pop(start, None)
        if m is None:
            raise MapError(f"{self.name}: no mapping starts at {start:#x}")
        i = bisect.bisect_left(self._starts, start)
        del self._starts[i]
        return m

    def unmap_rank(self, rank: int) -> list[Mapping]:
        """Remove and return all of a rank's mappings (used after migrate-out)."""
        victims = self.mappings_of_rank(rank)
        for m in victims:
            self.unmap(m.start)
        return victims

    # -- reporting -----------------------------------------------------------------

    def maps_report(self) -> str:
        """A /proc/self/maps-style dump (for debugging and doc examples)."""
        lines = []
        for m in self.mappings():
            src = "isomalloc" if m.via_isomalloc else ("loader" if m.via_loader else "sys")
            lines.append(
                f"{m.start:016x}-{m.end:016x} {m.kind.value:<5} "
                f"rank={'-' if m.owner_rank is None else m.owner_rank:<4} "
                f"{src:<9} {m.tag}"
            )
        return "\n".join(lines)
