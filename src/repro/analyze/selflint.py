"""Determinism self-lint over the simulator's own sources.

``repro analyze self`` parses every ``.py`` file under ``src/repro``
and applies rule family 4 (:mod:`repro.analyze.determinism`) to the
whole module — the mechanical enforcement of the byte-identical-timeline
contract the provenance/chaos/serve subsystems stand on.

Legitimate host-time sites (the bench harness measures real wall-clock,
the provenance store uses mtimes for eviction recency, the serve janitor
sleeps in host time) carry an explicit pragma::

    t0 = time.perf_counter()  # repro: allow(det-wallclock) host-side bench timing

A pragma suppresses only the named code, only on its own line or the
line directly below it, so every exemption is visible and reviewable
next to the code it excuses.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.analyze.determinism import pragma_lines, scan_tree
from repro.sanitize.findings import Finding, Severity, sort_findings

#: severity per determinism code (set/id ordering issues are real but
#: only corrupt output when the order escapes, so they warn)
DET_SEVERITY = {
    "det-wallclock": Severity.ERROR,
    "det-unseeded-random": Severity.ERROR,
    "det-set-iteration": Severity.WARNING,
    "det-id-key": Severity.WARNING,
}

DET_HINTS = {
    "det-wallclock": "use simulated time (SimClock / mpi.wtime), or add "
                     "a '# repro: allow(det-wallclock) <reason>' pragma "
                     "for genuinely host-side code",
    "det-unseeded-random": "seed the RNG from the spec "
                           "(random.Random(seed) / default_rng(seed))",
    "det-set-iteration": "wrap the set in sorted() before iterating",
    "det-id-key": "key by a stable identifier instead of id()",
}


def default_root() -> Path:
    """The ``src/repro`` tree this installation is running from."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_file(path: Path, *, rel_to: Path | None = None) -> list[Finding]:
    """Determinism findings for one source file, pragma-filtered."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text)
    except SyntaxError as e:
        return [Finding(
            code="det-unparseable", severity=Severity.ERROR,
            message=f"cannot parse: {e}", file=str(path), line=e.lineno,
            phase="source",
        )]
    allowed = pragma_lines(text.splitlines())
    shown = str(path.relative_to(rel_to)) if rel_to else str(path)
    out: list[Finding] = []
    for ev in scan_tree(tree):
        if ev.code in allowed.get(ev.line, ()):
            continue
        out.append(Finding(
            code=ev.code,
            severity=DET_SEVERITY.get(ev.code, Severity.WARNING),
            message=f"{ev.detail} on a simulated-time path",
            fix_hint=DET_HINTS.get(ev.code, ""),
            file=shown, line=ev.line, phase="source",
        ))
    return out


def lint_tree(root: Path | None = None,
              *, rel_to: Path | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``root`` (default: ``src/repro``)."""
    base = root or default_root()
    rel = rel_to if rel_to is not None else base.parent
    findings: list[Finding] = []
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        findings += lint_file(path, rel_to=rel)
    return sort_findings(findings)


def lint_paths(paths: Iterable[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for p in paths:
        findings += lint_file(Path(p))
    return sort_findings(findings)
