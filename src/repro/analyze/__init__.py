"""Static analysis over program sources (``repro analyze``).

An interprocedural AST analyzer over :class:`ProgramSource` function
bodies: it recovers each body's Python source, builds a whole-program
model (global accesses, rank-dependence taint, MPI call shapes, the
``ctx.call`` graph), and checks four rule families:

1. **Privatization surface** (``pv-*``) — observed global access
   classes vs. declared ``VarDef`` flags, plus the cheapest method that
   covers the inferred surface.
2. **Migration/checkpoint safety** (``mig-*``) — state living outside
   the privatized segments: mutable closures, host module globals, the
   execution context escaping the call.
3. **Communication shape** (``comm-*``) — divergent collectives, tag
   mismatches, symmetric recv deadlocks, never-completed requests.
4. **Determinism** (``det-*``) — host nondeterminism (wall clock,
   unseeded RNG, set iteration order, ``id()`` keys), applied both to
   program bodies and — as the ``repro analyze self`` self-lint — to
   the simulator's own sources.
"""

from repro.analyze.driver import (
    COST_ORDER,
    AnalysisReport,
    analyze_source,
    method_sufficient,
    predict_min_method,
)
from repro.analyze.model import (
    ProgramModel,
    SourceUnavailable,
    build_model,
    mutable_closure_cells,
)
from repro.analyze.rules import classify_globals, inferred_unsafe
from repro.analyze.selflint import lint_file, lint_paths, lint_tree

__all__ = [
    "COST_ORDER",
    "AnalysisReport",
    "ProgramModel",
    "SourceUnavailable",
    "analyze_source",
    "build_model",
    "classify_globals",
    "inferred_unsafe",
    "lint_file",
    "lint_paths",
    "lint_tree",
    "method_sufficient",
    "mutable_closure_cells",
    "predict_min_method",
]
