"""AST extraction over :class:`ProgramSource` function bodies.

Program functions are real Python callables, so the analyzer recovers
each body with :func:`inspect.getsource`, parses it, and extracts a
:class:`FunctionSummary`: every global access (``ctx.g.NAME`` and its
aliases), every MPI facade call with its guard context, inter-function
calls (``ctx.call``), and a rank-dependence taint for each of them.

Taint is the analysis' notion of *rank-varying*: a value derived from
``mpi.rank()``, ``mpi.my_pe()``, or ``ctx.vp``.  Collective results and
``mpi.size()`` are rank-uniform by definition.  The driver propagates
taint interprocedurally through the ``ctx.call`` graph (argument taint
vectors and return-taint summaries, iterated to a fixpoint) so that a
rank-divergent guard around a helper flags the collective *inside* the
helper.
"""

from __future__ import annotations

import ast
import inspect
import operator
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.mem.segments import FuncDef
from repro.program.source import ProgramSource

#: MPI facade operations every rank must enter (deadlock if divergent).
COLLECTIVE_OPS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan", "exscan", "reduce_scatter",
    "migrate", "checkpoint", "resize",
})
SEND_OPS = frozenset({"send", "isend"})
RECV_OPS = frozenset({"recv", "irecv"})
WAIT_OPS = frozenset({"wait", "test", "waitall", "waitany", "testall"})
#: taint seeds: per-rank identity
RANK_OPS = frozenset({"rank", "my_pe"})
#: rank-uniform results no matter the arguments
UNIFORM_OPS = frozenset({
    "size", "num_pes", "allreduce", "bcast", "allgather", "wtime",
})


@dataclass(frozen=True)
class GlobalRead:
    name: str
    line: int
    func: str


@dataclass(frozen=True)
class GlobalWrite:
    name: str
    line: int
    func: str
    tainted: bool          #: value derives from the rank
    self_ref: bool         #: read-modify-write of the same global
    in_loop: bool


@dataclass(frozen=True)
class MpiCall:
    op: str
    line: int
    func: str
    guard_tainted: bool    #: under a rank-dependent branch/loop
    guarded: bool          #: under any branch at all
    tag: int | None        #: constant tag, if statically known
    has_tag: bool          #: a tag argument was supplied
    bound: str | None      #: local name the result was bound to
    standalone: bool       #: bare expression statement (result dropped)
    in_container: bool     #: result flows into a container/composite expr


@dataclass(frozen=True)
class CallSite:
    callee: str
    line: int
    func: str
    arg_taints: tuple[bool, ...]
    guard_tainted: bool


@dataclass
class FunctionSummary:
    """Everything one scan of one function body produced."""

    name: str
    src_file: str | None
    reads: list[GlobalRead] = field(default_factory=list)
    writes: list[GlobalWrite] = field(default_factory=list)
    mpi: list[MpiCall] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: writes to the defining module's globals (``global`` stmt + store)
    module_writes: list[tuple[str, int]] = field(default_factory=list)
    #: the execution context leaking into storage that outlives the call
    ctx_escapes: list[tuple[int, str]] = field(default_factory=list)
    #: names loaded anywhere in the body: name -> lines
    name_loads: dict[str, list[int]] = field(default_factory=dict)
    returns_tainted: bool = False


@dataclass
class FunctionAst:
    """A parsed function body, aligned to its host source file."""

    fdef: FuncDef
    tree: ast.FunctionDef
    src_file: str | None
    ctx_param: str | None
    #: build-time configuration constants captured by the closure
    const_env: dict[str, Any] = field(default_factory=dict)


class SourceUnavailable(Exception):
    """The callable's Python source cannot be recovered."""


def parse_function(fdef: FuncDef) -> FunctionAst:
    """Recover and parse one function body, line-aligned to its file."""
    fn = fdef.fn
    if fn is None:
        raise SourceUnavailable(f"{fdef.name}: no body")
    fn = inspect.unwrap(fn)
    try:
        lines, start = inspect.getsourcelines(fn)
    except (OSError, TypeError) as e:
        raise SourceUnavailable(f"{fdef.name}: {e}") from e
    src = textwrap.dedent("".join(lines))
    try:
        module = ast.parse(src)
    except SyntaxError as e:  # pragma: no cover - getsource gave us junk
        raise SourceUnavailable(f"{fdef.name}: {e}") from e
    node = next(
        (n for n in module.body
         if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
        None,
    )
    if node is None or isinstance(node, ast.AsyncFunctionDef):
        raise SourceUnavailable(f"{fdef.name}: not a plain function")
    ast.increment_lineno(node, start - 1)
    args = node.args.args
    ctx_param = args[0].arg if args else None
    src_file = fdef.src_file or getattr(fn, "__code__", None) and \
        fn.__code__.co_filename
    return FunctionAst(fdef=fdef, tree=node, src_file=src_file,
                       ctx_param=ctx_param,
                       const_env=_closure_consts(fn))


_CONST_SCALARS = (int, float, str, bytes, bool, type(None))


def _closure_consts(fn: Callable) -> dict[str, Any]:
    """Scalar closure cells: the app builders' build-time configuration.

    Program bodies are parameterized by closing over config values
    (``ckpt_period = cfg.ckpt_period`` in the builder); folding those
    into the scan lets it skip statically-dead branches — exactly how
    ``#ifdef``-style feature gates behave in compiled code.
    """
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is None or not closure:
        return {}
    out: dict[str, Any] = {}
    for name, cell in zip(code.co_freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:
            continue
        if isinstance(value, _CONST_SCALARS):
            out[name] = value
    return out


# ---------------------------------------------------------------------------
# Body scanning
# ---------------------------------------------------------------------------

class _BodyScan(ast.NodeVisitor):
    """One intraprocedural pass: aliases, taint, accesses, guards.

    The scan runs twice over the body (``collect=False`` then ``True``)
    so taint introduced late in a loop body reaches uses earlier in it.
    """

    def __init__(self, fast: FunctionAst, tainted_params: frozenset[int]):
        self.fast = fast
        self.fname = fast.fdef.name
        self.ctx_aliases: set[str] = set()
        if fast.ctx_param:
            self.ctx_aliases.add(fast.ctx_param)
        self.g_aliases: set[str] = set()
        self.mpi_aliases: set[str] = set()
        self.tainted: set[str] = set()
        params = fast.tree.args.args[1:]
        for i in tainted_params:
            if i < len(params):
                self.tainted.add(params[i].arg)
        self._guards: list[bool] = []
        self._loops = 0
        self._globals: set[str] = set()
        self.const_env: dict[str, Any] = dict(fast.const_env)
        self.collect = False
        self.out = FunctionSummary(name=self.fname,
                                   src_file=fast.src_file)

    def run(self) -> FunctionSummary:
        for self.collect in (False, True):
            self._guards.clear()
            self._loops = 0
            for stmt in self.fast.tree.body:
                self.visit(stmt)
        return self.out

    # -- expression classification ------------------------------------------

    def _is_ctx(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.ctx_aliases

    def _is_g(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in self.g_aliases:
            return True
        return (isinstance(node, ast.Attribute) and node.attr == "g"
                and self._is_ctx(node.value))

    def _is_mpi(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in self.mpi_aliases:
            return True
        return (isinstance(node, ast.Attribute) and node.attr == "mpi"
                and self._is_ctx(node.value))

    def _global_name(self, node: ast.AST) -> str | None:
        """``ctx.g.NAME`` / ``g.NAME`` / ``ctx.g["NAME"]`` -> NAME."""
        if isinstance(node, ast.Attribute) and self._is_g(node.value):
            return node.attr
        if isinstance(node, ast.Subscript) and self._is_g(node.value):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                return sl.value
        return None

    def _mpi_op(self, node: ast.AST) -> str | None:
        """``mpi.OP(...)`` / ``ctx.mpi.OP(...)`` -> OP."""
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and self._is_mpi(node.func.value)):
            return node.func.attr
        return None

    def _ctx_method(self, node: ast.AST, method: str) -> ast.Call | None:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and self._is_ctx(node.func.value)):
            return node
        return None

    def _tainted(self, node: ast.AST | None) -> bool:
        """Does this expression derive from the executing rank?"""
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr == "vp" and self._is_ctx(node.value):
                return True
            return self._tainted(node.value)
        if isinstance(node, ast.Call):
            op = self._mpi_op(node)
            if op in RANK_OPS:
                return True
            if op in UNIFORM_OPS:
                return False
            call = self._ctx_method(node, "call")
            if call is not None and call.args:
                first = call.args[0]
                callee = (first.value
                          if isinstance(first, ast.Constant) else None)
                arg_t = any(self._tainted(a) for a in call.args[1:])
                if isinstance(callee, str):
                    return arg_t or self._returns_tainted(callee)
                return True  # indirect callee: be conservative
            return any(self._tainted(c) for c in ast.iter_child_nodes(node))
        return any(self._tainted(c) for c in ast.iter_child_nodes(node))

    def _returns_tainted(self, callee: str) -> bool:
        return callee in self.returns_taint_table

    # -- build-time constant folding ----------------------------------------

    _CMP = {ast.Eq: operator.eq, ast.NotEq: operator.ne,
            ast.Lt: operator.lt, ast.LtE: operator.le,
            ast.Gt: operator.gt, ast.GtE: operator.ge}
    _BIN = {ast.Add: operator.add, ast.Sub: operator.sub,
            ast.Mult: operator.mul, ast.Mod: operator.mod,
            ast.FloorDiv: operator.floordiv, ast.Div: operator.truediv}

    def _const_value(self, node: ast.AST) -> tuple[bool, Any]:
        """``(known, value)`` for build-time-constant expressions.

        Resolves names through the closure constants (the app builders'
        config) and propagated locals, so ``if ckpt_period:`` with
        checkpointing compiled out is recognized as a dead branch.
        """
        if isinstance(node, ast.Constant):
            return True, node.value
        if isinstance(node, ast.Name):
            if node.id in self.const_env:
                return True, self.const_env[node.id]
            return False, None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            known, v = self._const_value(node.operand)
            return (True, not v) if known else (False, None)
        if isinstance(node, ast.BoolOp):
            stop = isinstance(node.op, ast.And)  # short-circuit value
            last: tuple[bool, Any] = (False, None)
            for sub in node.values:
                known, v = last = self._const_value(sub)
                if not known:
                    return False, None
                if bool(v) is not stop:
                    return True, v
            return last
        if isinstance(node, ast.IfExp):
            known, v = self._const_value(node.test)
            if known:
                return self._const_value(node.body if v else node.orelse)
            return False, None
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = self._CMP.get(type(node.ops[0]))
            k1, v1 = self._const_value(node.left)
            k2, v2 = self._const_value(node.comparators[0])
            if op is not None and k1 and k2:
                try:
                    return True, op(v1, v2)
                except TypeError:
                    return False, None
        if isinstance(node, ast.BinOp):
            op = self._BIN.get(type(node.op))
            k1, v1 = self._const_value(node.left)
            k2, v2 = self._const_value(node.right)
            if op is not None and k1 and k2:
                try:
                    return True, op(v1, v2)
                except (TypeError, ZeroDivisionError):
                    return False, None
        return False, None

    #: set by the driver before scanning: callees whose return value is
    #: rank-dependent even for uniform arguments
    returns_taint_table: frozenset[str] = frozenset()

    # -- recording -----------------------------------------------------------

    def _read(self, name: str, line: int) -> None:
        if self.collect:
            self.out.reads.append(GlobalRead(name, line, self.fname))

    def _write(self, name: str, line: int, value: ast.AST | None,
               tainted: bool | None = None) -> None:
        if not self.collect:
            return
        t = self._tainted(value) if tainted is None else tainted
        self_ref = False
        if value is not None:
            self_ref = any(
                self._global_name(sub) == name for sub in ast.walk(value)
            )
        self.out.writes.append(GlobalWrite(
            name, line, self.fname, tainted=t, self_ref=self_ref,
            in_loop=self._loops > 0,
        ))

    def _escape(self, line: int, detail: str) -> None:
        if self.collect:
            self.out.ctx_escapes.append((line, detail))

    def _check_ctx_escape(self, value: ast.AST, line: int,
                          into: str) -> None:
        if self._is_ctx(value):
            self._escape(line, f"ctx stored into {into}")
        elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            if any(self._is_ctx(el) for el in value.elts):
                self._escape(line, f"ctx placed in a container ({into})")
        elif isinstance(value, ast.Dict):
            if any(v is not None and self._is_ctx(v)
                   for v in list(value.keys) + list(value.values)):
                self._escape(line, f"ctx placed in a dict ({into})")

    # -- visitors -------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if self.collect and isinstance(node.ctx, ast.Load):
            self.out.name_loads.setdefault(node.id, []).append(node.lineno)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        gname = self._global_name(node)
        if gname is not None and isinstance(node.ctx, ast.Load):
            self._read(gname, node.lineno)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        gname = self._global_name(node)
        if gname is not None and isinstance(node.ctx, ast.Load):
            self._read(gname, node.lineno)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value_taint = self._tainted(node.value)
        for target in node.targets:
            self._assign_target(target, node.value, value_taint, node.lineno)

    def _assign_target(self, target: ast.AST, value: ast.AST | None,
                       value_taint: bool, line: int) -> None:
        gname = self._global_name(target)
        if gname is not None:
            self._write(gname, line, value, tainted=value_taint)
            if value is not None:
                self._check_ctx_escape(value, line, f"global {gname!r}")
            return
        if isinstance(target, ast.Name):
            # Alias registration and taint bookkeeping.
            if value is not None:
                if self._is_ctx(value):
                    self.ctx_aliases.add(target.id)
                elif self._is_g(value):
                    self.g_aliases.add(target.id)
                elif self._is_mpi(value):
                    self.mpi_aliases.add(target.id)
            if value_taint:
                self.tainted.add(target.id)
            known, val = (self._const_value(value)
                          if value is not None else (False, None))
            if known and isinstance(val, _CONST_SCALARS):
                self.const_env[target.id] = val
            else:
                self.const_env.pop(target.id, None)
            if target.id in self._globals and self.collect:
                self.out.module_writes.append((target.id, line))
            self._bind_request(target.id, value, line)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elems = target.elts
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(elems):
                for el, v in zip(elems, value.elts):
                    self._assign_target(el, v, self._tainted(v), line)
            else:
                for el in elems:
                    self._assign_target(el, None, value_taint, line)
            return
        if isinstance(target, ast.Subscript) and value is not None:
            self._check_ctx_escape(value, line, "a container slot")
        self.visit(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        gname = self._global_name(node.target)
        if gname is not None:
            self._read(gname, node.lineno)
            if self.collect:
                self.out.writes.append(GlobalWrite(
                    gname, node.lineno, self.fname,
                    tainted=self._tainted(node.value), self_ref=True,
                    in_loop=self._loops > 0,
                ))
            return
        if isinstance(node.target, ast.Name):
            if self._tainted(node.value):
                self.tainted.add(node.target.id)
            self.const_env.pop(node.target.id, None)
            if node.target.id in self._globals and self.collect:
                self.out.module_writes.append((node.target.id, node.lineno))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._assign_target(node.target, node.value,
                                self._tainted(node.value), node.lineno)

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        known, val = self._const_value(node.test)
        if known:
            # Build-time-constant guard: only the live branch exists,
            # and it is uniform across ranks (no divergence guard).
            for stmt in (node.body if val else node.orelse):
                self.visit(stmt)
            return
        self._guards.append(self._tainted(node.test))
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._guards.pop()

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        known, val = self._const_value(node.test)
        if known:
            self.visit(node.body if val else node.orelse)
            return
        self._guards.append(self._tainted(node.test))
        self.visit(node.body)
        self.visit(node.orelse)
        self._guards.pop()

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._guards.append(self._tainted(node.test))
        self._loops += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loops -= 1
        self._guards.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        iter_taint = self._tainted(node.iter)
        self._assign_target(node.target, None, iter_taint, node.lineno)
        # A rank-dependent trip count diverges exactly like a branch.
        self._guards.append(iter_taint)
        self._loops += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loops -= 1
        self._guards.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.visit(node.value)
            if self._tainted(node.value):
                self.out.returns_tainted = True
            if self.collect:
                if self._is_ctx(node.value):
                    self._escape(node.lineno, "ctx returned to the caller")
                else:
                    self._check_ctx_escape(node.value, node.lineno,
                                           "the return value")

    def visit_Expr(self, node: ast.Expr) -> None:
        op = self._mpi_op(node.value)
        if op is not None:
            self._record_mpi(node.value, op, bound=None, standalone=True)  # type: ignore[arg-type]
            call = node.value
            assert isinstance(call, ast.Call)
            for arg in call.args:
                self.visit(arg)
            for kw in call.keywords:
                self.visit(kw.value)
            return
        self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        op = self._mpi_op(node)
        if op is not None:
            self._record_mpi(node, op, bound=None, standalone=False)
        call = self._ctx_method(node, "call")
        if call is not None and call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if self.collect:
                    self.out.calls.append(CallSite(
                        callee=first.value, line=node.lineno,
                        func=self.fname,
                        arg_taints=tuple(self._tainted(a)
                                         for a in call.args[1:]),
                        guard_tainted=any(self._guards),
                    ))
        charge = self._ctx_method(node, "charge_accesses")
        if charge is not None and charge.args:
            d = charge.args[0]
            if isinstance(d, ast.Dict):
                for k in d.keys:
                    if isinstance(k, ast.Constant) \
                            and isinstance(k.value, str):
                        self._read(k.value, node.lineno)
        for arg in node.args:
            if self._is_ctx(arg):
                # ctx passed to a plain helper is fine (stack lifetime);
                # only *storage* escapes are flagged elsewhere.
                continue
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        self.visit(node.func)

    def _record_mpi(self, node: ast.Call, op: str, *,
                    bound: str | None, standalone: bool) -> None:
        if not self.collect:
            return
        tag, has_tag = self._tag_of(node, op)
        self.out.mpi.append(MpiCall(
            op=op, line=node.lineno, func=self.fname,
            guard_tainted=any(self._guards), guarded=bool(self._guards),
            tag=tag, has_tag=has_tag, bound=bound, standalone=standalone,
            in_container=False,
        ))

    @staticmethod
    def _tag_of(node: ast.Call, op: str) -> tuple[int | None, bool]:
        """The constant message tag of a send/recv call, if present."""
        tag_pos = {"send": 2, "isend": 2, "recv": 1, "irecv": 1}.get(op)
        if tag_pos is None:
            return None, False
        expr: ast.AST | None = None
        for kw in node.keywords:
            if kw.arg == "tag":
                expr = kw.value
        if expr is None and len(node.args) > tag_pos:
            expr = node.args[tag_pos]
        if expr is None:
            return None, False
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value, True
        return None, True  # dynamic tag: matches anything

    def _bind_request(self, name: str, value: ast.AST | None,
                      line: int) -> None:
        """``x = mpi.irecv(...)`` — remember the bound request name."""
        if value is None or not self.collect:
            return
        op = self._mpi_op(value)
        if op in ("isend", "irecv"):
            assert isinstance(value, ast.Call)
            tag, has_tag = self._tag_of(value, op)
            # Replace the unbound record visit_Call just appended.
            for i in range(len(self.out.mpi) - 1, -1, -1):
                m = self.out.mpi[i]
                if m.line == line and m.op == op and m.bound is None:
                    self.out.mpi[i] = MpiCall(
                        op=op, line=line, func=self.fname,
                        guard_tainted=m.guard_tainted, guarded=m.guarded,
                        tag=tag, has_tag=has_tag, bound=name,
                        standalone=False, in_container=False,
                    )
                    break

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested helper: scan its body with the same machinery (no ctx
        # param of its own, so only det/module-global issues can arise).
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


# ---------------------------------------------------------------------------
# Whole-program model
# ---------------------------------------------------------------------------

@dataclass
class ProgramModel:
    """Parsed + scanned view of one :class:`ProgramSource`."""

    source: ProgramSource
    functions: dict[str, FunctionAst]
    summaries: dict[str, FunctionSummary]
    #: functions whose bodies could not be recovered
    unscanned: list[str]
    #: functions that (transitively) execute a collective
    has_collective: frozenset[str]

    def all_reads(self) -> Iterator[GlobalRead]:
        for s in self.summaries.values():
            yield from s.reads

    def all_writes(self) -> Iterator[GlobalWrite]:
        for s in self.summaries.values():
            yield from s.writes

    def accessed_globals(self) -> set[str]:
        names = {r.name for r in self.all_reads()}
        names.update(w.name for w in self.all_writes())
        return names


def build_model(source: ProgramSource) -> ProgramModel:
    """Parse and scan every function; fixpoint the return-taint table."""
    functions: dict[str, FunctionAst] = {}
    unscanned: list[str] = []
    for fdef in source.functions:
        try:
            functions[fdef.name] = parse_function(fdef)
        except SourceUnavailable:
            unscanned.append(fdef.name)

    # Three full passes: pass 1 has no interprocedural facts, pass 2
    # sees pass 1's return-taint and callsite-argument taints, pass 3
    # covers taint flowing through one further level of helpers.  The
    # programs this simulator builds have call graphs two or three deep,
    # so a fixed small bound is both deterministic and sufficient.
    returns_tainted: set[str] = set()
    summaries: dict[str, FunctionSummary] = {}
    for _ in range(3):
        prev = summaries
        summaries = {}
        for name, fast in functions.items():
            scan = _BodyScan(fast, _param_taints(name, prev))
            scan.returns_taint_table = frozenset(returns_tainted)
            summaries[name] = scan.run()
        returns_tainted = {n for n, s in summaries.items()
                           if s.returns_tainted}

    has_coll = _transitive_collectives(summaries)
    return ProgramModel(source=source, functions=functions,
                        summaries=summaries, unscanned=sorted(unscanned),
                        has_collective=has_coll)


def _param_taints(name: str,
                  prev: dict[str, FunctionSummary]) -> frozenset[int]:
    """Indices of ``name``'s params called with tainted args anywhere."""
    out: set[int] = set()
    for s in prev.values():
        for c in s.calls:
            if c.callee == name:
                out.update(i for i, t in enumerate(c.arg_taints) if t)
    return frozenset(out)


def _transitive_collectives(
        summaries: dict[str, FunctionSummary]) -> frozenset[str]:
    direct = {n for n, s in summaries.items()
              if any(m.op in COLLECTIVE_OPS for m in s.mpi)}
    changed = True
    while changed:
        changed = False
        for n, s in summaries.items():
            if n in direct:
                continue
            if any(c.callee in direct for c in s.calls):
                direct.add(n)
                changed = True
    return frozenset(direct)


# ---------------------------------------------------------------------------
# Closure inspection (host-object level, not AST)
# ---------------------------------------------------------------------------

_SAFE_SCALARS = (int, float, complex, str, bytes, bool, type(None),
                 frozenset)


def mutable_closure_cells(fn: Callable[..., Any],
                          _depth: int = 0) -> list[tuple[str, str]]:
    """(free variable name, type name) for captured mutable state.

    Frozen dataclasses, scalars, tuples of safe values, and functions
    (recursed one level) are migration-safe; lists/dicts/sets/arrays and
    thawed dataclass instances are not — they live outside the rank's
    privatized segments and heap, so a migrated or restored rank would
    silently share (or lose) them.
    """
    fn = inspect.unwrap(fn)
    closure = getattr(fn, "__closure__", None)
    code = getattr(fn, "__code__", None)
    if not closure or code is None:
        return []
    out: list[tuple[str, str]] = []
    for name, cell in zip(code.co_freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:  # empty cell (recursive def)
            continue
        if _is_mutable_value(value):
            out.append((name, type(value).__name__))
        elif callable(value) and _depth < 1 \
                and getattr(value, "__closure__", None):
            for sub, tname in mutable_closure_cells(value, _depth + 1):
                out.append((f"{name}.{sub}", tname))
    return out


def _is_mutable_value(value: Any, _depth: int = 0) -> bool:
    if isinstance(value, _SAFE_SCALARS):
        return False
    if isinstance(value, tuple):
        if _depth > 3:
            return False
        return any(_is_mutable_value(v, _depth + 1) for v in value)
    if isinstance(value, (list, dict, set, bytearray)):
        return True
    if type(value).__name__ == "ndarray":
        return True
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        params = getattr(type(value), "__dataclass_params__", None)
        return not (params is not None and params.frozen)
    return False
