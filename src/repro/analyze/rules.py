"""Rule families 1–3 over a :class:`~repro.analyze.model.ProgramModel`.

Family 1 — privatization surface inference (``pv-*``): classify every
global's observed access pattern and cross-check it against the declared
:class:`~repro.mem.segments.VarDef` flags and (optionally) a chosen
privatization method's coverage.

Family 2 — migration/checkpoint safety (``mig-*``): state that lives
outside the rank's privatized segments and heap, which migration and
checkpoint/restore silently lose or share.

Family 3 — communication shape (``comm-*``): symbolic tag matching,
collectives under rank-dependent control flow, blocking-recv-before-send
deadlock shapes, and never-completed nonblocking requests.

Family 4 (``det-*``) lives in :mod:`repro.analyze.determinism`; this
module only adapts its events onto program functions.
"""

from __future__ import annotations

from repro.analyze.determinism import scan_tree
from repro.analyze.model import (
    COLLECTIVE_OPS,
    RECV_OPS,
    SEND_OPS,
    GlobalWrite,
    ProgramModel,
)
from repro.mem.segments import VarDef
from repro.sanitize.findings import Finding, Severity

#: inferred access classes (family 1)
READ_ONLY = "read-only"
WRITE_ONCE_SAME = "write-once-same"
RANK_VARYING = "rank-varying"


def classify_globals(model: ProgramModel) -> dict[str, str]:
    """Observed access class for every declared or accessed global."""
    writes: dict[str, list[GlobalWrite]] = {}
    for w in model.all_writes():
        writes.setdefault(w.name, []).append(w)
    names = {v.name for v in model.source.variables}
    names |= model.accessed_globals()
    out: dict[str, str] = {}
    for name in sorted(names):
        ws = writes.get(name, [])
        if not ws:
            out[name] = READ_ONLY
        elif (len(ws) == 1 and not ws[0].tainted and not ws[0].self_ref
              and not ws[0].in_loop):
            out[name] = WRITE_ONCE_SAME
        else:
            # Rank-dependent values, read-modify-write accumulation, or
            # repeated writes: sharing one copy is order-dependent.
            out[name] = RANK_VARYING
    return out


def inferred_unsafe(model: ProgramModel,
                    classes: dict[str, str] | None = None) -> list[str]:
    """Declared globals whose observed use requires privatization."""
    classes = classes if classes is not None else classify_globals(model)
    declared = {v.name for v in model.source.variables}
    return [n for n, c in sorted(classes.items())
            if c == RANK_VARYING and n in declared]


def _site(model: ProgramModel, func: str, line: int) -> dict:
    s = model.summaries.get(func)
    return {"file": s.src_file if s else None, "line": line}


def privatization_findings(model: ProgramModel, *,
                           method=None, suggest: bool = False,
                           classes: dict[str, str] | None = None
                           ) -> list[Finding]:
    source = model.source
    declared = {v.name: v for v in source.variables}
    classes = classes if classes is not None else classify_globals(model)
    writes: dict[str, list[GlobalWrite]] = {}
    for w in model.all_writes():
        writes.setdefault(w.name, []).append(w)
    first_access: dict[str, tuple[str, int]] = {}
    for r in model.all_reads():
        first_access.setdefault(r.name, (r.func, r.line))
    for w in model.all_writes():
        prev = first_access.get(w.name)
        if prev is None or w.line < prev[1]:
            first_access[w.name] = (w.func, w.line)

    out: list[Finding] = []
    for name in sorted(model.accessed_globals() - set(declared)):
        func, line = first_access[name]
        out.append(Finding(
            code="pv-undeclared-global", severity=Severity.ERROR,
            message=f"access to undeclared global {name!r} in {func}()",
            image=source.name, symbol=name,
            fix_hint="declare it with Program.add_global/add_static",
            **_site(model, func, line),
        ))

    for name, var in sorted(declared.items()):
        ws = sorted(writes.get(name, ()), key=lambda w: (w.line, w.func))
        if var.const and ws:
            w = ws[0]
            out.append(Finding(
                code="pv-const-write", severity=Severity.ERROR,
                message=f"const global {name!r} is written in {w.func}()",
                image=source.name, symbol=name,
                fix_hint="drop const, or stop writing it",
                **_site(model, w.func, w.line),
            ))
        if var.write_once_same:
            tainted = [w for w in ws if w.tainted]
            if tainted:
                w = tainted[0]
                out.append(Finding(
                    code="pv-write-once-divergent", severity=Severity.ERROR,
                    message=(f"write_once_same global {name!r} is written "
                             f"with a rank-dependent value in {w.func}()"),
                    image=source.name, symbol=name,
                    fix_hint="declare it a plain mutable global so "
                             "privatization covers it",
                    **_site(model, w.func, w.line),
                ))
        if method is not None and classes.get(name) == RANK_VARYING \
                and var.unsafe and not method.privatizes_var(var):
            w = next((x for x in ws if x.tainted), ws[0])
            kind = ("static" if var.static
                    else "tls" if var.tls else "global")
            out.append(Finding(
                code="pv-method-insufficient", severity=Severity.ERROR,
                message=(f"{kind} {name!r} holds rank-varying state but "
                         f"method {method.name!r} leaves it shared"),
                image=source.name, symbol=name,
                fix_hint="pick a method that privatizes this variable "
                         "class (see repro probe)",
                **_site(model, w.func, w.line),
            ))

    if suggest:
        idle = [n for n, v in sorted(declared.items())
                if v.unsafe and classes.get(n) == READ_ONLY]
        if idle:
            shown = ", ".join(idle[:5]) + ("..." if len(idle) > 5 else "")
            out.append(Finding(
                code="pv-unneeded-privatization", severity=Severity.INFO,
                message=(f"{len(idle)} mutable global(s) are never "
                         f"written ({shown}); declaring them const or "
                         "write_once_same shrinks the privatization "
                         "surface"),
                image=source.name,
            ))
    return out


# ---------------------------------------------------------------------------
# Family 2: migration/checkpoint safety
# ---------------------------------------------------------------------------

def migration_findings(model: ProgramModel) -> list[Finding]:
    from repro.analyze.model import mutable_closure_cells

    out: list[Finding] = []
    for fdef in model.source.functions:
        if fdef.fn is None:
            continue
        for cell, tname in mutable_closure_cells(fdef.fn):
            out.append(Finding(
                code="mig-closure-mutable", severity=Severity.ERROR,
                message=(f"{fdef.name}() closes over mutable {tname} "
                         f"{cell!r}; it is invisible to migration and "
                         "checkpoint/restore"),
                image=model.source.name, symbol=cell,
                fix_hint="move the state into a declared global or pass "
                         "it as an argument",
                file=fdef.src_file, line=fdef.src_line or None,
            ))
    for fname, s in sorted(model.summaries.items()):
        for name, line in s.module_writes:
            out.append(Finding(
                code="mig-module-global-write", severity=Severity.ERROR,
                message=(f"{fname}() writes host module global {name!r}; "
                         "it is shared by every rank in the interpreter "
                         "and never migrated"),
                image=model.source.name, symbol=name,
                fix_hint="declare a program global instead",
                file=s.src_file, line=line,
            ))
        for line, detail in s.ctx_escapes:
            out.append(Finding(
                code="mig-ctx-escape", severity=Severity.ERROR,
                message=(f"{fname}(): {detail}; the execution context is "
                         "rebuilt on migration and must not outlive the "
                         "call"),
                image=model.source.name, symbol=fname,
                fix_hint="keep ctx on the stack; store plain values",
                file=s.src_file, line=line,
            ))
    return out


# ---------------------------------------------------------------------------
# Family 3: communication shape
# ---------------------------------------------------------------------------

def comm_findings(model: ProgramModel) -> list[Finding]:
    out: list[Finding] = []
    for fname, s in sorted(model.summaries.items()):
        for m in s.mpi:
            if m.op in COLLECTIVE_OPS and m.guard_tainted:
                out.append(Finding(
                    code="comm-collective-divergent",
                    severity=Severity.ERROR,
                    message=(f"collective mpi.{m.op}() in {fname}() under "
                             "a rank-dependent branch: ranks that skip "
                             "it deadlock the others"),
                    image=model.source.name, symbol=fname,
                    fix_hint="hoist the collective out of the "
                             "rank-dependent branch",
                    file=s.src_file, line=m.line,
                ))
        for c in s.calls:
            if c.guard_tainted and c.callee in model.has_collective:
                out.append(Finding(
                    code="comm-collective-divergent",
                    severity=Severity.ERROR,
                    message=(f"{fname}() calls {c.callee}() — which "
                             "executes a collective — under a "
                             "rank-dependent branch"),
                    image=model.source.name, symbol=fname,
                    fix_hint="hoist the call out of the rank-dependent "
                             "branch",
                    file=s.src_file, line=c.line,
                ))
        out += _recv_before_send(model, fname)
        out += _unwaited_requests(model, fname)
    out += _tag_mismatches(model)
    return out


def _recv_before_send(model: ProgramModel, fname: str) -> list[Finding]:
    s = model.summaries[fname]
    sends = [m for m in s.mpi if m.op in SEND_OPS]
    if not sends:
        return []
    first_send = min(m.line for m in sends)
    for m in s.mpi:
        if m.op == "recv" and not m.guarded and m.line < first_send:
            return [Finding(
                code="comm-recv-before-send", severity=Severity.ERROR,
                message=(f"{fname}(): every rank blocks in mpi.recv() "
                         "before any rank reaches its send — a "
                         "symmetric deadlock"),
                image=model.source.name, symbol=fname,
                fix_hint="post irecv first, or order by rank parity "
                         "(sendrecv)",
                file=s.src_file, line=m.line,
            )]
    return []


def _unwaited_requests(model: ProgramModel, fname: str) -> list[Finding]:
    s = model.summaries[fname]
    out: list[Finding] = []
    for m in s.mpi:
        if m.op not in ("isend", "irecv"):
            continue
        if m.standalone and m.op == "irecv":
            out.append(Finding(
                code="comm-unwaited-request", severity=Severity.ERROR,
                message=(f"{fname}(): mpi.irecv() result discarded — "
                         "the message can never be received"),
                image=model.source.name, symbol=fname,
                fix_hint="bind the request and mpi.wait() it",
                file=s.src_file, line=m.line,
            ))
        elif m.bound is not None:
            later = [ln for ln in s.name_loads.get(m.bound, ())
                     if ln > m.line]
            if not later:
                out.append(Finding(
                    code="comm-unwaited-request", severity=Severity.ERROR,
                    message=(f"{fname}(): request {m.bound!r} from "
                             f"mpi.{m.op}() is never waited or tested"),
                    image=model.source.name, symbol=fname,
                    fix_hint="mpi.wait()/mpi.test() the request",
                    file=s.src_file, line=m.line,
                ))
    return out


def _tag_mismatches(model: ProgramModel) -> list[Finding]:
    """Program-wide constant-tag matching between send and recv sides.

    A dynamic (non-constant) tag on either side is treated as matching
    anything; the rule only fires when both populations are statically
    known and provably disjoint somewhere.
    """
    sends: list[tuple[int | None, str, int]] = []   # (tag, func, line)
    recvs: list[tuple[int | None, str, int]] = []
    for fname, s in model.summaries.items():
        for m in s.mpi:
            if m.op in SEND_OPS:
                # Facade default tag is 0; a supplied non-constant tag
                # (m.tag None with has_tag) is a wildcard.
                sends.append((m.tag if m.has_tag else 0, fname, m.line))
            elif m.op in RECV_OPS:
                # recv default is ANY_TAG; a supplied non-constant tag
                # is also a wildcard for matching purposes.
                recvs.append((m.tag if m.has_tag else None, fname, m.line))
    if not sends or not recvs:
        return []
    send_wild = any(t is None for t, _, _ in sends)
    recv_wild = any(t is None for t, _, _ in recvs)
    send_tags = {t for t, _, _ in sends if t is not None}
    recv_tags = {t for t, _, _ in recvs if t is not None}
    out: list[Finding] = []
    if not recv_wild:
        for tag, fname, line in sorted(
                (x for x in sends
                 if x[0] is not None and x[0] not in recv_tags),
                key=lambda x: (x[1], x[2])):
            s = model.summaries[fname]
            out.append(Finding(
                code="comm-tag-mismatch", severity=Severity.ERROR,
                message=(f"{fname}() sends with tag {tag} but no recv "
                         "in the program accepts it"),
                image=model.source.name, symbol=fname,
                fix_hint="align the send/recv tag constants",
                file=s.src_file, line=line,
            ))
    if not send_wild:
        for tag, fname, line in sorted(
                (x for x in recvs
                 if x[0] is not None and x[0] not in send_tags),
                key=lambda x: (x[1], x[2])):
            s = model.summaries[fname]
            out.append(Finding(
                code="comm-tag-mismatch", severity=Severity.ERROR,
                message=(f"{fname}() receives with tag {tag} but no "
                         "send in the program produces it"),
                image=model.source.name, symbol=fname,
                fix_hint="align the send/recv tag constants",
                file=s.src_file, line=line,
            ))
    return out


# ---------------------------------------------------------------------------
# Family 4 adapter: determinism over program function bodies
# ---------------------------------------------------------------------------

def determinism_findings(model: ProgramModel) -> list[Finding]:
    from repro.analyze.selflint import DET_HINTS, DET_SEVERITY

    out: list[Finding] = []
    for name, fast in sorted(model.functions.items()):
        for ev in scan_tree(fast.tree):
            out.append(Finding(
                code=ev.code,
                severity=DET_SEVERITY.get(ev.code, Severity.WARNING),
                message=f"{name}(): {ev.detail} in a rank body",
                image=model.source.name, symbol=name,
                fix_hint=DET_HINTS.get(ev.code, ""),
                file=fast.src_file, line=ev.line,
            ))
    return out


def var_class(var: VarDef) -> str:
    """The correctness-probe class a variable belongs to."""
    if var.static:
        return "static"
    if var.tls:
        return "tls"
    return "global"
