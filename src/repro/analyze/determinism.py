"""Determinism lint (rule family 4): sources of host nondeterminism.

The simulator's contract — byte-identical timelines for identical specs,
enforced by the pinned-scenario CI gate, chaos replay, and the serve
result cache — only holds if nothing on a simulated-time path consults
the host: wall clocks, unseeded RNGs, set iteration order, or ``id()``
values.  This scan finds exactly those four shapes, in program function
bodies (via ``repro analyze``) and over the simulator's own sources
(via the ``repro analyze self`` self-lint).

Codes
-----
``det-wallclock``        reading the host clock (``time.*``, ``datetime.now``,
                         ``st_mtime``, ``time.sleep``)
``det-unseeded-random``  module-level ``random``/``np.random`` calls, or
                         constructing an RNG with no seed
``det-set-iteration``    iterating a set (or set expression) where order
                         escapes — wrapping in ``sorted()`` is the fix
``det-id-key``           using ``id(...)`` as a mapping/set key

Suppression (self-lint only): a ``# repro: allow(<code>) <reason>``
pragma on the offending line or the line above.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "sleep",
})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_MTIME_ATTRS = frozenset({"st_mtime", "st_mtime_ns", "st_atime",
                          "st_atime_ns", "st_ctime", "st_ctime_ns"})
#: module-level functions of the global (unseeded) ``random`` RNG
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "uniform", "gauss",
    "normalvariate", "choice", "choices", "sample", "shuffle",
    "betavariate", "expovariate", "triangular", "getrandbits",
})
#: order-insensitive consumers: iterating a set inside these is fine
_ORDER_FREE = frozenset({"sorted", "min", "max", "sum", "len", "any",
                         "all", "set", "frozenset"})

PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


@dataclass(frozen=True)
class DetEvent:
    code: str
    line: int
    detail: str


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random`` etc.)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


class DeterminismScan(ast.NodeVisitor):
    """Collects :class:`DetEvent` records from one AST."""

    def __init__(self) -> None:
        self.events: list[DetEvent] = []
        self._order_free: set[int] = set()

    def scan(self, tree: ast.AST) -> list[DetEvent]:
        self.visit(tree)
        self.events.sort(key=lambda e: (e.line, e.code, e.detail))
        return self.events

    def _emit(self, code: str, line: int, detail: str) -> None:
        self.events.append(DetEvent(code, line, detail))

    # -- wall clock / RNG ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        head, _, tail = name.rpartition(".")
        if head == "time" and tail in _TIME_FUNCS:
            self._emit("det-wallclock", node.lineno, f"{name}()")
        elif tail in _DATETIME_FUNCS and head.split(".")[-1] in (
                "datetime", "date"):
            self._emit("det-wallclock", node.lineno, f"{name}()")
        elif tail in _RANDOM_FUNCS and head.split(".")[-1] == "random":
            self._emit("det-unseeded-random", node.lineno, f"{name}()")
        elif tail == "Random" and head.split(".")[-1] in ("random", "") \
                and head and not node.args and not node.keywords:
            self._emit("det-unseeded-random", node.lineno,
                       f"{name}() without a seed")
        elif tail == "default_rng" and not node.args and not node.keywords:
            self._emit("det-unseeded-random", node.lineno,
                       f"{name}() without a seed")
        if isinstance(node.func, ast.Name) and node.func.id in _ORDER_FREE:
            for arg in node.args:
                self._order_free.add(id(arg))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _MTIME_ATTRS:
            self._emit("det-wallclock", node.lineno,
                       f"filesystem timestamp .{node.attr}")
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (DeterminismScan._is_set_expr(node.left)
                    or DeterminismScan._is_set_expr(node.right))
        return False

    def _check_iter(self, owner: ast.AST, it: ast.AST) -> None:
        if id(owner) in self._order_free:
            return
        if self._is_set_expr(it):
            self._emit("det-set-iteration", it.lineno,
                       "iteration over a set expression; wrap in sorted()")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- id()-keyed maps -----------------------------------------------------

    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Name) \
                    and sub.func.id == "id":
                return True
        return False

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._contains_id_call(node.slice):
            self._emit("det-id-key", node.lineno,
                       "id() used as a mapping key")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._contains_id_call(key):
                self._emit("det-id-key", key.lineno,
                           "id() used as a dict-literal key")
        self.generic_visit(node)


def scan_tree(tree: ast.AST) -> list[DetEvent]:
    return DeterminismScan().scan(tree)


def pragma_lines(source_lines: list[str]) -> dict[int, set[str]]:
    """1-based line -> finding codes allowed on it (or the next line)."""
    out: dict[int, set[str]] = {}
    for i, text in enumerate(source_lines, start=1):
        m = PRAGMA_RE.search(text)
        if not m:
            continue
        codes = {c.strip() for c in m.group(1).split(",")}
        out.setdefault(i, set()).update(codes)
        out.setdefault(i + 1, set()).update(codes)
    return out
