"""Top-level entry points for the static analyzer.

:func:`analyze_source` runs every rule family over one
:class:`~repro.program.source.ProgramSource` and returns an
:class:`AnalysisReport`; :func:`predict_min_method` turns the inferred
privatization surface into the cheapest sufficient method, which the
matrix tests cross-check against the runtime correctness probes of
:mod:`repro.harness.capabilities`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.analyze.model import ProgramModel, build_model
from repro.analyze.rules import (
    classify_globals,
    comm_findings,
    determinism_findings,
    inferred_unsafe,
    migration_findings,
    privatization_findings,
)
from repro.privatization.base import PrivatizationMethod
from repro.privatization.registry import get_method
from repro.program.source import ProgramSource
from repro.sanitize.findings import Finding, Severity, sort_findings

#: methods from cheapest to most heavyweight machinery; the predicted
#: minimal method is the first one that privatizes every variable the
#: analysis inferred as rank-varying.
COST_ORDER = ("none", "swapglobals", "tlsglobals", "mpc",
              "pipglobals", "fsglobals", "pieglobals")


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced, JSON-serializable."""

    target: str
    program: str
    method: str | None
    findings: list[Finding]
    classifications: dict[str, str]
    inferred_unsafe: list[str]
    predicted_method: str | None
    functions: list[str]
    unscanned: list[str]
    elapsed_ms: float = 0.0
    model: ProgramModel | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def codes(self) -> list[str]:
        return sorted({f.code for f in self.findings})

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "program": self.program,
            "method": self.method,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "classifications": dict(sorted(self.classifications.items())),
            "inferred_unsafe": list(self.inferred_unsafe),
            "predicted_method": self.predicted_method,
            "functions": list(self.functions),
            "unscanned": list(self.unscanned),
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


def analyze_source(source: ProgramSource, *,
                   method: str | PrivatizationMethod | None = None,
                   suggest: bool = False,
                   target: str = "") -> AnalysisReport:
    """Run all four rule families over one program source."""
    t0 = time.perf_counter()  # repro: allow(det-wallclock) host-side analysis timing
    m = get_method(method) if method is not None else None
    model = build_model(source)
    classes = classify_globals(model)
    findings: list[Finding] = []
    findings += privatization_findings(model, method=m, suggest=suggest,
                                       classes=classes)
    findings += migration_findings(model)
    findings += comm_findings(model)
    findings += determinism_findings(model)
    findings = [f if f.phase else dataclasses.replace(f, phase="source")
                for f in _dedupe(findings)]
    for name in model.unscanned:
        findings.append(Finding(
            code="ana-source-unavailable", severity=Severity.WARNING,
            message=f"{name}(): body source unavailable; not analyzed",
            image=source.name, symbol=name, phase="source",
        ))
    unsafe = inferred_unsafe(model, classes)
    elapsed = (time.perf_counter() - t0) * 1e3  # repro: allow(det-wallclock) host-side analysis timing
    return AnalysisReport(
        target=target or source.name,
        program=source.name,
        method=m.name if m is not None else None,
        findings=sort_findings(findings),
        classifications=classes,
        inferred_unsafe=unsafe,
        predicted_method=predict_min_method(source, model=model,
                                            classes=classes),
        functions=sorted(model.functions),
        unscanned=list(model.unscanned),
        elapsed_ms=elapsed,
        model=model,
    )


def _dedupe(findings: list[Finding]) -> list[Finding]:
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in findings:
        key = (f.code, f.file, f.line, f.symbol, f.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def predict_min_method(source: ProgramSource, *,
                       model: ProgramModel | None = None,
                       classes: dict[str, str] | None = None
                       ) -> str | None:
    """Cheapest method covering the *inferred* privatization surface.

    Unlike ``source.unsafe_vars()`` (the declared surface), this uses the
    observed access classes: a mutable global the program never writes
    rank-divergently needs no privatization at all.
    """
    model = model if model is not None else build_model(source)
    classes = classes if classes is not None else classify_globals(model)
    need = set(inferred_unsafe(model, classes))
    by_name = {v.name: v for v in source.variables}
    for name in COST_ORDER:
        m = get_method(name)
        if all(m.privatizes_var(by_name[n]) for n in need):
            return name
    return None


def method_sufficient(source: ProgramSource, name: str, *,
                      model: ProgramModel | None = None) -> bool:
    """Does ``name`` privatize every inferred rank-varying global?"""
    model = model if model is not None else build_model(source)
    need = inferred_unsafe(model)
    by_name = {v.name: v for v in source.variables}
    m = get_method(name)
    return all(m.privatizes_var(by_name[n]) for n in need)
