"""Target resolution for ``repro analyze``.

Accepted target forms:

``<app>``            a registered app (``repro.harness.jobspec``), built
                     with a small analysis-sized config
``apps``             every registered app
``example:<name>``   one bundled ``examples/*.py`` script's program
``examples``         every bundled example
``fixture:<name>``   one seeded-violation fixture
``fixtures``         every fixture
``self``             determinism self-lint over ``src/repro`` itself
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Callable

from repro.program.source import ProgramSource

#: analysis-sized app configs: the lint is shape-driven, not scale-driven
APP_CONFIGS: dict[str, dict] = {
    "jacobi3d": {"n": 12, "iters": 4},
    "adcirc": {"steps": 20, "lb_period": 5},
    "memhog": {},
    "startup": {},
    "pingpong": {},
    "hello": {},
}


def examples_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parents[2] / "examples"


def _load_example(stem: str):
    path = examples_dir() / f"{stem}.py"
    if not path.is_file():
        raise ValueError(f"no example {stem!r} at {path}")
    spec = importlib.util.spec_from_file_location(f"_repro_example_{stem}",
                                                  path)
    assert spec is not None and spec.loader is not None
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _jacobi_example() -> ProgramSource:
    from repro.apps import JacobiConfig, build_jacobi_program

    return build_jacobi_program(JacobiConfig(n=24, iters=12, reduce_every=3))


def _adcirc_example() -> ProgramSource:
    from repro.apps import AdcircConfig, build_adcirc_program

    return build_adcirc_program(AdcircConfig(steps=100, lb_period=5))


#: example name -> builder for the program that example drives
EXAMPLE_BUILDERS: dict[str, Callable[[], ProgramSource]] = {
    "quickstart": lambda: _load_example("quickstart").build_hello(),
    "checkpoint_restart":
        lambda: _load_example("checkpoint_restart").build(
            crash_after_checkpoint=False),
    "cloud_elasticity": lambda: _load_example("cloud_elasticity").build(),
    "method_tour": lambda: _load_example("method_tour").build_probe(),
    "jacobi3d_overdecomposition": _jacobi_example,
    "storm_surge_load_balancing": _adcirc_example,
}


def example_names() -> list[str]:
    return sorted(EXAMPLE_BUILDERS)


def build_example(name: str) -> ProgramSource:
    try:
        builder = EXAMPLE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown example {name!r}; have: {', '.join(example_names())}"
        ) from None
    return builder()


def app_source(app: str) -> ProgramSource:
    from repro.harness.jobspec import build_app_source

    return build_app_source(app, dict(APP_CONFIGS.get(app, {})))


def resolve_targets(target: str) -> list[tuple[str, ProgramSource, dict]]:
    """Expand one CLI target word into (label, source, kwargs) triples.

    ``kwargs`` are per-target analyzer overrides (fixtures may require
    ``method=`` or ``suggest=`` to exhibit their defect).  ``self`` is
    handled by the CLI directly (it lints files, not a program) and is
    rejected here.
    """
    from repro.harness.jobspec import app_names

    if target == "self":
        raise ValueError("'self' target lints files, not programs")
    if target == "apps":
        return [(a, app_source(a), {}) for a in app_names()]
    if target == "examples":
        return [(f"example:{n}", build_example(n), {})
                for n in example_names()]
    if target == "fixtures":
        from repro.analyze.fixtures import fixture_names, get_fixture

        out = []
        for n in fixture_names():
            fx = get_fixture(n)
            out.append((f"fixture:{n}", fx.build(),
                        dict(fx.analyze_kwargs)))
        return out
    if target.startswith("example:"):
        name = target.partition(":")[2]
        return [(target, build_example(name), {})]
    if target.startswith("fixture:"):
        from repro.analyze.fixtures import get_fixture

        fx = get_fixture(target.partition(":")[2])
        return [(target, fx.build(), dict(fx.analyze_kwargs))]
    if target in app_names():
        return [(target, app_source(target), {})]
    raise ValueError(
        f"unknown analyze target {target!r}; have app names "
        f"({', '.join(app_names())}), apps, example:<name>, examples, "
        f"fixture:<name>, fixtures, or self"
    )
