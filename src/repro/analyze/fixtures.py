"""Seeded-violation fixtures for the static analyzer.

One tiny program per analyzer rule, each exhibiting exactly one defect.
They serve the same three masters as the sanitizer's fixtures
(:mod:`repro.sanitize.fixtures`): ``repro analyze fixture:<name>`` demos
each diagnostic, the test suite asserts exact finding codes, and CI's
analyze-smoke step keeps the catalog honest.

Each fixture also declares what *running* the same program does
(``runtime`` field), so the agreement tests can show where static
analysis beats the runtime detectors: ``ana-write-once-divergent`` and
the migration-safety family are runtime-silent defects only the
analyzer reports.

The determinism fixtures deliberately contain the host-nondeterminism
shapes the self-lint forbids, so their offending lines carry
``# repro: allow(...)`` pragmas.  Pragmas are honored only by the
*file* lint (``repro analyze self``); the program analyzer ignores
them, which is exactly what lets these bodies stay detectable.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.program.source import Program, ProgramSource

#: host interpreter state for the module-global-write fixture
_MODULE_STATE = 0

#: how the same program behaves when actually executed
RUNTIME_SEGFAULT = "segfault"    #: raises SegFault
RUNTIME_DEADLOCK = "deadlock"    #: raises DeadlockError
RUNTIME_RACES = "races"          #: run completes, race detector fires
RUNTIME_SILENT = "silent"        #: run completes, no runtime finding


@dataclass(frozen=True)
class AnalyzeFixture:
    name: str
    build: Callable[[], ProgramSource]
    expected: frozenset[str]       #: exactly these finding codes
    runtime: str                   #: RUNTIME_* outcome when executed
    #: extra keyword arguments for :func:`repro.analyze.analyze_source`
    analyze_kwargs: dict = field(default_factory=dict)
    #: privatization method the runtime-agreement run uses
    run_method: str = "pieglobals"
    nvp: int = 4


_FIXTURES: dict[str, AnalyzeFixture] = {}

#: fixture name -> exactly the finding codes it must produce
EXPECTED: dict[str, frozenset[str]] = {}


def fixture_names() -> list[str]:
    return sorted(_FIXTURES)


def get_fixture(name: str) -> AnalyzeFixture:
    try:
        return _FIXTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown analyze fixture {name!r}; "
            f"have: {', '.join(fixture_names())}"
        ) from None


def _fixture(name: str, expected: set[str], runtime: str, **kw):
    def deco(build: Callable[[], ProgramSource]):
        fx = AnalyzeFixture(name=name, build=build,
                            expected=frozenset(expected),
                            runtime=runtime, **kw)
        _FIXTURES[name] = fx
        EXPECTED[name] = fx.expected
        return build
    return deco


def analyze_fixture(name: str):
    """Run the analyzer over one fixture program."""
    from repro.analyze.driver import analyze_source

    fx = get_fixture(name)
    return analyze_source(fx.build(), target=f"fixture:{name}",
                          **fx.analyze_kwargs)


def run_fixture_job(name: str):
    """Compile and execute one fixture under the runtime sanitizer.

    Returns ``(result, detector)``; raises whatever the run raises
    (SegFault, DeadlockError) — the agreement tests assert on exactly
    that contrast with the static expectation.
    """
    from repro.ampi.runtime import AmpiJob
    from repro.charm.node import JobLayout
    from repro.machine import GENERIC_LINUX
    from repro.privatization.registry import get_method
    from repro.program.compiler import CompileOptions, Compiler
    from repro.sanitize.runtime import RaceDetector

    fx = get_fixture(name)
    m = get_method(fx.run_method)
    opts = m.compile_options(CompileOptions(optimize=1), GENERIC_LINUX)
    binary = Compiler(GENERIC_LINUX.toolchain).compile(fx.build(), opts)
    det = RaceDetector()
    job = AmpiJob(binary, fx.nvp, method=m, machine=GENERIC_LINUX,
                  layout=JobLayout.single(2), sanitize=det)
    return job.run(), det


# ---------------------------------------------------------------------------
# Family 1: privatization surface
# ---------------------------------------------------------------------------

@_fixture("ana-undeclared-global", {"pv-undeclared-global"},
          RUNTIME_SEGFAULT)
def _undeclared() -> ProgramSource:
    p = Program("ana_undeclared")

    @p.function()
    def main(ctx):
        ctx.g.mystery = ctx.mpi.rank()
        return 0

    return p.build()


@_fixture("ana-const-write", {"pv-const-write"}, RUNTIME_SEGFAULT)
def _const_write() -> ProgramSource:
    p = Program("ana_const_write")
    p.add_global("cfg", 7, const=True)

    @p.function()
    def main(ctx):
        ctx.g.cfg = 8
        return ctx.g.cfg

    return p.build()


@_fixture("ana-write-once-divergent", {"pv-write-once-divergent"},
          RUNTIME_SILENT)
def _write_once_divergent() -> ProgramSource:
    # The defect the runtime CANNOT see: write_once_same tells every
    # detector and method the value is rank-uniform, so a rank-dependent
    # write is silently shared.  Only the analyzer reports it.
    p = Program("ana_once_divergent")
    p.add_global("nr", 0, write_once_same=True)

    @p.function()
    def main(ctx):
        ctx.g.nr = ctx.mpi.rank()
        return ctx.g.nr

    return p.build()


@_fixture("ana-unneeded-privatization", {"pv-unneeded-privatization"},
          RUNTIME_SILENT, analyze_kwargs={"suggest": True})
def _unneeded() -> ProgramSource:
    p = Program("ana_unneeded")
    p.add_global("coef", 314)   # mutable, but never written

    @p.function()
    def main(ctx):
        return ctx.g.coef * 2

    return p.build()


@_fixture("ana-method-insufficient", {"pv-method-insufficient"},
          RUNTIME_RACES, analyze_kwargs={"method": "tlsglobals"},
          run_method="tlsglobals")
def _method_insufficient() -> ProgramSource:
    # tlsglobals only privatizes TLS variables; a plain rank-varying
    # global stays shared under it.
    p = Program("ana_insufficient")
    p.add_global("acc", 0)

    @p.function()
    def main(ctx):
        ctx.g.acc = ctx.mpi.rank()
        ctx.mpi.barrier()
        return ctx.g.acc

    return p.build()


# ---------------------------------------------------------------------------
# Family 2: migration/checkpoint safety
# ---------------------------------------------------------------------------

@_fixture("ana-closure-mutable", {"mig-closure-mutable"}, RUNTIME_SILENT)
def _closure_mutable() -> ProgramSource:
    p = Program("ana_closure")
    cache: list[int] = []   # captured by main: invisible to migration

    @p.function()
    def main(ctx):
        cache.append(ctx.mpi.rank())
        return len(cache)

    return p.build()


@_fixture("ana-module-global-write", {"mig-module-global-write"},
          RUNTIME_SILENT)
def _module_global_write() -> ProgramSource:
    p = Program("ana_module_write")

    @p.function()
    def main(ctx):
        global _MODULE_STATE
        _MODULE_STATE = ctx.vp
        return 0

    return p.build()


@_fixture("ana-ctx-escape", {"mig-ctx-escape"}, RUNTIME_SILENT)
def _ctx_escape() -> ProgramSource:
    p = Program("ana_ctx_escape")

    @p.function()
    def main(ctx):
        return ctx

    return p.build()


# ---------------------------------------------------------------------------
# Family 3: communication shape
# ---------------------------------------------------------------------------

@_fixture("ana-collective-divergent", {"comm-collective-divergent"},
          RUNTIME_DEADLOCK)
def _collective_divergent() -> ProgramSource:
    p = Program("ana_divergent")

    @p.function()
    def main(ctx):
        if ctx.mpi.rank() == 0:
            ctx.mpi.barrier()
        return 0

    return p.build()


@_fixture("ana-recv-deadlock", {"comm-recv-before-send"},
          RUNTIME_DEADLOCK)
def _recv_deadlock() -> ProgramSource:
    p = Program("ana_recv_deadlock")

    @p.function()
    def main(ctx):
        me = ctx.mpi.rank()
        peer = (me + 1) % ctx.mpi.size()
        msg = ctx.mpi.recv(source=peer)
        ctx.mpi.send(me, peer)
        return msg

    return p.build()


@_fixture("ana-tag-mismatch", {"comm-tag-mismatch"}, RUNTIME_DEADLOCK,
          nvp=2)
def _tag_mismatch() -> ProgramSource:
    p = Program("ana_tag_mismatch")

    @p.function()
    def main(ctx):
        me = ctx.mpi.rank()
        if me == 0:
            ctx.mpi.send(42, 1, 3)
        elif me == 1:
            return ctx.mpi.recv(source=0, tag=4)
        return 0

    return p.build()


@_fixture("ana-unwaited-request", {"comm-unwaited-request"},
          RUNTIME_SILENT)
def _unwaited() -> ProgramSource:
    p = Program("ana_unwaited")

    @p.function()
    def main(ctx):
        me = ctx.mpi.rank()
        peer = (me + 1) % ctx.mpi.size()
        req = ctx.mpi.irecv(source=peer)  # noqa: F841 -- seeded: never waited
        ctx.mpi.send(me, peer)
        return 0

    return p.build()


# ---------------------------------------------------------------------------
# Family 4: determinism
# ---------------------------------------------------------------------------

@_fixture("ana-wallclock", {"det-wallclock"}, RUNTIME_SILENT)
def _wallclock() -> ProgramSource:
    p = Program("ana_wallclock")

    @p.function()
    def main(ctx):
        t = time.time()  # repro: allow(det-wallclock) seeded fixture body
        return int(t) * 0

    return p.build()


@_fixture("ana-unseeded-random", {"det-unseeded-random"}, RUNTIME_SILENT)
def _unseeded_random() -> ProgramSource:
    p = Program("ana_random")

    @p.function()
    def main(ctx):
        x = random.random()  # repro: allow(det-unseeded-random) seeded fixture body
        return int(x) * 0

    return p.build()


@_fixture("ana-set-iteration", {"det-set-iteration"}, RUNTIME_SILENT)
def _set_iteration() -> ProgramSource:
    p = Program("ana_set_iter")

    @p.function()
    def main(ctx):
        total = 0
        for x in {1, 2, 3}:  # repro: allow(det-set-iteration) seeded fixture body
            total += x
        return total

    return p.build()


@_fixture("ana-id-key", {"det-id-key"}, RUNTIME_SILENT)
def _id_key() -> ProgramSource:
    p = Program("ana_id_key")

    @p.function()
    def main(ctx):
        table = {}
        table[id(ctx)] = 1  # repro: allow(det-id-key) seeded fixture body
        return len(table)

    return p.build()
