"""Recording and replaying runs against the provenance store.

:func:`record_run` executes a spec and stores its record + event
stream.  :func:`enable_auto_record` hooks the harness chokepoint
(:func:`repro.harness.jobspec.run_spec`) so *every* spec-built run — a
``repro run`` experiment sweep, a ``repro faults`` row, a bench stage —
is recorded as a side effect; this is what ``--provenance`` /
``$REPRO_PROVENANCE`` turn on.

:func:`replay_record` is the determinism audit: re-execute a stored
spec under the current sources and verify the timeline digest (and the
secondary observables — counters, rollbacks, makespan) match what was
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.harness import jobspec as _jobspec
from repro.harness.jobspec import JobSpec, code_version, run_spec_job
from repro.provenance.record import RunRecord
from repro.provenance.store import ProvenanceStore


@dataclass
class RecordedRun:
    record: RunRecord
    result: Any                   #: the JobResult
    cache_hit: bool               #: an identical record already existed


def record_run(spec: JobSpec, store: ProvenanceStore,
               *, events: bool = True, **runtime: Any) -> RecordedRun:
    """Run a spec and persist its provenance; returns the record."""
    job, result = run_spec_job(spec, **runtime)
    record = RunRecord.from_run(spec, job, result)
    _, hit = store.put(record,
                       job.scheduler.timeline if events else None)
    return RecordedRun(record=record, result=result, cache_hit=hit)


# ---------------------------------------------------------------------------
# Automatic recording (the --provenance path)
# ---------------------------------------------------------------------------

def enable_auto_record(
    store: ProvenanceStore,
    *,
    events: bool = True,
    notify: Callable[[str], None] | None = None,
) -> Callable[[], None]:
    """Record every spec-built run into ``store`` until disabled.

    Returns the disable function.  ``notify`` (if given) receives one
    human-readable line per run — ``recorded <id>`` or ``cache hit
    <id>`` — which the CLI forwards to stderr.
    """

    def hook(spec: JobSpec, job: Any, result: Any) -> None:
        record = RunRecord.from_run(spec, job, result)
        _, hit = store.put(record,
                           job.scheduler.timeline if events else None)
        if notify is not None:
            verb = "cache hit" if hit else "recorded"
            notify(f"provenance: {verb} {record.run_id[:12]} "
                   f"({spec.app}, nvp={spec.nvp}, {spec.method})")

    _jobspec.add_result_hook(hook)

    def disable() -> None:
        _jobspec.remove_result_hook(hook)

    return disable


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

@dataclass
class ReplayReport:
    """Outcome of re-executing a stored record under current sources."""

    run_id: str
    expected_sha: str
    actual_sha: str
    expected_events: int
    actual_events: int
    makespan_match: bool
    counters_match: bool
    rollbacks_match: bool
    #: an unrecoverable record must replay to the *same* structured
    #: classification (deterministic unrecoverability)
    reason_match: bool = True
    #: counters whose totals changed: name -> (recorded, replayed)
    counter_drift: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: the record was produced by different sources than are running now
    code_version_changed: bool = False
    #: the fresh record of the replay execution
    replayed: RunRecord | None = None

    @property
    def ok(self) -> bool:
        """Byte-identical timeline — the replay contract."""
        return self.expected_sha == self.actual_sha

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "ok": self.ok,
            "expected_sha256": self.expected_sha,
            "actual_sha256": self.actual_sha,
            "expected_events": self.expected_events,
            "actual_events": self.actual_events,
            "makespan_match": self.makespan_match,
            "counters_match": self.counters_match,
            "rollbacks_match": self.rollbacks_match,
            "reason_match": self.reason_match,
            "counter_drift": {k: list(v)
                              for k, v in sorted(self.counter_drift.items())},
            "code_version_changed": self.code_version_changed,
        }


def replay_record(record: RunRecord, *, store: ProvenanceStore | None = None,
                  **runtime: Any) -> ReplayReport:
    """Re-execute a stored record's spec and audit the outcome.

    When ``store`` is given the replay's own record is written back
    (append-only: a replay under unchanged sources is a cache hit; a
    replay under changed sources creates the new code version's record).
    """
    # Never strict: a recorded unrecoverable run replays to a structured
    # result whose classification is compared, not to an exception.
    runtime.setdefault("strict", False)
    job, result = run_spec_job(record.spec, **runtime)
    fresh = RunRecord.from_run(record.spec, job, result)
    if store is not None:
        store.put(fresh, job.scheduler.timeline)
    drift = {
        name: (record.counters.get(name, 0), fresh.counters.get(name, 0))
        for name in sorted(set(record.counters) | set(fresh.counters))
        if record.counters.get(name, 0) != fresh.counters.get(name, 0)
    }
    return ReplayReport(
        run_id=record.run_id,
        expected_sha=record.timeline_sha256,
        actual_sha=fresh.timeline_sha256,
        expected_events=record.events,
        actual_events=fresh.events,
        makespan_match=record.makespan_ns == fresh.makespan_ns,
        counters_match=not drift,
        rollbacks_match=record.rollbacks == fresh.rollbacks,
        reason_match=(record.unrecoverable_reason
                      == fresh.unrecoverable_reason),
        counter_drift=drift,
        code_version_changed=record.code_version != code_version(),
        replayed=fresh,
    )
