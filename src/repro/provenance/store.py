"""The append-only, content-addressed run store.

On-disk layout (everything under one root, default ``.repro/store`` or
``$REPRO_PROVENANCE``)::

    <root>/records/<id[:2]>/<id>.json         # RunRecord (plain JSON)
    <root>/records/<id[:2]>/<id>.timeline.zz  # zlib'd canonical event stream

Records are keyed by ``run_id`` (spec digest + code version, see
:mod:`repro.provenance.record`).  Writes are atomic (tmp file + rename)
and never overwrite: putting a record whose id already exists is a
*cache hit* — the store reports it and leaves the original untouched,
which keeps ``created_at`` honest and makes the store safe to share
between concurrent runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError
from repro.provenance.record import RunRecord
from repro.trace.stream import compress_timeline, decompress_timeline

#: default store location relative to the working directory
DEFAULT_STORE_DIR = ".repro/store"

#: environment variable overriding the default store location
STORE_ENV = "REPRO_PROVENANCE"


def default_store_dir() -> str:
    return os.environ.get(STORE_ENV) or DEFAULT_STORE_DIR


class ProvenanceStore:
    """Append-only content-addressed store of :class:`RunRecord`."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else Path(default_store_dir())

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    # -- paths --------------------------------------------------------------

    def _record_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.json"

    def _timeline_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.timeline.zz"

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # -- writing ------------------------------------------------------------

    def put(self, record: RunRecord,
            timeline: Iterable[tuple[int, int, int]] | None = None,
            ) -> tuple[str, bool]:
        """Store a record (and optionally its event stream).

        Returns ``(run_id, cache_hit)``; a cache hit means a record with
        this id (same spec, same code version) already exists and
        nothing was written.
        """
        path = self._record_path(record.run_id)
        if path.exists():
            return record.run_id, True
        if timeline is not None:
            self._atomic_write(self._timeline_path(record.run_id),
                               compress_timeline(timeline))
        self._atomic_write(
            path,
            (json.dumps(record.to_dict(), sort_keys=True, indent=1)
             + "\n").encode(),
        )
        return record.run_id, False

    # -- reading ------------------------------------------------------------

    def ids(self) -> list[str]:
        """All record ids, sorted."""
        if not self.records_dir.is_dir():
            return []
        return sorted(p.stem for p in self.records_dir.glob("*/*.json"))

    def resolve(self, id_or_prefix: str) -> str:
        """Resolve a (possibly abbreviated) record id."""
        if len(id_or_prefix) >= 4:
            exact = self._record_path(id_or_prefix)
            if exact.exists():
                return id_or_prefix
        matches = [i for i in self.ids() if i.startswith(id_or_prefix)]
        if not matches:
            raise ReproError(
                f"no record matching {id_or_prefix!r} in {self.root}")
        if len(matches) > 1:
            raise ReproError(
                f"ambiguous id {id_or_prefix!r}: "
                f"{', '.join(m[:12] for m in matches[:5])}...")
        return matches[0]

    def get(self, id_or_prefix: str) -> RunRecord:
        run_id = self.resolve(id_or_prefix)
        data = json.loads(self._record_path(run_id).read_text())
        return RunRecord.from_dict(data)

    def load_timeline(self, record: RunRecord
                      ) -> list[tuple[int, int, int]] | None:
        """The stored event stream, or None when it was not recorded."""
        path = self._timeline_path(record.run_id)
        if not path.exists():
            return None
        return decompress_timeline(path.read_bytes())

    def records(self) -> list[RunRecord]:
        return [self.get(i) for i in self.ids()]

    def size_bytes(self) -> int:
        if not self.records_dir.is_dir():
            return 0
        return sum(p.stat().st_size
                   for p in self.records_dir.glob("*/*") if p.is_file())

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, run_id: str) -> bool:
        return self._record_path(run_id).exists()

    # -- garbage collection -------------------------------------------------

    def delete(self, run_id: str) -> int:
        """Remove one record + its event stream; returns bytes freed."""
        freed = 0
        for path in (self._record_path(run_id),
                     self._timeline_path(run_id)):
            if path.exists():
                freed += path.stat().st_size
                path.unlink()
        return freed

    def gc(self, *, keep: frozenset[str] | set[str] = frozenset(),
           max_age_s: float | None = None,
           max_bytes: int | None = None,
           now: float | None = None,
           dry_run: bool = False) -> "GcReport":
        """Collect garbage under an age and/or size budget.

        ``keep`` holds *spec digests* that must survive regardless of
        budget (the pinned corpus).  Eviction order is oldest-first by
        ``created_at``.
        """
        now = time.time() if now is None else now
        entries = []   # (created_at, run_id, spec_digest, bytes)
        for run_id in self.ids():
            rec_path = self._record_path(run_id)
            tl_path = self._timeline_path(run_id)
            data = json.loads(rec_path.read_text())
            nbytes = rec_path.stat().st_size
            if tl_path.exists():
                nbytes += tl_path.stat().st_size
            entries.append((data.get("created_at", 0.0), run_id,
                            data.get("spec_digest", ""), nbytes))
        entries.sort()

        doomed: list[str] = []
        protected = 0
        if max_age_s is not None:
            for created, run_id, digest, _ in entries:
                if now - created > max_age_s:
                    if digest in keep:
                        protected += 1
                    else:
                        doomed.append(run_id)
        if max_bytes is not None:
            doomed_set = set(doomed)
            total = sum(nb for _, run_id, _, nb in entries
                        if run_id not in doomed_set)
            for created, run_id, digest, nb in entries:
                if total <= max_bytes:
                    break
                if run_id in doomed_set:
                    continue
                if digest in keep:
                    protected += 1
                    continue
                doomed.append(run_id)
                doomed_set.add(run_id)
                total -= nb
        freed = 0
        if not dry_run:
            for run_id in doomed:
                freed += self.delete(run_id)
        return GcReport(scanned=len(entries), deleted=len(doomed),
                        protected=protected, freed_bytes=freed,
                        remaining=len(entries) - len(doomed),
                        deleted_ids=tuple(doomed), dry_run=dry_run)


@dataclass(frozen=True)
class GcReport:
    scanned: int
    deleted: int
    protected: int         #: records spared only because they are pinned
    freed_bytes: int
    remaining: int
    deleted_ids: tuple[str, ...]
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {"scanned": self.scanned, "deleted": self.deleted,
                "protected": self.protected,
                "freed_bytes": self.freed_bytes,
                "remaining": self.remaining,
                "deleted_ids": list(self.deleted_ids),
                "dry_run": self.dry_run}
