"""The append-only, content-addressed run store.

On-disk layout (everything under one root, default ``.repro/store`` or
``$REPRO_PROVENANCE``)::

    <root>/records/<id[:2]>/<id>.json         # RunRecord (plain JSON)
    <root>/records/<id[:2]>/<id>.timeline.zz  # zlib'd canonical event stream

Records are keyed by ``run_id`` (spec digest + code version, see
:mod:`repro.provenance.record`).  Writes are atomic (tmp file + rename)
and never overwrite: putting a record whose id already exists is a
*cache hit* — the store reports it and leaves the original untouched,
which keeps ``created_at`` honest and makes the store safe to share
between concurrent runs.

Concurrency contract: any number of processes may ``put``, ``get`` and
``gc`` the same root simultaneously (the ``repro serve`` worker pool
does exactly that).  Every cross-process race therefore degrades, never
raises: ``gc`` skips records that vanish or are half-written between
its listing and its read (counted in :attr:`GcReport.skipped`),
``delete`` tolerates a concurrent delete of the same record, and
crash-leftover ``*.tmp<pid>`` files are swept by ``gc`` once their
writing process is gone.

Usage recency: a cache-hit ``put`` or a ``get`` records a *last used*
touch in a zero-byte ``<id>.touch`` sidecar (its mtime is the
timestamp), and age/size eviction orders by ``max(created_at,
last_used)`` — so a record that is hit a thousand times a day never
ages out, while ``created_at`` in the record JSON stays the honest
creation time for provenance.

Execution leases: ``<id>.lease`` sidecars give several *servers*
mounting one root a crash-safe cross-server single-flight protocol —
see :meth:`ProvenanceStore.acquire_lease` and :class:`RunLease`.  A
lease is an atomically created file whose mtime is the owner's
heartbeat; an expired heartbeat (or a provably dead same-host owner
pid) means the owner crashed mid-execution and the next acquirer takes
over and re-executes.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError
from repro.provenance.record import RunRecord
from repro.trace.stream import compress_timeline, decompress_timeline

#: age (seconds) past which a tmp file whose pid cannot be parsed or
#: liveness-checked is considered a crash leftover
TMP_GRACE_S = 3600.0

#: default execution-lease time-to-live: a lease whose heartbeat
#: (mtime) is older than this is considered abandoned and may be
#: taken over by another server
LEASE_TTL_S = 30.0

#: process-local uniquifier so two leases acquired by one process are
#: still distinguishable tokens
_lease_seq = itertools.count()

#: default store location relative to the working directory
DEFAULT_STORE_DIR = ".repro/store"

#: environment variable overriding the default store location
STORE_ENV = "REPRO_PROVENANCE"


def default_store_dir() -> str:
    return os.environ.get(STORE_ENV) or DEFAULT_STORE_DIR


class ProvenanceStore:
    """Append-only content-addressed store of :class:`RunRecord`."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else Path(default_store_dir())

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    # -- paths --------------------------------------------------------------

    def _record_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.json"

    def _timeline_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.timeline.zz"

    def _touch_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.touch"

    def _lease_path(self, run_id: str) -> Path:
        return self.records_dir / run_id[:2] / f"{run_id}.lease"

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # -- writing ------------------------------------------------------------

    def put(self, record: RunRecord,
            timeline: Iterable[tuple[int, int, int]] | None = None,
            *, compressed_timeline: bytes | None = None,
            ) -> tuple[str, bool]:
        """Store a record (and optionally its event stream).

        Returns ``(run_id, cache_hit)``; a cache hit means a record with
        this id (same spec, same code version) already exists and
        nothing was written — the hit refreshes the record's last-used
        time instead.  ``compressed_timeline`` accepts an already
        zlib-compressed stream (the serve workers compress in-process
        before shipping results over the queue).
        """
        path = self._record_path(record.run_id)
        if path.exists():
            self.touch(record.run_id)
            return record.run_id, True
        if compressed_timeline is None and timeline is not None:
            compressed_timeline = compress_timeline(timeline)
        if compressed_timeline is not None:
            self._atomic_write(self._timeline_path(record.run_id),
                               compressed_timeline)
        self._atomic_write(
            path,
            (json.dumps(record.to_dict(), sort_keys=True, indent=1)
             + "\n").encode(),
        )
        return record.run_id, False

    # -- usage recency ------------------------------------------------------

    def touch(self, run_id: str) -> None:
        """Record that ``run_id`` was just used (cache hit / retrieval).

        Best-effort: a concurrent ``gc`` may have deleted the record (or
        its whole shard directory) between our caller's check and now —
        losing one touch is harmless, so never raise.
        """
        try:
            self._touch_path(run_id).touch()
        except OSError:
            pass

    def last_used(self, run_id: str) -> float | None:
        """Epoch seconds of the most recent touch, or None if never
        touched since creation."""
        try:
            return self._touch_path(run_id).stat().st_mtime  # repro: allow(det-wallclock) host mtimes drive cache eviction recency only
        except OSError:
            return None

    # -- execution leases ---------------------------------------------------
    #
    # Cross-*server* single-flight: several servers mounting one store
    # root coalesce identical in-flight submissions through an atomic
    # ``<run_id>.lease`` file.  The owner heartbeats by refreshing the
    # file's mtime; a lease whose heartbeat is stale (owner crashed,
    # was SIGKILLed, or lost power) is taken over by the next acquirer,
    # which re-executes the job — no execution is ever duplicated while
    # its owner is alive, and no job is lost when its owner dies.

    def acquire_lease(self, run_id: str, *, ttl_s: float = LEASE_TTL_S,
                      now: float | None = None) -> "RunLease | None":
        """Try to claim the exclusive right to execute ``run_id``.

        Returns a :class:`RunLease` on success (``lease.takeover`` is
        True when a stale lease from a dead owner was broken), or None
        while another live owner holds the claim.  Acquisition is
        atomic (``O_CREAT | O_EXCL``); takeover is unlink-then-create,
        so of two simultaneous takers exactly one wins.
        """
        now = time.time() if now is None else now  # repro: allow(det-wallclock) lease heartbeats are host mtimes by design
        path = self._lease_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        token = f"{socket.gethostname()}:{os.getpid()}:{next(_lease_seq)}"
        payload = json.dumps({"host": socket.gethostname(),
                              "pid": os.getpid(), "token": token,
                              "acquired_at": now}).encode()
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                             0o644)
            except FileExistsError:
                if attempt or not self._lease_is_stale(path, ttl_s, now):
                    return None
                # Stale: break it and race the O_EXCL create once.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "wb") as f:
                f.write(payload)
            return RunLease(self, run_id, token, ttl_s=ttl_s,
                            takeover=bool(attempt))
        return None

    def _lease_is_stale(self, path: Path, ttl_s: float,
                        now: float) -> bool:
        """Dead-owner detection: heartbeat older than the TTL, or a
        same-host owner pid that provably no longer exists."""
        try:
            mtime = path.stat().st_mtime  # repro: allow(det-wallclock) lease heartbeats are host-side liveness, not simulation state
        except OSError:
            return False        # vanished: owner released it
        if now - mtime > ttl_s:
            return True
        holder = self.lease_holder(path.name[:-len(".lease")])
        if (holder and holder.get("host") == socket.gethostname()
                and isinstance(holder.get("pid"), int)):
            try:
                os.kill(holder["pid"], 0)
            except ProcessLookupError:
                return True     # owner died without releasing
            except (PermissionError, OSError):
                pass
        return False

    def lease_holder(self, run_id: str) -> dict | None:
        """The current lease payload for ``run_id``, or None (no lease,
        or a half-written one — judged only by its heartbeat then)."""
        try:
            data = json.loads(self._lease_path(run_id).read_bytes())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return data if isinstance(data, dict) else None

    # -- reading ------------------------------------------------------------

    def ids(self) -> list[str]:
        """All record ids, sorted.  In-flight/stale ``*.tmp<pid>`` files
        and ``*.touch`` sidecars are never listed."""
        if not self.records_dir.is_dir():
            return []
        return sorted(p.stem for p in self.records_dir.glob("*/*.json")
                      if ".tmp" not in p.name)

    def resolve(self, id_or_prefix: str) -> str:
        """Resolve a (possibly abbreviated) record id."""
        if len(id_or_prefix) >= 4:
            exact = self._record_path(id_or_prefix)
            if exact.exists():
                return id_or_prefix
        matches = [i for i in self.ids() if i.startswith(id_or_prefix)]
        if not matches:
            raise ReproError(
                f"no record matching {id_or_prefix!r} in {self.root}")
        if len(matches) > 1:
            raise ReproError(
                f"ambiguous id {id_or_prefix!r}: "
                f"{', '.join(m[:12] for m in matches[:5])}...")
        return matches[0]

    def get(self, id_or_prefix: str, *, touch: bool = True) -> RunRecord:
        """Retrieve one record.  Retrieval counts as *use* (it refreshes
        the record's eviction age) unless ``touch=False`` — bulk listing
        (:meth:`records`) does not mark every record used."""
        run_id = self.resolve(id_or_prefix)
        data = json.loads(self._record_path(run_id).read_text())
        if touch:
            self.touch(run_id)
        return RunRecord.from_dict(data)

    def load_timeline(self, record: RunRecord
                      ) -> list[tuple[int, int, int]] | None:
        """The stored event stream, or None when it was not recorded."""
        path = self._timeline_path(record.run_id)
        if not path.exists():
            return None
        return decompress_timeline(path.read_bytes())

    def records(self) -> list[RunRecord]:
        return [self.get(i, touch=False) for i in self.ids()]

    def size_bytes(self) -> int:
        if not self.records_dir.is_dir():
            return 0
        return sum(p.stat().st_size
                   for p in self.records_dir.glob("*/*") if p.is_file())

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, run_id: str) -> bool:
        return self._record_path(run_id).exists()

    # -- garbage collection -------------------------------------------------

    def delete(self, run_id: str) -> int:
        """Remove one record + its sidecars; returns bytes freed.

        Safe against a concurrent delete of the same record: a path that
        vanishes between the stat and the unlink simply counts as
        already freed by the other process.
        """
        freed = 0
        for path in (self._record_path(run_id),
                     self._timeline_path(run_id),
                     self._touch_path(run_id),
                     self._lease_path(run_id)):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            freed += size
        return freed

    # -- stale tmp files ----------------------------------------------------

    @staticmethod
    def _tmp_is_stale(path: Path, now: float) -> bool:
        """A ``*.tmp<pid>`` file is stale once its writer is provably
        gone (the pid no longer exists) or, when the pid cannot be
        judged (unparseable, recycled, or another user's), once it is
        older than :data:`TMP_GRACE_S` — an in-flight atomic write lives
        milliseconds, not hours."""
        _, _, pid_s = path.name.rpartition(".tmp")
        try:
            pid = int(pid_s)
        except ValueError:
            pid = None
        if pid is not None:
            if pid == os.getpid():
                return False            # our own in-flight write
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True             # writer died mid-replace
            except PermissionError:
                pass                    # alive, other user
        try:
            return now - path.stat().st_mtime > TMP_GRACE_S  # repro: allow(det-wallclock) host mtimes drive cache eviction recency only
        except OSError:
            return False                # vanished: writer completed

    def sweep_tmp(self, *, now: float | None = None,
                  dry_run: bool = False) -> tuple[int, int]:
        """Delete crash-leftover tmp files; returns (count, bytes)."""
        if not self.records_dir.is_dir():
            return 0, 0
        now = time.time() if now is None else now  # repro: allow(det-wallclock) host mtimes drive cache eviction recency only
        swept = nbytes = 0
        for path in self.records_dir.glob("*/*.tmp*"):
            if not self._tmp_is_stale(path, now):
                continue
            try:
                size = path.stat().st_size
                if not dry_run:
                    path.unlink()
            except OSError:
                continue
            swept += 1
            nbytes += size
        return swept, nbytes

    def gc(self, *, keep: frozenset[str] | set[str] = frozenset(),
           max_age_s: float | None = None,
           max_bytes: int | None = None,
           now: float | None = None,
           dry_run: bool = False) -> "GcReport":
        """Collect garbage under an age and/or size budget.

        ``keep`` holds *spec digests* that must survive regardless of
        budget (the pinned corpus).  Eviction order is least-recently
        *used* first — ``max(created_at, last_used)`` — so cache hits
        keep a record young without touching ``created_at``.

        Safe to run while other processes put/get/gc the same store: a
        record that vanishes or is half-visible between the listing and
        its read is skipped (and counted), never a crash.  Stale tmp
        files from crashed writers are swept as a side effect.
        """
        now = time.time() if now is None else now  # repro: allow(det-wallclock) host mtimes drive cache eviction recency only
        entries = []   # (last_used, run_id, spec_digest, bytes)
        skipped = 0
        for run_id in self.ids():
            rec_path = self._record_path(run_id)
            tl_path = self._timeline_path(run_id)
            try:
                data = json.loads(rec_path.read_text())
                nbytes = rec_path.stat().st_size
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                # Deleted by a concurrent gc, or listed mid-write by a
                # non-atomic producer: not ours to judge this cycle.
                skipped += 1
                continue
            try:
                nbytes += tl_path.stat().st_size
            except OSError:
                pass
            created = data.get("created_at", 0.0)
            touched = self.last_used(run_id)
            last = created if touched is None else max(created, touched)
            entries.append((last, run_id, data.get("spec_digest", ""),
                            nbytes))
        entries.sort()

        doomed: list[str] = []
        protected = 0
        if max_age_s is not None:
            for last, run_id, digest, _ in entries:
                if now - last > max_age_s:
                    if digest in keep:
                        protected += 1
                    else:
                        doomed.append(run_id)
        if max_bytes is not None:
            doomed_set = set(doomed)
            total = sum(nb for _, run_id, _, nb in entries
                        if run_id not in doomed_set)
            for last, run_id, digest, nb in entries:
                if total <= max_bytes:
                    break
                if run_id in doomed_set:
                    continue
                if digest in keep:
                    protected += 1
                    continue
                doomed.append(run_id)
                doomed_set.add(run_id)
                total -= nb
        freed = 0
        if not dry_run:
            for run_id in doomed:
                freed += self.delete(run_id)
        swept_tmp, tmp_bytes = self.sweep_tmp(now=now, dry_run=dry_run)
        return GcReport(scanned=len(entries), deleted=len(doomed),
                        protected=protected,
                        freed_bytes=freed + (0 if dry_run else tmp_bytes),
                        remaining=len(entries) - len(doomed),
                        deleted_ids=tuple(doomed), dry_run=dry_run,
                        skipped=skipped, swept_tmp=swept_tmp)


class RunLease:
    """An exclusive, crash-expiring claim on one run_id's execution.

    Held by the server that is executing the job.  :meth:`renew`
    refreshes the heartbeat (the lease file's mtime) and must be called
    at least every ``ttl_s`` seconds while the execution runs;
    :meth:`release` drops the claim when the result has been filed.
    Both verify the on-disk token first, so a lease that was broken by
    a takeover (we were presumed dead) is never renewed or released on
    the usurper's behalf.
    """

    def __init__(self, store: ProvenanceStore, run_id: str, token: str,
                 *, ttl_s: float = LEASE_TTL_S, takeover: bool = False):
        self.store = store
        self.run_id = run_id
        self.token = token
        self.ttl_s = ttl_s
        #: True when acquisition broke a dead owner's stale lease
        self.takeover = takeover

    def _owned(self) -> bool:
        holder = self.store.lease_holder(self.run_id)
        return bool(holder) and holder.get("token") == self.token

    def renew(self) -> bool:
        """Refresh the heartbeat; False if the lease was lost."""
        if not self._owned():
            return False
        try:
            os.utime(self.store._lease_path(self.run_id))
            return True
        except OSError:
            return False

    def release(self) -> None:
        """Drop the claim (no-op if a takeover already broke it)."""
        if not self._owned():
            return
        try:
            self.store._lease_path(self.run_id).unlink()
        except OSError:
            pass

    def __enter__(self) -> "RunLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


@dataclass(frozen=True)
class GcReport:
    scanned: int
    deleted: int
    protected: int         #: records spared only because they are pinned
    freed_bytes: int
    remaining: int
    deleted_ids: tuple[str, ...]
    dry_run: bool = False
    #: records that vanished / were unreadable mid-scan (concurrent
    #: writer or gc) — skipped this cycle, not an error
    skipped: int = 0
    #: crash-leftover ``*.tmp<pid>`` files swept
    swept_tmp: int = 0

    def to_dict(self) -> dict:
        return {"scanned": self.scanned, "deleted": self.deleted,
                "protected": self.protected,
                "freed_bytes": self.freed_bytes,
                "remaining": self.remaining,
                "deleted_ids": list(self.deleted_ids),
                "dry_run": self.dry_run,
                "skipped": self.skipped,
                "swept_tmp": self.swept_tmp}
