"""Provenance: content-addressed run records, replay, diff, and metrics.

Every simulated run can be captured as a :class:`RunRecord` — the full
job spec plus every observable the runtime produces (timeline digest,
counter totals, per-PE stats, rollbacks) — and filed in an append-only
:class:`ProvenanceStore` keyed by ``sha256(spec, code version)``.  On
top of the store sit the forensics tools: :func:`replay_record`
(re-execute and verify byte-identical timelines),
:func:`diff_records` (first-divergent-event localization between two
runs), :class:`RunMetrics` (Projections-style per-PE reports), and the
pinned-scenario regression gate in :mod:`repro.provenance.pin`.
"""

from repro.provenance.diff import (
    DiffReport,
    Divergence,
    diff_records,
    first_divergence,
    spec_diff,
)
from repro.provenance.metrics import PeMetrics, RunMetrics, compare_metrics
from repro.provenance.pin import (
    DEFAULT_MANIFEST,
    PinEntry,
    PinResult,
    load_manifest,
    pinned_spec_digests,
    repin,
    save_manifest,
    verify_manifest,
    verify_pin,
)
from repro.provenance.record import RunRecord, run_id_for
from repro.provenance.runner import (
    RecordedRun,
    ReplayReport,
    enable_auto_record,
    record_run,
    replay_record,
)
from repro.provenance.store import (
    DEFAULT_STORE_DIR,
    LEASE_TTL_S,
    STORE_ENV,
    GcReport,
    ProvenanceStore,
    RunLease,
    default_store_dir,
)

__all__ = [
    "DEFAULT_MANIFEST",
    "DEFAULT_STORE_DIR",
    "LEASE_TTL_S",
    "STORE_ENV",
    "DiffReport",
    "Divergence",
    "GcReport",
    "PeMetrics",
    "PinEntry",
    "PinResult",
    "ProvenanceStore",
    "RecordedRun",
    "ReplayReport",
    "RunLease",
    "RunMetrics",
    "RunRecord",
    "compare_metrics",
    "default_store_dir",
    "diff_records",
    "enable_auto_record",
    "first_divergence",
    "load_manifest",
    "pinned_spec_digests",
    "record_run",
    "repin",
    "replay_record",
    "run_id_for",
    "save_manifest",
    "spec_diff",
    "verify_manifest",
    "verify_pin",
]
