"""Run records: the durable provenance of one simulated run.

A :class:`RunRecord` is the PROBE-style answer to "what exactly ran?":
the full :class:`~repro.harness.jobspec.JobSpec` (inputs), the code
digest (which sources produced it), and the observed outputs — timeline
SHA, counter totals, per-PE utilization, rollback counts, makespan.
Records are plain JSON; the (compressed) scheduler event stream rides
alongside in the store so ``repro diff`` can bisect without re-running.

Identity: ``record_id = sha256(spec_canonical + "\\n" + code_version)``.
Two runs of the same spec under the same sources are the *same* record
(the store surfaces that as a cache hit); the same spec under changed
sources is a new record, so history stays attributable per commit.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

from repro.ampi.runtime import AmpiJob, JobResult
from repro.harness.jobspec import JobSpec, code_version
from repro.trace.stream import timeline_sha


def run_id_for(spec: JobSpec, code_ver: str) -> str:
    """The content address of a (spec, code version) pair."""
    data = spec.canonical() + "\n" + code_ver
    return hashlib.sha256(data.encode()).hexdigest()


@dataclass
class RunRecord:
    """One run's provenance (JSON-able; event stream stored separately)."""

    spec: JobSpec
    run_id: str
    spec_digest: str
    code_version: str
    timeline_sha256: str
    events: int                   #: scheduler quanta in the event stream
    makespan_ns: int
    startup_ns: int
    counters: dict[str, int]
    pe_stats: list[dict[str, Any]]
    rollbacks: dict[int, int]
    recoveries: int
    #: structured unrecoverability classification (None: run completed);
    #: a deterministic failure is provenance like any other run, and
    #: replay must reproduce the same classification
    unrecoverable_reason: str | None
    migrations: int
    lb_moves: int
    exit_values: dict[int, Any]
    #: wall-clock creation time (epoch seconds) — used only by ``repro
    #: gc --max-age``; never part of any digest
    created_at: float = field(default_factory=time.time)

    @property
    def app_ns(self) -> int:
        return max(0, self.makespan_ns - self.startup_ns)

    @classmethod
    def from_run(cls, spec: JobSpec, job: AmpiJob,
                 result: JobResult) -> "RunRecord":
        """Capture a finished run.  The job's scheduler timeline must
        still be live (it always is right after ``run()``)."""

        def _jsonable(v: Any) -> Any:
            if isinstance(v, (int, float, str, bool)) or v is None:
                return v
            return repr(v)

        code_ver = code_version()
        return cls(
            spec=spec,
            run_id=run_id_for(spec, code_ver),
            spec_digest=spec.digest(),
            code_version=code_ver,
            timeline_sha256=timeline_sha(job.scheduler.timeline),
            events=len(job.scheduler.timeline),
            makespan_ns=result.makespan_ns,
            startup_ns=result.startup_ns,
            counters=dict(sorted(result.counters.snapshot().items())),
            pe_stats=[
                {"pe": p.index, "busy_ns": p.busy_ns, "idle_ns": p.idle_ns,
                 "ctx_switches": p.ctx_switches,
                 "final_ranks": list(p.final_ranks)}
                for p in result.pe_stats
            ],
            rollbacks=dict(sorted(result.rollbacks.items())),
            recoveries=result.recoveries,
            unrecoverable_reason=result.unrecoverable_reason,
            migrations=sum(1 for m in result.migrations
                           if m.src_pe != m.dst_pe),
            lb_moves=sum(r.moves for r in result.lb_reports),
            exit_values={vp: _jsonable(v)
                         for vp, v in sorted(result.exit_values.items())},
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec_digest,
            "code_version": self.code_version,
            "timeline_sha256": self.timeline_sha256,
            "events": self.events,
            "makespan_ns": self.makespan_ns,
            "startup_ns": self.startup_ns,
            "counters": dict(sorted(self.counters.items())),
            "pe_stats": list(self.pe_stats),
            "rollbacks": {str(vp): n
                          for vp, n in sorted(self.rollbacks.items())},
            "recoveries": self.recoveries,
            "unrecoverable_reason": self.unrecoverable_reason,
            "migrations": self.migrations,
            "lb_moves": self.lb_moves,
            "exit_values": {str(vp): v
                            for vp, v in sorted(self.exit_values.items())},
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunRecord":
        return cls(
            spec=JobSpec.from_dict(d["spec"]),
            run_id=d["run_id"],
            spec_digest=d["spec_digest"],
            code_version=d["code_version"],
            timeline_sha256=d["timeline_sha256"],
            events=d["events"],
            makespan_ns=d["makespan_ns"],
            startup_ns=d["startup_ns"],
            counters=dict(d.get("counters", {})),
            pe_stats=list(d.get("pe_stats", [])),
            rollbacks={int(vp): n
                       for vp, n in d.get("rollbacks", {}).items()},
            recoveries=d.get("recoveries", 0),
            unrecoverable_reason=d.get("unrecoverable_reason"),
            migrations=d.get("migrations", 0),
            lb_moves=d.get("lb_moves", 0),
            exit_values={int(vp): v
                         for vp, v in d.get("exit_values", {}).items()},
            created_at=d.get("created_at", 0.0),
        )

    def summary(self) -> str:
        return (f"{self.run_id[:12]} {self.spec.app} nvp={self.spec.nvp} "
                f"method={self.spec.method} machine={self.spec.machine} "
                f"transport={self.spec.transport} "
                f"recovery={self.spec.recovery} "
                f"events={self.events} makespan={self.makespan_ns} ns "
                f"timeline={self.timeline_sha256[:12]}"
                + (f" UNRECOVERABLE({self.unrecoverable_reason})"
                   if self.unrecoverable_reason else ""))
