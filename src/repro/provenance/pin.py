"""The pinned-scenario corpus: a committed timeline-regression gate.

A pin manifest is a JSON file (committed to the repo, default
``benchmarks/pinned_scenarios.json``) mapping scenario names to a full
:class:`~repro.harness.jobspec.JobSpec` plus the expected observables —
timeline SHA-256, event count, makespan, and every counter total.
``repro pin run`` re-executes each spec under the current sources and
fails on *any* drift, so a PR that silently changes the timeline of a
pinned scenario turns CI red instead of shipping a behaviour change
nobody asked for.  Intentional changes are re-pinned explicitly with
``repro pin update`` and reviewed as a manifest diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.harness.jobspec import JobSpec, code_version, run_spec_job
from repro.provenance.record import RunRecord
from repro.trace.stream import timeline_sha

#: default manifest location (committed; CI runs it)
DEFAULT_MANIFEST = "benchmarks/pinned_scenarios.json"

MANIFEST_VERSION = 1


@dataclass
class PinEntry:
    """One pinned scenario: spec + expected observables."""

    name: str
    spec: JobSpec
    timeline_sha256: str
    events: int
    makespan_ns: int
    counters: dict[str, int]
    #: sources that produced the pinned values (informational)
    code_version: str = ""

    @classmethod
    def from_record(cls, name: str, record: RunRecord) -> "PinEntry":
        return cls(
            name=name,
            spec=record.spec,
            timeline_sha256=record.timeline_sha256,
            events=record.events,
            makespan_ns=record.makespan_ns,
            counters=dict(sorted(record.counters.items())),
            code_version=record.code_version,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "timeline_sha256": self.timeline_sha256,
            "events": self.events,
            "makespan_ns": self.makespan_ns,
            "counters": dict(sorted(self.counters.items())),
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, name: str, d: dict[str, Any]) -> "PinEntry":
        return cls(
            name=name,
            spec=JobSpec.from_dict(d["spec"]),
            timeline_sha256=d["timeline_sha256"],
            events=d["events"],
            makespan_ns=d["makespan_ns"],
            counters=dict(d.get("counters", {})),
            code_version=d.get("code_version", ""),
        )


@dataclass
class PinResult:
    """Verification outcome for one pinned scenario."""

    name: str
    sha_ok: bool
    counters_ok: bool
    makespan_ok: bool
    expected_sha: str
    actual_sha: str
    expected_makespan: int
    actual_makespan: int
    #: name -> (pinned, measured) for drifted counters
    counter_drift: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: the fresh record, for re-pinning on intentional change
    record: RunRecord | None = None

    @property
    def ok(self) -> bool:
        return self.sha_ok and self.counters_ok and self.makespan_ok

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "sha_ok": self.sha_ok,
            "counters_ok": self.counters_ok,
            "makespan_ok": self.makespan_ok,
            "expected_sha256": self.expected_sha,
            "actual_sha256": self.actual_sha,
            "expected_makespan_ns": self.expected_makespan,
            "actual_makespan_ns": self.actual_makespan,
            "counter_drift": {k: list(v) for k, v in
                              sorted(self.counter_drift.items())},
        }

    def format(self) -> str:
        if self.ok:
            return (f"ok   {self.name}: timeline {self.actual_sha[:12]} "
                    f"({self.actual_makespan} ns)")
        parts = []
        if not self.sha_ok:
            parts.append(f"timeline {self.expected_sha[:12]} -> "
                         f"{self.actual_sha[:12]}")
        if not self.makespan_ok:
            parts.append(f"makespan {self.expected_makespan} -> "
                         f"{self.actual_makespan} ns")
        if self.counter_drift:
            drift = ", ".join(
                f"{k} {a}->{b}"
                for k, (a, b) in sorted(self.counter_drift.items())[:6])
            parts.append(f"counters: {drift}")
        return f"DRIFT {self.name}: " + "; ".join(parts)


# ---------------------------------------------------------------------------
# Manifest I/O
# ---------------------------------------------------------------------------

def load_manifest(path: str | Path) -> dict[str, PinEntry]:
    path = Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise ReproError(
            f"unsupported pin manifest version {version!r} in {path}")
    return {
        name: PinEntry.from_dict(name, entry)
        for name, entry in sorted(data.get("scenarios", {}).items())
    }


def save_manifest(path: str | Path, entries: dict[str, PinEntry]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": MANIFEST_VERSION,
        "scenarios": {name: e.to_dict()
                      for name, e in sorted(entries.items())},
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")


def pinned_spec_digests(entries: dict[str, PinEntry]) -> frozenset[str]:
    """Spec digests the GC must never collect."""
    return frozenset(e.spec.digest() for e in entries.values())


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------

def verify_pin(entry: PinEntry) -> PinResult:
    """Re-execute one pinned scenario and compare observables."""
    job, result = run_spec_job(entry.spec)
    record = RunRecord.from_run(entry.spec, job, result)
    actual_sha = timeline_sha(job.scheduler.timeline)
    measured = record.counters
    drift = {
        name: (entry.counters.get(name, 0), measured.get(name, 0))
        for name in sorted(set(entry.counters) | set(measured))
        if entry.counters.get(name, 0) != measured.get(name, 0)
    }
    return PinResult(
        name=entry.name,
        sha_ok=actual_sha == entry.timeline_sha256,
        counters_ok=not drift,
        makespan_ok=result.makespan_ns == entry.makespan_ns,
        expected_sha=entry.timeline_sha256,
        actual_sha=actual_sha,
        expected_makespan=entry.makespan_ns,
        actual_makespan=result.makespan_ns,
        counter_drift=drift,
        record=record,
    )


def verify_manifest(entries: dict[str, PinEntry],
                    names: list[str] | None = None) -> list[PinResult]:
    """Verify all (or the named) scenarios, sorted by name."""
    if names:
        unknown = [n for n in names if n not in entries]
        if unknown:
            raise ReproError(
                f"unknown pinned scenario(s): {', '.join(unknown)}; "
                f"manifest has: {', '.join(sorted(entries)) or '(none)'}")
        selected = {n: entries[n] for n in names}
    else:
        selected = entries
    return [verify_pin(e) for _, e in sorted(selected.items())]


def repin(entries: dict[str, PinEntry],
          results: list[PinResult]) -> dict[str, PinEntry]:
    """Fold fresh measurements back into the manifest (``pin update``)."""
    out = dict(entries)
    for r in results:
        if r.record is not None:
            out[r.name] = PinEntry.from_record(r.name, r.record)
            out[r.name].code_version = code_version()
    return out
