"""Timeline forensics: where do two runs first diverge, and how?

Two runs of a deterministic simulator can only differ because their
inputs differ (spec fields) or because the code changed between them.
Either way the interesting question is *where the divergence starts*:
the first scheduler quantum at which the two event streams disagree.
Everything after that point is causally downstream noise; everything
before it is provably identical, so a perf or correctness regression is
localized to one event index instead of an eyeball scan of two traces.

:func:`first_divergence` is the event-level bisect (an O(n) scan — the
streams are already materialized, "bisect" refers to what it does to
the debugging search space).  :func:`diff_records` wraps it with spec
diffing, counter/metric deltas, and per-PE activity summaries at the
split, producing the ``repro diff`` report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.provenance.record import RunRecord
from repro.trace.stream import TimelineEvent

#: divergence kinds, most to least specific
KIND_RETIMED = "retimed"        #: same (pe, vp), different start time
KIND_REORDERED = "reordered"    #: a different rank/PE got the quantum
KIND_TRUNCATED = "truncated"    #: one stream ended (prefix of the other)


@dataclass(frozen=True)
class Divergence:
    """The first event index at which two streams disagree."""

    index: int
    kind: str
    a: TimelineEvent | None      #: None when stream A ended first
    b: TimelineEvent | None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "a": self.a.to_dict() if self.a else None,
            "b": self.b.to_dict() if self.b else None,
        }


def first_divergence(
    a: Sequence[tuple[int, int, int]],
    b: Sequence[tuple[int, int, int]],
) -> Divergence | None:
    """First index where the canonical event streams differ, or None."""
    n = min(len(a), len(b))
    for i in range(n):
        ea, eb = a[i], b[i]
        if ea != eb:
            kind = (KIND_RETIMED if ea[:2] == eb[:2] else KIND_REORDERED)
            return Divergence(
                index=i, kind=kind,
                a=TimelineEvent(i, *ea), b=TimelineEvent(i, *eb),
            )
    if len(a) != len(b):
        longer = a if len(a) > len(b) else b
        ev = TimelineEvent(n, *longer[n])
        return Divergence(index=n, kind=KIND_TRUNCATED,
                          a=ev if len(a) > len(b) else None,
                          b=ev if len(b) > len(a) else None)
    return None


def _flatten(d: dict, prefix: str = "") -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in d.items():
        key = f"{prefix}{k}"
        if isinstance(v, dict):
            out.update(_flatten(v, key + "."))
        else:
            out[key] = v
    return out


def spec_diff(a: RunRecord, b: RunRecord) -> dict[str, tuple[Any, Any]]:
    """Dotted-path spec fields whose values differ: path -> (a, b)."""
    fa, fb = _flatten(a.spec.to_dict()), _flatten(b.spec.to_dict())
    return {
        path: (fa.get(path), fb.get(path))
        for path in sorted(set(fa) | set(fb))
        if fa.get(path) != fb.get(path)
    }


def _pe_activity(timeline: Sequence[tuple[int, int, int]],
                 start: int) -> dict[int, int]:
    """Quanta per PE from event ``start`` to the end of the stream."""
    return dict(Counter(pe for pe, _, _ in timeline[start:]))


@dataclass
class DiffReport:
    """Structured ``repro diff`` output."""

    a_id: str
    b_id: str
    identical: bool
    a_sha: str
    b_sha: str
    a_events: int
    b_events: int
    divergence: Divergence | None
    #: spec fields that differ: dotted path -> (a value, b value)
    spec_diffs: dict[str, tuple[Any, Any]]
    code_version_differs: bool
    #: counter totals that differ: name -> (a, b, b - a)
    counter_deltas: dict[str, tuple[int, int, int]]
    #: headline metric deltas: name -> (a, b, b - a)
    metric_deltas: dict[str, tuple[int, int, int]]
    #: per-PE quanta counts from the split to each stream's end
    a_suffix_per_pe: dict[int, int] = field(default_factory=dict)
    b_suffix_per_pe: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "a": self.a_id,
            "b": self.b_id,
            "identical": self.identical,
            "a_sha256": self.a_sha,
            "b_sha256": self.b_sha,
            "a_events": self.a_events,
            "b_events": self.b_events,
            "divergence": (self.divergence.to_dict()
                           if self.divergence else None),
            "spec_diffs": {k: list(v)
                           for k, v in sorted(self.spec_diffs.items())},
            "code_version_differs": self.code_version_differs,
            "counter_deltas": {k: list(v) for k, v in
                               sorted(self.counter_deltas.items())},
            "metric_deltas": {k: list(v) for k, v in
                              sorted(self.metric_deltas.items())},
            "a_suffix_per_pe": {str(k): v for k, v in
                                sorted(self.a_suffix_per_pe.items())},
            "b_suffix_per_pe": {str(k): v for k, v in
                                sorted(self.b_suffix_per_pe.items())},
        }

    def format(self) -> str:
        lines = [f"diff {self.a_id[:12]} (A) .. {self.b_id[:12]} (B)"]
        if self.spec_diffs:
            lines.append("spec differences:")
            for path, (va, vb) in sorted(self.spec_diffs.items()):
                lines.append(f"  {path}: {va!r} -> {vb!r}")
        else:
            lines.append("specs: identical")
        if self.code_version_differs:
            lines.append("code versions differ "
                         "(runs come from different sources)")
        lines.append(f"events: A={self.a_events} B={self.b_events}")
        if self.identical:
            lines.append(f"timelines: IDENTICAL "
                         f"(sha256 {self.a_sha[:16]})")
        else:
            d = self.divergence
            lines.append(f"timelines: diverge at event index {d.index} "
                         f"({d.kind})")
            for label, ev in (("A", d.a), ("B", d.b)):
                if ev is None:
                    lines.append(f"  {label}: <stream ended>")
                else:
                    lines.append(f"  {label}: pe={ev.pe} vp={ev.vp} "
                                 f"start={ev.start_ns} ns")
            if self.a_suffix_per_pe or self.b_suffix_per_pe:
                pes = sorted(set(self.a_suffix_per_pe)
                             | set(self.b_suffix_per_pe))
                tail = ", ".join(
                    f"pe{p}: {self.a_suffix_per_pe.get(p, 0)}/"
                    f"{self.b_suffix_per_pe.get(p, 0)}"
                    for p in pes)
                lines.append(f"  quanta after the split (A/B): {tail}")
        if self.metric_deltas:
            lines.append("metric deltas (B - A):")
            for name, (va, vb, dd) in sorted(self.metric_deltas.items()):
                lines.append(f"  {name}: {va} -> {vb} ({dd:+d})")
        if self.counter_deltas:
            lines.append("counter deltas (B - A):")
            for name, (va, vb, dd) in sorted(self.counter_deltas.items()):
                lines.append(f"  {name}: {va} -> {vb} ({dd:+d})")
        elif not self.identical:
            lines.append("counter totals: identical")
        return "\n".join(lines)


def diff_records(
    a: RunRecord, b: RunRecord,
    timeline_a: Sequence[tuple[int, int, int]] | None,
    timeline_b: Sequence[tuple[int, int, int]] | None,
) -> DiffReport:
    """Full structured diff of two stored runs.

    Event streams may be None (not stored); the report then contains
    only the digest-level verdict plus spec/counter/metric deltas.
    """
    identical = a.timeline_sha256 == b.timeline_sha256
    divergence = None
    a_suffix: dict[int, int] = {}
    b_suffix: dict[int, int] = {}
    if not identical and timeline_a is not None and timeline_b is not None:
        divergence = first_divergence(timeline_a, timeline_b)
        if divergence is not None:
            a_suffix = _pe_activity(timeline_a, divergence.index)
            b_suffix = _pe_activity(timeline_b, divergence.index)

    counter_deltas = {
        name: (a.counters.get(name, 0), b.counters.get(name, 0),
               b.counters.get(name, 0) - a.counters.get(name, 0))
        for name in sorted(set(a.counters) | set(b.counters))
        if a.counters.get(name, 0) != b.counters.get(name, 0)
    }
    metric_pairs = {
        "makespan_ns": (a.makespan_ns, b.makespan_ns),
        "startup_ns": (a.startup_ns, b.startup_ns),
        "events": (a.events, b.events),
        "migrations": (a.migrations, b.migrations),
        "recoveries": (a.recoveries, b.recoveries),
        "rollbacks": (sum(a.rollbacks.values()), sum(b.rollbacks.values())),
    }
    metric_deltas = {
        name: (va, vb, vb - va)
        for name, (va, vb) in metric_pairs.items() if va != vb
    }
    return DiffReport(
        a_id=a.run_id, b_id=b.run_id,
        identical=identical,
        a_sha=a.timeline_sha256, b_sha=b.timeline_sha256,
        a_events=a.events, b_events=b.events,
        divergence=divergence,
        spec_diffs=spec_diff(a, b),
        code_version_differs=a.code_version != b.code_version,
        counter_deltas=counter_deltas,
        metric_deltas=metric_deltas,
        a_suffix_per_pe=a_suffix,
        b_suffix_per_pe=b_suffix,
    )
