"""The run-metrics layer: Projections-style per-PE reports from records.

A :class:`RunRecord` already carries everything a Projections usage
profile needs — per-PE busy/idle time, context-switch counts, the
counter totals — so ``repro stats`` renders utilization and traffic
breakdowns *from the store*, without re-running anything.  The same
derivations back ``repro stats --compare`` (delta view between two
records, e.g. before/after a scheduler change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.perf.counters import (
    EV_ACK,
    EV_CKPT,
    EV_CKPT_BYTES,
    EV_CTX_SWITCH,
    EV_DEDUP_DROP,
    EV_MIGRATION_BYTES,
    EV_MIGRATIONS,
    EV_MSG_BYTES,
    EV_MSG_SENT,
    EV_RECOVERY_NS,
    EV_REPLAYED,
    EV_RETRANS,
)
from repro.provenance.record import RunRecord


@dataclass(frozen=True)
class PeMetrics:
    """One PE's utilization profile over the whole run."""

    pe: int
    busy_ns: int
    idle_ns: int
    overhead_ns: int      #: makespan - busy - idle (scheduling/runtime)
    busy_frac: float
    idle_frac: float
    overhead_frac: float
    ctx_switches: int
    final_ranks: tuple[int, ...]
    rollbacks: int        #: rollbacks of ranks finishing on this PE

    def to_dict(self) -> dict[str, Any]:
        return {
            "pe": self.pe, "busy_ns": self.busy_ns, "idle_ns": self.idle_ns,
            "overhead_ns": self.overhead_ns,
            "busy_frac": round(self.busy_frac, 6),
            "idle_frac": round(self.idle_frac, 6),
            "overhead_frac": round(self.overhead_frac, 6),
            "ctx_switches": self.ctx_switches,
            "final_ranks": list(self.final_ranks),
            "rollbacks": self.rollbacks,
        }


@dataclass(frozen=True)
class RunMetrics:
    """Job-level traffic/FT metrics plus the per-PE profiles."""

    run_id: str
    makespan_ns: int
    startup_ns: int
    app_ns: int
    events: int
    ult_switches: int
    messages: int
    message_bytes: int
    retransmissions: int
    acks: int
    dedup_drops: int
    replayed: int
    checkpoints: int
    checkpoint_bytes: int
    migrations: int
    migration_bytes: int
    recovery_ns: int
    rollbacks: int
    per_pe: tuple[PeMetrics, ...]

    @classmethod
    def from_record(cls, record: RunRecord) -> "RunMetrics":
        c = record.counters
        span = max(1, record.makespan_ns)
        rollback_of_vp = record.rollbacks
        per_pe = []
        for p in record.pe_stats:
            busy, idle = p["busy_ns"], p["idle_ns"]
            overhead = max(0, record.makespan_ns - busy - idle)
            per_pe.append(PeMetrics(
                pe=p["pe"], busy_ns=busy, idle_ns=idle,
                overhead_ns=overhead,
                busy_frac=busy / span, idle_frac=idle / span,
                overhead_frac=overhead / span,
                ctx_switches=p["ctx_switches"],
                final_ranks=tuple(p["final_ranks"]),
                rollbacks=sum(rollback_of_vp.get(vp, 0)
                              for vp in p["final_ranks"]),
            ))
        return cls(
            run_id=record.run_id,
            makespan_ns=record.makespan_ns,
            startup_ns=record.startup_ns,
            app_ns=record.app_ns,
            events=record.events,
            ult_switches=c.get(EV_CTX_SWITCH, 0),
            messages=c.get(EV_MSG_SENT, 0),
            message_bytes=c.get(EV_MSG_BYTES, 0),
            retransmissions=c.get(EV_RETRANS, 0),
            acks=c.get(EV_ACK, 0),
            dedup_drops=c.get(EV_DEDUP_DROP, 0),
            replayed=c.get(EV_REPLAYED, 0),
            checkpoints=c.get(EV_CKPT, 0),
            checkpoint_bytes=c.get(EV_CKPT_BYTES, 0),
            migrations=c.get(EV_MIGRATIONS, 0),
            migration_bytes=c.get(EV_MIGRATION_BYTES, 0),
            recovery_ns=c.get(EV_RECOVERY_NS, 0),
            rollbacks=sum(record.rollbacks.values()),
            per_pe=tuple(per_pe),
        )

    #: the job-level scalar metrics, in display order
    SCALAR_FIELDS = (
        "makespan_ns", "startup_ns", "app_ns", "events", "ult_switches",
        "messages", "message_bytes", "retransmissions", "acks",
        "dedup_drops", "replayed", "checkpoints", "checkpoint_bytes",
        "migrations", "migration_bytes", "recovery_ns", "rollbacks",
    )

    def scalars(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.SCALAR_FIELDS}

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"run_id": self.run_id}
        d.update(self.scalars())
        d["per_pe"] = [p.to_dict() for p in self.per_pe]
        return d

    def format(self) -> str:
        from repro.harness.tables import format_table

        rows = [
            [p.pe, f"{100 * p.busy_frac:.1f}%", f"{100 * p.idle_frac:.1f}%",
             f"{100 * p.overhead_frac:.1f}%", p.ctx_switches, p.rollbacks,
             ",".join(map(str, p.final_ranks)) or "-"]
            for p in self.per_pe
        ]
        table = format_table(
            ["pe", "busy", "idle", "overhead", "switches", "rollbacks",
             "final ranks"],
            rows, title=f"Per-PE utilization ({self.run_id[:12]})")
        scalar_lines = [f"{name:>18}: {value}"
                        for name, value in self.scalars().items()]
        return table + "\n\n" + "\n".join(scalar_lines)


def compare_metrics(a: RunMetrics, b: RunMetrics) -> str:
    """Delta table between two runs' job-level metrics."""
    from repro.harness.tables import format_table

    rows = []
    for name in RunMetrics.SCALAR_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        pct = (f"{100.0 * (vb - va) / va:+.2f}%" if va else "-")
        rows.append([name, va, vb, vb - va, pct])
    return format_table(
        ["metric", f"A ({a.run_id[:10]})", f"B ({b.run_id[:10]})",
         "delta", "delta %"],
        rows, title="Run metrics comparison (B - A)")
