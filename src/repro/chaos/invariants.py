"""The chaos campaign's machine-checkable invariant suite.

Every scenario run — recoverable or not — must satisfy a set of
properties that follow from the simulator's contracts, not from any
particular workload:

* **numerics**: a run that completes under faults produces exit values
  bit-identical to its fault-free twin (faults cost latency, never
  data);
* **rollback accounting**: rollback counters reconcile exactly with the
  recovery manager's crash log — under global recovery every rank rolls
  back once per recovery; under local recovery a rank's rollbacks equal
  the number of times it died;
* **survivor rollbacks**: message-logging local recovery never rolls a
  survivor back (the scheme's entire point);
* **orphans**: no run leaks a user-level thread, whatever its exit path;
* **fault draws**: the fault injector's PRNG draw count reconciles with
  the transport counters (one draw per attempt on the reliable path, one
  per send on the priced path) — the determinism ledger;
* **taxonomy**: an unrecoverable run carries a structured reason from
  :data:`repro.errors.UNRECOVERABLE_REASONS` and a non-empty error; a
  completed run finished every rank;
* **replay** (checked by the engine via
  :func:`repro.provenance.replay_record`): re-executing the recorded
  spec reproduces the timeline SHA, counters, rollbacks and — for
  unrecoverable runs — the same classification.

Checks return :class:`Violation` values instead of raising so the
campaign engine can shrink the offending fault plan and persist a repro.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ampi.runtime import AmpiJob, JobResult
from repro.errors import UNRECOVERABLE_REASONS
from repro.harness.jobspec import JobSpec
from repro.perf.counters import (
    EV_ACK,
    EV_MSG_FAULT_CORRUPT,
    EV_MSG_FAULT_DROP,
    EV_MSG_SENT,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.provenance.runner import ReplayReport

#: invariant names, stable identifiers for reports and shrink predicates
INVARIANTS = (
    "numerics",
    "rollback-accounting",
    "survivor-rollbacks",
    "orphans",
    "fault-draws",
    "taxonomy",
    "replay",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough detail to debug the repro."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------

def check_numerics(result: JobResult,
                   base: JobResult) -> Violation | None:
    """Completed faulted run == fault-free twin, bit for bit."""
    if result.unrecoverable_reason is not None:
        return None
    if result.exit_values != base.exit_values:
        diff = sorted(
            vp for vp in set(result.exit_values) | set(base.exit_values)
            if result.exit_values.get(vp) != base.exit_values.get(vp)
        )
        return Violation(
            "numerics",
            f"exit values diverged from the fault-free twin at vp(s) "
            f"{diff[:8]}{'...' if len(diff) > 8 else ''}",
        )
    return None


def check_rollback_accounting(spec: JobSpec,
                              result: JobResult) -> Violation | None:
    """Rollback counters reconcile exactly with the crash log."""
    counts = {vp: n for vp, n in result.rollbacks.items() if n}
    log = result.crashes
    if result.recoveries != len(log):
        return Violation(
            "rollback-accounting",
            f"recoveries={result.recoveries} but the crash log has "
            f"{len(log)} entries",
        )
    if spec.recovery == "local":
        expected = Counter(vp for entry in log for vp in entry["dead_vps"])
        if counts != dict(expected):
            return Violation(
                "rollback-accounting",
                f"local rollback counts {counts} != per-crash dead sets "
                f"{dict(expected)}",
            )
    else:
        want = result.recoveries
        if want == 0:
            if counts:
                return Violation(
                    "rollback-accounting",
                    f"no recoveries but rollback counts {counts}",
                )
        else:
            bad = {vp: n for vp, n in result.rollbacks.items()
                   if n != want}
            missing = [vp for vp in range(result.nvp)
                       if vp not in result.rollbacks]
            if bad or missing:
                return Violation(
                    "rollback-accounting",
                    f"global recovery x{want} must roll every rank back "
                    f"{want} time(s); off: {bad}, missing: {missing}",
                )
    return None


def check_survivor_rollbacks(spec: JobSpec,
                             result: JobResult) -> Violation | None:
    """Local recovery never rolls back a rank that never died."""
    if spec.recovery != "local":
        return None
    died = {vp for entry in result.crashes for vp in entry["dead_vps"]}
    guilty = {vp: n for vp, n in result.rollbacks.items()
              if n and vp not in died}
    if guilty:
        return Violation(
            "survivor-rollbacks",
            f"survivors rolled back under local recovery: {guilty}",
        )
    return None


def check_orphans(job: AmpiJob) -> Violation | None:
    """No exit path may leak a user-level thread."""
    n = job.scheduler.orphaned
    if n:
        return Violation("orphans", f"{n} ULT(s) failed to unwind")
    return None


def check_fault_draws(spec: JobSpec, job: AmpiJob,
                      result: JobResult) -> Violation | None:
    """The injector's draw count reconciles with transport counters.

    One fault decision is drawn per transmission *attempt* on the
    reliable path — and every attempt lands in exactly one of
    {acked, dropped, corrupted} — or per send on the priced path.  With
    no message faults in the plan no draws are made at all.  Any slack
    here means a fault decision was consumed twice, skipped, or spent on
    a message that never existed: the determinism ledger is broken.
    """
    injector = job.fault_injector
    draws = injector.draws if injector is not None else 0
    plan = injector.plan if injector is not None else None
    mf = plan.message_faults if plan is not None else None
    c = result.counters
    if mf is None or not mf.any:
        if draws:
            return Violation(
                "fault-draws",
                f"{draws} draw(s) without message faults in the plan",
            )
        return None
    if spec.transport == "reliable":
        want = (c[EV_ACK] + c[EV_MSG_FAULT_DROP]
                + c[EV_MSG_FAULT_CORRUPT])
        identity = "ACKS + MSG_FAULT_DROP + MSG_FAULT_CORRUPT"
    else:
        want = c[EV_MSG_SENT]
        identity = "MSG_SENT"
    if draws != want:
        return Violation(
            "fault-draws",
            f"injector drew {draws} but {identity} = {want} "
            f"({spec.transport} transport)",
        )
    return None


def check_taxonomy(result: JobResult) -> Violation | None:
    """Failure classification is structured; completion is total."""
    reason = result.unrecoverable_reason
    if reason is not None:
        if reason not in UNRECOVERABLE_REASONS:
            return Violation(
                "taxonomy", f"unknown unrecoverable reason {reason!r}")
        if not result.error:
            return Violation(
                "taxonomy", f"reason {reason!r} without an error message")
        return None
    unfinished = sorted(vp for vp, v in result.exit_values.items()
                        if v is None)
    if unfinished:
        return Violation(
            "taxonomy",
            f"run reported ok but rank(s) {unfinished[:8]} never "
            "returned an exit value",
        )
    return None


def check_replay(report: "ReplayReport") -> Violation | None:
    """Recorded provenance replays byte-identically, same classification."""
    problems = []
    if not report.ok:
        problems.append(
            f"timeline {report.expected_sha[:12]} -> "
            f"{report.actual_sha[:12]}")
    if not report.counters_match:
        drift = dict(sorted(report.counter_drift.items())[:4])
        problems.append(f"counters drifted {drift}")
    if not report.rollbacks_match:
        problems.append("rollback counts drifted")
    if not report.makespan_match:
        problems.append("makespan drifted")
    if not report.reason_match:
        problems.append("unrecoverable classification drifted")
    if problems:
        return Violation("replay", "; ".join(problems))
    return None


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------

def check_run(spec: JobSpec, job: AmpiJob, result: JobResult,
              base: JobResult) -> list[Violation]:
    """All post-run invariants (replay is the engine's extra re-run)."""
    checks = (
        check_numerics(result, base),
        check_rollback_accounting(spec, result),
        check_survivor_rollbacks(spec, result),
        check_orphans(job),
        check_fault_draws(spec, job, result),
        check_taxonomy(result),
    )
    return [v for v in checks if v is not None]
