"""Seeded scenario generation over the full job matrix.

A chaos campaign is a pure function of ``(campaign_seed, count)``: the
i-th scenario is drawn from ``CounterRng(campaign_seed, "scenario:i")``
and nothing else, so two machines running ``repro chaos run --seed 0
--count 200`` execute byte-identical scenario sequences.

Scenario generation is two-phase because crash instants must land
*inside* the application phase, whose extent depends on the workload:
:func:`generate_scenario` fixes everything except the crash instants (a
:class:`ChaosScenario` holds the fault-free twin spec plus the fault
*sketch*), and the engine materializes the :class:`~repro.ft.plan
.FaultPlan` from the scenario after running the fault-free baseline —
see :meth:`ChaosScenario.plan`.

The matrix honours the simulator's real constraints rather than
generating junk: crash scenarios use the restart-aware Jacobi-3D (the
only registered app that checkpoints), ``recovery="local"`` only rides
on ``transport="reliable"``, and non-checkpointable privatization
methods only meet crashes in the *hostile* bucket, where deterministic
unrecoverability is the expected — and invariant-checked — outcome.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from repro.ampi.runtime import JobResult
from repro.ft.plan import FaultPlan, MessageFaults
from repro.ft.prng import CounterRng
from repro.harness.jobspec import JobSpec

#: scenario buckets, in draw order (see :func:`generate_scenario`)
KINDS = ("clean", "noise", "crash", "hostile")

#: privatization methods whose state the buddy checkpointer can capture
CHECKPOINTABLE_METHODS = ("pieglobals", "tlsglobals")

#: methods for fault-free / wire-noise scenarios (no checkpoint needed)
SAFE_METHODS = ("pieglobals", "tlsglobals", "fsglobals", "pipglobals")

LB_STRATEGIES = ("greedy", "greedyrefine")


class _Draws:
    """A cursor over one scenario's CounterRng stream.

    Draw order is fixed by the generation code, and the stream is
    private to the scenario index, so adding scenarios never perturbs
    existing ones.
    """

    __slots__ = ("rng", "i")

    def __init__(self, rng: CounterRng):
        self.rng = rng
        self.i = 0

    def rand(self, n: int) -> int:
        v = self.rng.randrange(self.i, n)
        self.i += 1
        return v

    def pick(self, seq: Sequence[Any]) -> Any:
        return seq[self.rand(len(seq))]

    def chance(self, p: float) -> bool:
        v = self.rng.uniform(self.i)
        self.i += 1
        return v < p


@dataclass(frozen=True)
class ChaosScenario:
    """One generated scenario: a fault-free twin spec + a fault sketch."""

    index: int
    campaign_seed: int
    kind: str                     #: one of :data:`KINDS`
    base_spec: JobSpec            #: the fault-free twin (fault_plan=None)
    n_crashes: int
    message_faults: MessageFaults | None
    plan_seed: int
    #: cluster the crash instants into a tiny window so later crashes
    #: land inside an in-progress recovery (exercises the cascade path)
    cascade_window: bool = False

    @property
    def nodes(self) -> int:
        return self.base_spec.layout[0]

    @property
    def has_faults(self) -> bool:
        mf = self.message_faults
        return self.n_crashes > 0 or (mf is not None and mf.any)

    def crash_window(self, base: JobResult) -> tuple[int, int]:
        """Crash instants live in the middle of the application phase
        of the fault-free baseline (same calibration the fault sweep
        uses); a cascade scenario compresses the window so the crashes
        overlap one outage."""
        app_ns = max(1, base.makespan_ns - base.startup_ns)
        lo = base.startup_ns + app_ns // 10
        hi = base.startup_ns + (app_ns * 8) // 10
        if hi <= lo:
            hi = lo + 1
        if self.cascade_window:
            hi = lo + max(1, (hi - lo) // 16)
        return lo, hi

    def plan(self, base: JobResult) -> FaultPlan | None:
        """Materialize the fault plan against the calibrated window."""
        if not self.has_faults:
            return None
        if self.n_crashes == 0:
            return FaultPlan(seed=self.plan_seed,
                             message_faults=self.message_faults)
        return FaultPlan.random_crashes(
            self.plan_seed, self.n_crashes, self.nodes,
            self.crash_window(base), message_faults=self.message_faults,
        )

    def spec(self, plan: FaultPlan | None) -> JobSpec:
        """The faulted spec: the twin plus the materialized plan."""
        return dataclasses.replace(
            self.base_spec,
            fault_plan=plan.to_dict() if plan is not None else None,
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "campaign_seed": self.campaign_seed,
            "kind": self.kind,
            "base_spec": self.base_spec.to_dict(),
            "n_crashes": self.n_crashes,
            "message_faults": (self.message_faults.to_dict()
                               if self.message_faults is not None else None),
            "plan_seed": self.plan_seed,
            "cascade_window": self.cascade_window,
        }

    def label(self) -> str:
        s = self.base_spec
        mf = self.message_faults
        noise = (f" drop={mf.drop} dup={mf.duplicate} corrupt={mf.corrupt}"
                 if mf is not None and mf.any else "")
        return (f"#{self.index} {self.kind}: {s.app} nvp={s.nvp} "
                f"{s.method} {s.transport}/{s.recovery} "
                f"nodes={s.layout[0]} crashes={self.n_crashes}"
                f"{'(cascade)' if self.cascade_window else ''}{noise}")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def _jacobi_config(d: _Draws, *, ckpt: bool, tls: bool) -> dict:
    return {
        "n": d.pick((8, 10, 12)),
        "iters": d.pick((6, 8)),
        "reduce_every": d.pick((2, 3)),
        "ckpt_period": d.pick((2, 3)) if ckpt else 0,
        "compute_ns_per_cell": d.pick((200.0, 500.0)),
        "tag_tls": tls,
    }


def _adcirc_config(d: _Draws) -> dict:
    return {
        "width": 6,
        "height": d.pick((12, 16)),
        "steps": d.pick((4, 6)),
        "reduce_every": 2,
    }


def _noise(d: _Draws, *, reliable: bool) -> MessageFaults:
    rates = (0.02, 0.05, 0.1, 0.2) if reliable else (0.02, 0.05, 0.1)
    drop = d.pick(rates) if d.chance(0.7) else 0.0
    dup = d.pick((0.02, 0.05)) if d.chance(0.4) else 0.0
    corrupt = d.pick((0.02, 0.05, 0.1)) if d.chance(0.5) else 0.0
    if drop + dup + corrupt == 0.0:
        drop = 0.05
    return MessageFaults(drop=drop, duplicate=dup, corrupt=corrupt,
                         retry_timeout_ns=d.pick((20_000, 50_000)))


def _transport_recovery(d: _Draws, *, crashes: bool) -> tuple[str, str]:
    """(transport, recovery) honouring the local-needs-reliable rule."""
    roll = d.rand(4)
    if roll == 0:
        return "priced", "global"
    if roll == 1 or not crashes:
        return "reliable", "global"
    return "reliable", "local"


def generate_scenario(campaign_seed: int, index: int) -> ChaosScenario:
    """The ``index``-th scenario of campaign ``campaign_seed``."""
    rng = CounterRng(campaign_seed, f"scenario:{index}")
    d = _Draws(rng)
    roll = d.rand(100)        # 10 clean | 25 noise | 45 crash | 20 hostile

    nodes = d.pick((2, 3, 4))
    pes = d.pick((1, 2))
    nvp = d.pick((4, 6, 8))
    lb = d.pick(LB_STRATEGIES)
    plan_seed = d.rand(1 << 30)

    if roll < 10:
        # -- clean: no faults at all; broadest app/method coverage ------
        kind = "clean"
        app = d.pick(("jacobi3d", "adcirc", "hello"))
        method = d.pick(SAFE_METHODS)
        transport, recovery = _transport_recovery(d, crashes=False)
        n_crashes, mf, cascade = 0, None, False
    elif roll < 35:
        # -- noise: wire faults only, on the apps with real p2p traffic -
        kind = "noise"
        app = d.pick(("jacobi3d", "jacobi3d", "adcirc"))
        method = d.pick(SAFE_METHODS)
        transport, recovery = _transport_recovery(d, crashes=False)
        n_crashes, cascade = 0, False
        mf = _noise(d, reliable=transport == "reliable")
    elif roll < 80:
        # -- crash: node crashes against the restart-aware solver -------
        kind = "crash"
        app = "jacobi3d"
        method = d.pick(CHECKPOINTABLE_METHODS)
        transport, recovery = _transport_recovery(d, crashes=True)
        n_crashes = 1 + d.rand(min(3, nodes))
        cascade = n_crashes >= 2 and d.chance(0.4)
        mf = (_noise(d, reliable=transport == "reliable")
              if d.chance(0.4) else None)
    else:
        # -- hostile: deterministic unrecoverability by construction ----
        kind = "hostile"
        app = "jacobi3d"
        transport, recovery = _transport_recovery(d, crashes=True)
        cascade = False
        mf = None
        hostile = d.rand(4)
        if hostile == 0:
            # One node: the crash takes every PE with it (no survivor).
            method = d.pick(CHECKPOINTABLE_METHODS)
            nodes, pes, n_crashes = 1, 2, 1
            transport, recovery = "priced", "global"
        elif hostile == 1:
            # Kill every node: the last crash leaves no survivor.
            method = d.pick(CHECKPOINTABLE_METHODS)
            n_crashes = nodes
            cascade = d.chance(0.5)
        elif hostile == 2:
            # Non-checkpointable method meets a crash: the baseline
            # checkpoint fails, structured and early.
            method = d.pick(("fsglobals", "pipglobals"))
            n_crashes = 1
        else:
            # Total packet loss: the reliable sender exhausts its
            # retransmission budget (64 attempts) and gives up.
            method = d.pick(CHECKPOINTABLE_METHODS)
            transport, recovery = "reliable", "global"
            n_crashes = 0
            mf = MessageFaults(drop=1.0, retry_timeout_ns=20_000)

    if app == "jacobi3d":
        tls = method == "tlsglobals"
        # An app-driven checkpoint needs a method whose state the
        # checkpointer can capture; the hostile non-checkpointable bucket
        # fails at the *baseline* checkpoint (armed by the crash) instead.
        ckpt = (n_crashes > 0 and method in CHECKPOINTABLE_METHODS
                and d.chance(0.9))
        cfg = _jacobi_config(d, ckpt=ckpt, tls=tls)
    elif app == "adcirc":
        cfg = _adcirc_config(d)
    else:
        cfg = {}

    base_spec = JobSpec(
        app=app, nvp=max(nvp, nodes), app_config=cfg, method=method,
        machine="generic-linux", layout=(nodes, 1, pes), lb_strategy=lb,
        transport=transport, recovery=recovery, fault_plan=None,
    )
    return ChaosScenario(
        index=index, campaign_seed=campaign_seed, kind=kind,
        base_spec=base_spec, n_crashes=n_crashes, message_faults=mf,
        plan_seed=plan_seed, cascade_window=cascade,
    )


def generate_scenarios(campaign_seed: int,
                       count: int) -> list[ChaosScenario]:
    return [generate_scenario(campaign_seed, i) for i in range(count)]
