"""repro.chaos: deterministic multi-fault campaigns with plan shrinking.

Seeded random scenarios over the full job matrix (app x virtualization
x privatization x LB x fault plan x transport x recovery), each checked
against a machine-verifiable invariant suite; violations are minimized
by a delta-debugging shrinker and persisted as replayable provenance.
See ARCHITECTURE.md section 15.
"""

from repro.chaos.engine import (
    CampaignReport,
    DrillReport,
    ScenarioOutcome,
    drill_scenario,
    run_campaign,
    run_drill,
    run_scenario,
)
from repro.chaos.invariants import (
    INVARIANTS,
    Violation,
    check_fault_draws,
    check_replay,
    check_run,
)
from repro.chaos.scenario import (
    ChaosScenario,
    generate_scenario,
    generate_scenarios,
)
from repro.chaos.serve_faults import (
    ServeCampaignReport,
    ServeFaultOutcome,
    ServeFaultScenario,
    generate_serve_scenario,
    generate_serve_scenarios,
    run_serve_campaign,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan

__all__ = [
    "CampaignReport",
    "ChaosScenario",
    "DrillReport",
    "INVARIANTS",
    "ScenarioOutcome",
    "ServeCampaignReport",
    "ServeFaultOutcome",
    "ServeFaultScenario",
    "ShrinkResult",
    "Violation",
    "check_fault_draws",
    "check_replay",
    "check_run",
    "drill_scenario",
    "generate_scenario",
    "generate_scenarios",
    "generate_serve_scenario",
    "generate_serve_scenarios",
    "run_campaign",
    "run_drill",
    "run_scenario",
    "run_serve_campaign",
    "shrink_plan",
]
