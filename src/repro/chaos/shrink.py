"""Delta-debugging minimization of failing fault plans.

When a scenario violates an invariant, the raw plan is rarely the story:
three crashes and three wire-fault rates obscure the one crash that
matters.  :func:`shrink_plan` minimizes a :class:`~repro.ft.plan
.FaultPlan` against a caller-supplied predicate (``fails(plan) ->
bool``, re-running the scenario under the candidate plan), in three
deterministic passes:

1. **drop crashes** — ddmin-style: remove whole subsets of the crash
   list (halves first, then single crashes to a fixpoint);
2. **zero fault rates** — turn off drop/duplicate/corrupt one at a
   time, removing the :class:`~repro.ft.plan.MessageFaults` entirely
   when all rates reach zero;
3. **round crash instants** — snap ``at_ns`` to the coarsest time grid
   that still fails, so the repro's numbers are human-readable.

Every candidate evaluation is one full deterministic re-run, so the
shrinker is bounded by ``budget`` evaluations and the result is a
*guaranteed-failing* plan: the predicate accepted it, and re-running it
reproduces the violation bit-for-bit by the simulator's determinism
contract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.ft.plan import FaultPlan

#: time grids for pass 3, coarsest first
_GRIDS = (1_000_000, 100_000, 10_000, 1_000)


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    plan: FaultPlan          #: the minimal still-failing plan
    evaluations: int         #: predicate runs spent
    #: (description, survived) per accepted step, for walkthroughs
    steps: list[tuple[str, bool]]

    @property
    def n_faults(self) -> int:
        """Size of the shrunk plan: crashes + active wire-fault rates."""
        mf = self.plan.message_faults
        rates = 0
        if mf is not None:
            rates = sum(1 for r in (mf.drop, mf.duplicate, mf.corrupt)
                        if r > 0.0)
        return len(self.plan.node_crashes) + rates

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "evaluations": self.evaluations,
            "n_faults": self.n_faults,
            "steps": [{"step": s, "kept": kept} for s, kept in self.steps],
        }


def shrink_plan(plan: FaultPlan, fails: Callable[[FaultPlan], bool],
                *, budget: int = 64) -> ShrinkResult:
    """Minimize ``plan`` while ``fails`` keeps returning True.

    ``fails`` must be deterministic (it re-runs the scenario under the
    candidate plan); the original plan is assumed failing and is never
    re-evaluated.  Returns the smallest failing plan found within
    ``budget`` predicate evaluations.
    """
    spent = 0
    steps: list[tuple[str, bool]] = []

    def attempt(candidate: FaultPlan, label: str) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        ok = fails(candidate)
        steps.append((label, ok))
        return ok

    # -- pass 1: drop crashes (ddmin: halves, then singles) -----------------
    crashes = list(plan.node_crashes)

    def with_crashes(cs) -> FaultPlan:
        return dataclasses.replace(plan, node_crashes=tuple(cs))

    while len(crashes) > 1 and spent < budget:
        half = len(crashes) // 2
        first, second = crashes[:half], crashes[half:]
        if attempt(with_crashes(second),
                   f"drop first {half} crash(es)"):
            crashes = second
            plan = with_crashes(crashes)
            continue
        if attempt(with_crashes(first),
                   f"drop last {len(second)} crash(es)"):
            crashes = first
            plan = with_crashes(crashes)
            continue
        break
    changed = True
    while changed and spent < budget:
        changed = False
        for i, c in enumerate(crashes):
            cand = crashes[:i] + crashes[i + 1:]
            if attempt(with_crashes(cand),
                       f"drop crash node={c.node}@t={c.at_ns}"):
                crashes = cand
                plan = with_crashes(crashes)
                changed = True
                break

    # -- pass 2: zero wire-fault rates ---------------------------------------
    mf = plan.message_faults
    if mf is not None and mf.any:
        for field in ("drop", "duplicate", "corrupt"):
            if mf is None or getattr(mf, field) == 0.0:
                continue
            cand_mf = dataclasses.replace(mf, **{field: 0.0})
            cand = dataclasses.replace(
                plan,
                message_faults=cand_mf if cand_mf.any else None,
            )
            if attempt(cand, f"zero {field} rate"):
                plan = cand
                mf = plan.message_faults
        if mf is None or not mf.any:
            mf = None

    # -- pass 3: round crash instants to the coarsest failing grid ----------
    for grid in _GRIDS:
        if not plan.node_crashes or spent >= budget:
            break
        rounded = tuple(
            dataclasses.replace(c, at_ns=max(0, (c.at_ns // grid) * grid))
            for c in plan.node_crashes
        )
        if rounded == plan.node_crashes:
            break  # already on this grid (and any finer one)
        cand = dataclasses.replace(plan, node_crashes=rounded)
        if attempt(cand, f"round crash instants to {grid} ns"):
            plan = cand
            break

    return ShrinkResult(plan=plan, evaluations=spent, steps=steps)
