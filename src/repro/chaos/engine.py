"""The chaos campaign engine: generate, run, check, shrink, persist.

One scenario's lifecycle:

1. run the fault-free twin spec (cached across the campaign by spec
   digest) — it calibrates the crash window and provides the numerics
   reference;
2. materialize the :class:`~repro.ft.plan.FaultPlan` and run the faulted
   spec with ``strict=False`` (an unrecoverable death is a structured
   outcome, not an error);
3. check the invariant suite (:mod:`repro.chaos.invariants`), including
   a full record-and-replay determinism audit through the provenance
   machinery;
4. on violation, minimize the plan with the delta-debugging shrinker
   (:mod:`repro.chaos.shrink`) and persist the shrunk repro in the
   provenance store, where ``repro replay <id>`` / ``repro chaos
   replay <id>`` can re-execute it byte-identically.

The whole campaign is a pure function of ``(campaign_seed, count)`` —
see :mod:`repro.chaos.scenario` — so a red campaign in CI is a repro
recipe by itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ampi.runtime import JobResult
from repro.chaos.invariants import (
    Violation,
    check_replay,
    check_run,
)
from repro.chaos.scenario import (
    ChaosScenario,
    generate_scenario,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan
from repro.ft.plan import FaultPlan, MessageFaults
from repro.harness.jobspec import JobSpec, run_spec_job
from repro.perf.counters import EV_CASCADE, EV_CKPT_FALLBACK
from repro.provenance.record import RunRecord
from repro.provenance.runner import replay_record
from repro.trace.stream import timeline_sha

#: an extra per-scenario check: result -> violations (the drill plants
#: its known bug through this hook)
ExtraCheck = Callable[[JobResult], "list[Violation]"]


@dataclass
class ScenarioOutcome:
    """One scenario's verdict, JSON-able for reports."""

    scenario: ChaosScenario
    status: str                    #: "ok" | "unrecoverable" | "violation"
    reason: str | None             #: taxonomy code when unrecoverable
    violations: list[Violation]
    plan: dict | None              #: the materialized fault plan
    run_id: str | None             #: provenance id (shrunk repro if any)
    timeline_sha256: str | None
    makespan_ns: int = 0
    recoveries: int = 0
    cascades: int = 0
    ckpt_fallbacks: int = 0
    shrunk: dict | None = None     #: ShrinkResult.to_dict() on violation

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "label": self.scenario.label(),
            "status": self.status,
            "reason": self.reason,
            "violations": [v.to_dict() for v in self.violations],
            "plan": self.plan,
            "run_id": self.run_id,
            "timeline_sha256": self.timeline_sha256,
            "makespan_ns": self.makespan_ns,
            "recoveries": self.recoveries,
            "cascades": self.cascades,
            "ckpt_fallbacks": self.ckpt_fallbacks,
            "shrunk": self.shrunk,
        }


@dataclass
class CampaignReport:
    """The campaign's aggregate verdict."""

    campaign_seed: int
    count: int
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def tally(self) -> dict[str, int]:
        t: dict[str, int] = {}
        for o in self.outcomes:
            t[o.status] = t.get(o.status, 0) + 1
        return t

    def to_dict(self) -> dict:
        return {
            "campaign_seed": self.campaign_seed,
            "count": self.count,
            "ok": self.ok,
            "tally": self.tally(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        t = self.tally()
        kinds: dict[str, int] = {}
        for o in self.outcomes:
            kinds[o.scenario.kind] = kinds.get(o.scenario.kind, 0) + 1
        lines = [
            f"chaos campaign seed={self.campaign_seed} "
            f"count={self.count}: "
            + ", ".join(f"{n} {s}" for s, n in sorted(t.items())),
            "  kinds: " + ", ".join(f"{n} {k}"
                                    for k, n in sorted(kinds.items())),
        ]
        for o in self.violations:
            lines.append(f"  VIOLATION {o.scenario.label()}")
            for v in o.violations:
                lines.append(f"    - {v}")
            if o.run_id:
                lines.append(f"    repro: repro chaos replay {o.run_id[:12]}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------

def _run_faulted(spec: JobSpec) -> tuple[Any, JobResult]:
    return run_spec_job(spec, strict=False)


def run_scenario(
    sc: ChaosScenario,
    *,
    store: Any = None,
    baselines: dict[str, JobResult] | None = None,
    replay: bool = True,
    extra_check: ExtraCheck | None = None,
    shrink: bool = True,
    shrink_budget: int = 24,
) -> ScenarioOutcome:
    """Execute one scenario end to end; see the module docstring."""
    # 1. fault-free twin (numerics reference + crash-window calibration)
    base_key = sc.base_spec.digest()
    base = baselines.get(base_key) if baselines is not None else None
    if base is None:
        _, base = run_spec_job(sc.base_spec, strict=False)
        if baselines is not None:
            baselines[base_key] = base
    if base.unrecoverable_reason is not None:
        return ScenarioOutcome(
            scenario=sc, status="violation",
            reason=base.unrecoverable_reason,
            violations=[Violation(
                "taxonomy",
                f"fault-free twin died: {base.unrecoverable_reason}")],
            plan=None, run_id=None, timeline_sha256=None,
        )

    # 2. the faulted run
    plan = sc.plan(base)
    spec = sc.spec(plan)
    job, result = _run_faulted(spec)

    # 3. invariants
    violations = check_run(spec, job, result, base)
    if extra_check is not None:
        violations += list(extra_check(result))

    record = RunRecord.from_run(spec, job, result)
    sha = timeline_sha(job.scheduler.timeline)
    if store is not None:
        store.put(record, job.scheduler.timeline)
    if replay:
        report = replay_record(record)
        v = check_replay(report)
        if v is not None:
            violations.append(v)

    run_id = record.run_id
    shrunk: ShrinkResult | None = None
    if violations and shrink and plan is not None:
        shrunk, run_id = _shrink_and_record(
            sc, plan, base, violations, store,
            extra_check=extra_check, budget=shrink_budget,
        )

    status = ("violation" if violations
              else "unrecoverable" if result.unrecoverable_reason
              else "ok")
    return ScenarioOutcome(
        scenario=sc,
        status=status,
        reason=result.unrecoverable_reason,
        violations=violations,
        plan=plan.to_dict() if plan is not None else None,
        run_id=run_id,
        timeline_sha256=sha,
        makespan_ns=result.makespan_ns,
        recoveries=result.recoveries,
        cascades=result.counters[EV_CASCADE],
        ckpt_fallbacks=result.counters[EV_CKPT_FALLBACK],
        shrunk=shrunk.to_dict() if shrunk is not None else None,
    )


def _shrink_and_record(
    sc: ChaosScenario,
    plan: FaultPlan,
    base: JobResult,
    original: list[Violation],
    store: Any,
    *,
    extra_check: ExtraCheck | None,
    budget: int,
) -> tuple[ShrinkResult, str | None]:
    """Minimize the failing plan; persist the shrunk repro's record."""
    # Re-checking replayability per candidate doubles every evaluation;
    # only pay for it when the original failure *was* a replay failure.
    replay_only = all(v.invariant == "replay" for v in original)

    def fails(candidate: FaultPlan) -> bool:
        spec_c = sc.spec(candidate)
        job_c, res_c = _run_faulted(spec_c)
        v = check_run(spec_c, job_c, res_c, base)
        if extra_check is not None:
            v += list(extra_check(res_c))
        if replay_only and not v:
            rec = RunRecord.from_run(spec_c, job_c, res_c)
            if check_replay(replay_record(rec)) is not None:
                return True
        return bool(v)

    shrunk = shrink_plan(plan, fails, budget=budget)

    run_id = None
    if store is not None:
        # One final run of the minimal plan, recorded with its event
        # stream: the repro `repro chaos replay` re-executes.
        spec_m = sc.spec(shrunk.plan)
        job_m, _ = _run_faulted(spec_m)
        rec = RunRecord.from_run(spec_m, job_m, _)
        store.put(rec, job_m.scheduler.timeline)
        run_id = rec.run_id
    return shrunk, run_id


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------

def run_campaign(
    campaign_seed: int,
    count: int,
    *,
    store: Any = None,
    replay: bool = True,
    shrink: bool = True,
    shrink_budget: int = 24,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run ``count`` seeded scenarios; the campaign's shared baseline
    cache means matrix collisions (same fault-free twin) run once."""
    report = CampaignReport(campaign_seed=campaign_seed, count=count)
    baselines: dict[str, JobResult] = {}
    for i in range(count):
        sc = generate_scenario(campaign_seed, i)
        outcome = run_scenario(
            sc, store=store, baselines=baselines, replay=replay,
            shrink=shrink, shrink_budget=shrink_budget,
        )
        report.outcomes.append(outcome)
        if progress is not None:
            mark = "FAIL" if outcome.violations else outcome.status
            progress(f"[{i + 1}/{count}] {mark:<13} {sc.label()}")
    return report


# ---------------------------------------------------------------------------
# The drill: a seeded known bug, end to end
# ---------------------------------------------------------------------------

@dataclass
class DrillReport:
    """Shrinker-convergence drill verdict (the CI gate)."""

    converged: bool          #: shrunk to <= max_faults faults
    n_faults: int            #: faults left in the minimal plan
    evaluations: int         #: predicate runs the shrinker spent
    replay_ok: bool          #: stored repro replayed byte-identically
    run_id: str | None       #: the stored repro
    plan: dict | None        #: the minimal plan
    steps: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.converged and self.replay_ok

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "converged": self.converged,
            "n_faults": self.n_faults,
            "evaluations": self.evaluations,
            "replay_ok": self.replay_ok,
            "run_id": self.run_id,
            "plan": self.plan,
            "steps": self.steps,
        }


def drill_scenario(seed: int) -> ChaosScenario:
    """A guaranteed-recoverable three-crash scenario with wire noise —
    the haystack the drill's planted bug hides in."""
    spec = JobSpec(
        app="jacobi3d", nvp=8,
        app_config={"n": 10, "iters": 8, "reduce_every": 2,
                    "ckpt_period": 2, "compute_ns_per_cell": 500.0},
        method="pieglobals", machine="generic-linux",
        layout=(4, 1, 2), lb_strategy="greedyrefine",
        transport="priced", recovery="global", fault_plan=None,
    )
    return ChaosScenario(
        index=0, campaign_seed=seed, kind="crash", base_spec=spec,
        n_crashes=3,
        message_faults=MessageFaults(drop=0.05, corrupt=0.02),
        plan_seed=seed, cascade_window=False,
    )


def run_drill(seed: int, store: Any, *, budget: int = 32,
              max_faults: int = 2) -> DrillReport:
    """Plant a known 'bug' (any completed recovery is a violation) in a
    three-crash + wire-noise scenario, and prove the shrinker walks it
    down to a <= ``max_faults`` plan whose stored repro replays
    byte-identically.  This is the CI check that the shrinking machinery
    itself works.
    """
    def planted(result: JobResult) -> list[Violation]:
        if result.recoveries >= 1:
            return [Violation(
                "planted-bug",
                f"drill predicate: recoveries={result.recoveries} >= 1")]
        return []

    sc = drill_scenario(seed)
    outcome = run_scenario(
        sc, store=store, replay=False, extra_check=planted,
        shrink=True, shrink_budget=budget,
    )
    shrunk = outcome.shrunk or {}
    n_faults = shrunk.get("n_faults", -1)
    converged = bool(outcome.violations) and 0 <= n_faults <= max_faults

    replay_ok = False
    if outcome.run_id is not None:
        record = store.get(outcome.run_id)
        report = replay_record(record)
        replay_ok = report.ok and report.reason_match
    return DrillReport(
        converged=converged,
        n_faults=n_faults,
        evaluations=shrunk.get("evaluations", 0),
        replay_ok=replay_ok,
        run_id=outcome.run_id,
        plan=shrunk.get("plan"),
        steps=shrunk.get("steps", []),
    )
