"""Service-layer chaos: fault campaigns against a live ``repro serve``.

:mod:`repro.chaos.engine` attacks the *simulated machine* (ranks die
inside deterministic time); this module attacks the *service around
it* — the one part of the stack that runs in real time on a real
host.  A seeded campaign drives a real server subprocess through
worker kills, poison jobs, client deadlines, dropped connections,
truncated frames, and full server crashes (SIGKILL + restart on the
same store), and then checks the two resilience invariants:

1. **No lost submissions** — every submission the service *accepted*
   eventually resolves: to a stored record, or to a structured failure
   (``poison-job``, ``deadline-exceeded``, ...).  Shed submissions
   (``busy``/``draining``) don't count: they were refused up front and
   are safe to retry, which is the point of shedding.
2. **Faults never corrupt results** — every record completed under
   chaos is byte-identical (modulo the ``created_at`` wall stamp) to a
   fault-free local execution of the same spec.  A retried job that
   crashed a worker twice must produce *the* record, not *a* record.

Scenario generation is a pure function of ``(seed, index)`` via
:class:`~repro.ft.prng.CounterRng` — the same seed replays the same
campaign, which is what makes a CI gate out of it.
"""

from __future__ import annotations

import json
import os
import socket as socketlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.ft.prng import CounterRng
from repro.harness.jobspec import JobSpec
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.pool import execute_spec

#: scenario kinds and their selection weights (normalized at draw time)
KINDS: tuple[tuple[str, float], ...] = (
    ("clean", 0.30),           #: no fault: the control group
    ("worker-kill", 0.20),     #: job kills its worker once; must retry
    ("poison", 0.10),          #: job kills every worker; must quarantine
    ("deadline", 0.10),        #: 1 ms deadline; shielded run still lands
    ("conn-drop", 0.12),       #: client vanishes mid-submit
    ("frame-truncate", 0.08),  #: garbage/partial frames on the wire
    ("server-crash", 0.10),    #: SIGKILL the server, restart, resubmit
)

#: structured reasons that legitimately resolve an accepted submission
_RESOLVING_REASONS = (protocol.REASON_POISON, protocol.REASON_DEADLINE,
                      protocol.REASON_POOL_DEAD)


@dataclass(frozen=True)
class ServeFaultScenario:
    """One deterministic service-fault scenario."""

    index: int
    kind: str
    spec: JobSpec
    #: frame-truncate flavor: 0 binary garbage, 1 truncated JSON,
    #: 2 partial frame then EOF
    variant: int = 0

    def label(self) -> str:
        return (f"#{self.index:03d} {self.kind:<14s} "
                f"{self.spec.app} nvp={self.spec.nvp}")


def generate_serve_scenario(seed: int, index: int) -> ServeFaultScenario:
    """The ``index``-th scenario of campaign ``seed`` (pure function)."""
    rng = CounterRng(seed, "serve-faults")
    base = index * 16
    pick = rng.uniform(base)
    total = sum(w for _, w in KINDS)
    acc = 0.0
    kind = KINDS[-1][0]
    for name, w in KINDS:
        acc += w / total
        if pick < acc:
            kind = name
            break
    spec = JobSpec(
        app="pingpong",
        nvp=2 + 2 * rng.randrange(base + 1, 2),
        app_config={
            "yields_per_rank": 10 + 5 * rng.randrange(base + 2, 3),
            "name": f"sf-{seed}-{index}",
        },
        method="none", machine="generic-linux",
        layout=(1, 1, 1), slot_size=1 << 24)
    return ServeFaultScenario(index=index, kind=kind, spec=spec,
                              variant=rng.randrange(base + 3, 3))


def generate_serve_scenarios(seed: int,
                             count: int) -> list[ServeFaultScenario]:
    return [generate_serve_scenario(seed, i) for i in range(count)]


@dataclass
class ServeFaultOutcome:
    """What one scenario did and how its submission resolved."""

    scenario: ServeFaultScenario
    status: str = "ok"        #: ok | unresolved | mismatch | unexpected
    resolution: str = ""      #: record | reason:<code> | shed | (empty)
    run_id: str | None = None
    detail: str = ""
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.scenario.index,
                "kind": self.scenario.kind,
                "status": self.status,
                "resolution": self.resolution,
                "run_id": self.run_id,
                "detail": self.detail,
                "wall_s": round(self.wall_s, 3)}


@dataclass
class ServeCampaignReport:
    """A full service-fault campaign: outcomes plus the two invariants."""

    seed: int
    count: int
    outcomes: list[ServeFaultOutcome] = field(default_factory=list)
    accepted: int = 0         #: submissions the service accepted
    resolved: int = 0         #: ... that resolved (record or reason)
    records_verified: int = 0  #: records compared against a clean twin
    twin_mismatches: int = 0  #: records that differed from the twin
    server_restarts: int = 0
    final_stats: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def lost(self) -> int:
        return self.accepted - self.resolved

    @property
    def ok(self) -> bool:
        return (self.lost == 0 and self.twin_mismatches == 0
                and all(o.ok for o in self.outcomes))

    def tally(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for o in self.outcomes:
            out[o.scenario.kind] = out.get(o.scenario.kind, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "count": self.count,
                "ok": self.ok,
                "accepted": self.accepted, "resolved": self.resolved,
                "lost": self.lost,
                "records_verified": self.records_verified,
                "twin_mismatches": self.twin_mismatches,
                "server_restarts": self.server_restarts,
                "tally": self.tally(),
                "final_stats": self.final_stats,
                "wall_s": round(self.wall_s, 3),
                "outcomes": [o.to_dict() for o in self.outcomes]}

    def summary(self) -> str:
        verdict = "all invariants hold" if self.ok else "VIOLATIONS"
        lines = [f"serve chaos campaign (seed={self.seed}, "
                 f"n={self.count}): {verdict} "
                 f"[{self.wall_s:.1f}s wall]",
                 f"  accepted {self.accepted}, resolved {self.resolved}, "
                 f"lost {self.lost}",
                 f"  records byte-identical to fault-free twins: "
                 f"{self.records_verified - self.twin_mismatches}"
                 f"/{self.records_verified}",
                 f"  server restarts: {self.server_restarts}",
                 "  scenario mix: " + ", ".join(
                     f"{k}={n}" for k, n in self.tally().items())]
        for o in self.outcomes:
            if not o.ok:
                lines.append(f"  FAIL {o.scenario.label()}: "
                             f"{o.status} {o.detail}")
        return "\n".join(lines)


class _ServerProc:
    """A real ``repro serve`` subprocess on a Unix socket, with chaos
    hooks enabled and a short lease TTL (so crash takeover is fast)."""

    def __init__(self, store_dir: Path, socket_path: Path, *,
                 workers: int = 2, lease_ttl_s: float = 5.0,
                 max_queue: int = 64):
        self.store_dir = store_dir
        self.socket_path = socket_path
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.max_queue = max_queue
        self.proc: subprocess.Popen | None = None

    def start(self, timeout_s: float = 60.0) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(self.store_dir),
             "--socket", str(self.socket_path),
             "--workers", str(self.workers),
             "--chaos-hooks",
             "--lease-ttl", str(self.lease_ttl_s),
             "--max-queue", str(self.max_queue)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + timeout_s  # repro: allow(det-wallclock) campaign harness paces a real subprocess
        last: Exception | None = None
        while time.monotonic() < deadline:  # repro: allow(det-wallclock) campaign harness paces a real subprocess
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"serve subprocess exited rc={self.proc.returncode} "
                    f"during startup")
            try:
                ServeClient(socket_path=self.socket_path, timeout=5.0,
                            retries=0).ping()
                return
            except Exception as e:
                last = e
                time.sleep(0.05)  # repro: allow(det-wallclock) campaign harness paces a real subprocess
        raise RuntimeError(f"serve subprocess never came up: {last}")

    def sigkill(self) -> None:
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc = None

    def stop(self) -> None:
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                ServeClient(socket_path=self.socket_path, timeout=5.0,
                            retries=0).shutdown()
            except Exception:
                pass
            try:
                self.proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait(timeout=10)
        self.proc = None


def _raw_send(socket_path: Path, payload: bytes) -> None:
    """Fire bytes at the server and hang up without reading — the
    rudest client we can simulate."""
    s = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    try:
        s.settimeout(10.0)
        s.connect(str(socket_path))
        s.sendall(payload)
    finally:
        s.close()


def _twin_record(spec: JobSpec) -> dict[str, Any] | None:
    """Execute the spec locally, fault-free, and return its record dict
    (the determinism oracle for invariant 2)."""
    out = execute_spec(spec.to_dict())
    return out.get("record")


def _strip_wallclock(record: dict[str, Any]) -> dict[str, Any]:
    d = dict(record)
    d.pop("created_at", None)
    return d


def run_serve_campaign(seed: int, count: int, *,
                       root: Path | str | None = None,
                       workers: int = 2,
                       lease_ttl_s: float = 5.0,
                       max_queue: int = 64,
                       verify_twins: bool = True,
                       progress: Callable[[str], None] | None = None
                       ) -> ServeCampaignReport:
    """Run ``count`` seeded fault scenarios against a live server.

    ``root`` holds the store and socket (a temp dir when None); the
    server runs as a real subprocess with ``--chaos-hooks`` so worker
    kills can be injected through the protocol envelope.
    """
    import tempfile

    t0 = time.monotonic()  # repro: allow(det-wallclock) campaign wall-clock reporting, host-side
    report = ServeCampaignReport(seed=seed, count=count)
    scenarios = generate_serve_scenarios(seed, count)
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(root) if root is not None else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)
        store_dir = base / "store"
        socket_path = base / "serve.sock"
        server = _ServerProc(store_dir, socket_path, workers=workers,
                             lease_ttl_s=lease_ttl_s, max_queue=max_queue)
        server.start()
        client = ServeClient(socket_path=socket_path, timeout=300.0,
                             retries=3)
        completed: dict[str, tuple[JobSpec, dict[str, Any]]] = {}
        try:
            for sc in scenarios:
                out = _run_one(sc, client, server, report)
                report.outcomes.append(out)
                if out.resolution == "record" and out.run_id:
                    rec = completed_record(client, out.run_id)
                    if rec is not None:
                        completed[out.run_id] = (sc.spec, rec)
                if progress is not None:
                    progress(f"{sc.label()} -> {out.status} "
                             f"({out.resolution}) [{out.wall_s:.2f}s]")
            try:
                report.final_stats = client.stats()
            except Exception:
                pass
        finally:
            client.close()
            server.stop()
        if verify_twins:
            for run_id, (spec, rec) in sorted(completed.items()):
                report.records_verified += 1
                twin = _twin_record(spec)
                if twin is None or (_strip_wallclock(twin)
                                    != _strip_wallclock(rec)):
                    report.twin_mismatches += 1
                    for o in report.outcomes:
                        if o.run_id == run_id and o.ok:
                            o.status = "mismatch"
                            o.detail = "record differs from fault-free twin"
            if progress is not None and report.records_verified:
                progress(f"twin audit: "
                         f"{report.records_verified - report.twin_mismatches}"
                         f"/{report.records_verified} byte-identical")
    report.wall_s = time.monotonic() - t0  # repro: allow(det-wallclock) campaign wall-clock reporting, host-side
    return report


def completed_record(client: ServeClient,
                     run_id: str) -> dict[str, Any] | None:
    """Fetch a completed record through the service (hit path)."""
    try:
        reply = client.await_result(run_id)
    except ServeConnectionError:
        return None
    return reply.record if reply.ok else None


def _resolve(client: ServeClient, spec: JobSpec,
             report: ServeCampaignReport,
             out: ServeFaultOutcome, *,
             deadline_ms: float | None = None,
             chaos: dict[str, Any] | None = None,
             expect_reason: str | None = None) -> None:
    """Submit and classify the resolution; book-keep the ledger."""
    reply = client.submit(spec, deadline_ms=deadline_ms, chaos=chaos)
    out.run_id = reply.run_id
    if reply.reason in protocol.RETRYABLE_REASONS:
        # Shed before acceptance: not in the ledger, not a failure.
        out.resolution = "shed"
        return
    report.accepted += 1
    if reply.ok and reply.record is not None:
        report.resolved += 1
        out.resolution = "record"
        if expect_reason is not None:
            out.status = "unexpected"
            out.detail = (f"expected {expect_reason}, got a record "
                          f"(cache={reply.cache})")
        return
    if reply.reason in _RESOLVING_REASONS:
        report.resolved += 1
        out.resolution = f"reason:{reply.reason}"
        if expect_reason is not None and reply.reason != expect_reason:
            out.status = "unexpected"
            out.detail = f"expected {expect_reason}, got {reply.reason}"
        return
    out.status = "unresolved"
    out.detail = f"error={reply.error!r} reason={reply.reason!r}"


def _run_one(sc: ServeFaultScenario, client: ServeClient,
             server: _ServerProc,
             report: ServeCampaignReport) -> ServeFaultOutcome:
    t0 = time.monotonic()  # repro: allow(det-wallclock) campaign wall-clock reporting, host-side
    out = ServeFaultOutcome(scenario=sc)
    try:
        if sc.kind == "clean":
            _resolve(client, sc.spec, report, out)

        elif sc.kind == "worker-kill":
            # The job kills its first worker; the pool must retry it on
            # a replacement and still produce the record.
            _resolve(client, sc.spec, report, out,
                     chaos={"kill_worker_attempts": 1})

        elif sc.kind == "poison":
            # The job kills every worker it touches; the pool must
            # quarantine it, and the service must answer a resubmit
            # from quarantine without burning more workers.
            _resolve(client, sc.spec, report, out,
                     chaos={"kill_worker_attempts": 99},
                     expect_reason=protocol.REASON_POISON)
            if out.ok:
                again = client.submit(sc.spec)
                if again.reason != protocol.REASON_POISON:
                    out.status = "unexpected"
                    out.detail = (f"resubmit after quarantine gave "
                                  f"{again.reason!r}, not poison-job")

        elif sc.kind == "deadline":
            # 1 ms is unmeetable for a cold run: the waiter must get a
            # structured deadline reply — and because the execution is
            # shielded, the record must still land for the next caller.
            reply = client.submit(sc.spec, deadline_ms=1.0)
            report.accepted += 1
            out.run_id = reply.run_id
            if reply.ok:
                report.resolved += 1
                out.resolution = "record"   # cache was already warm/fast
            elif reply.reason == protocol.REASON_DEADLINE:
                settled = client.submit(sc.spec)   # no deadline: await it
                if settled.ok and settled.record is not None:
                    report.resolved += 1
                    out.resolution = "reason:deadline-exceeded"
                else:
                    out.status = "unresolved"
                    out.detail = (f"post-deadline settle failed: "
                                  f"{settled.error!r}")
            else:
                out.status = "unexpected"
                out.detail = f"wanted deadline reply, got {reply.reason!r}"

        elif sc.kind == "conn-drop":
            # Submit, hang up before the reply.  The execution must
            # finish server-side; a later submit observes it.
            _raw_send(server.socket_path, protocol.encode(
                {"op": protocol.OP_SUBMIT, "spec": sc.spec.to_dict(),
                 "wait": True}))
            report.accepted += 1
            _settle_after_drop(client, sc.spec, report, out)

        elif sc.kind == "frame-truncate":
            payload = (b"\x00\xff\x80garbage\n",
                       b'{"op": "submit", "spec"\n',
                       protocol.encode({"op": "submit"})[:-10],
                       )[sc.variant % 3]
            _raw_send(server.socket_path, payload)
            # The server must shrug it off: a clean submit right after
            # must work.
            _resolve(client, sc.spec, report, out)

        elif sc.kind == "server-crash":
            # Accept the job, SIGKILL the server mid-flight, restart on
            # the same store+socket: the resubmitted job must execute
            # (taking over the dead server's lease if it got that far).
            client.submit(sc.spec, wait=False)
            server.sigkill()
            server.start()
            report.server_restarts += 1
            report.accepted += 1
            _resolve_crashed(client, sc.spec, report, out)

        else:  # pragma: no cover
            out.status = "unexpected"
            out.detail = f"unknown kind {sc.kind!r}"
    except Exception as e:
        out.status = "unexpected"
        out.detail = f"{type(e).__name__}: {e}"
    out.wall_s = time.monotonic() - t0  # repro: allow(det-wallclock) campaign wall-clock reporting, host-side
    return out


def _settle_after_drop(client: ServeClient, spec: JobSpec,
                       report: ServeCampaignReport,
                       out: ServeFaultOutcome) -> None:
    """After the rude client hung up, the submission it fired must
    still resolve — observe it via a coalescing/hit resubmit."""
    reply = client.submit(spec)
    out.run_id = reply.run_id
    if reply.ok and reply.record is not None:
        report.resolved += 1
        out.resolution = "record"
    elif reply.reason in _RESOLVING_REASONS:
        report.resolved += 1
        out.resolution = f"reason:{reply.reason}"
    else:
        out.status = "unresolved"
        out.detail = f"error={reply.error!r} reason={reply.reason!r}"


def _resolve_crashed(client: ServeClient, spec: JobSpec,
                     report: ServeCampaignReport,
                     out: ServeFaultOutcome) -> None:
    """The server was SIGKILLed holding this job.  The client-side
    contract: resubmit (idempotent) and the restarted server delivers —
    waiting out any stale lease the dead server left behind."""
    reply = client.submit(spec)
    out.run_id = reply.run_id
    if reply.ok and reply.record is not None:
        report.resolved += 1
        out.resolution = "record"
    else:
        out.status = "unresolved"
        out.detail = (f"post-restart resubmit failed: "
                      f"error={reply.error!r} reason={reply.reason!r}")


def report_to_json(report: ServeCampaignReport) -> str:
    return json.dumps(report.to_dict(), sort_keys=True, indent=2)
