"""Interconnect model: cost oracle + reliable delivery protocol."""

from repro.net.network import Network, Endpoint
from repro.net.reliable import ChannelState, Frame, ReliableTransport

__all__ = ["Network", "Endpoint", "ChannelState", "Frame",
           "ReliableTransport"]
