"""Interconnect model."""

from repro.net.network import Network, Endpoint

__all__ = ["Network", "Endpoint"]
