"""Latency/bandwidth interconnect model.

Three transfer regimes, matching AMPI on Charm++'s MPI layer:

* **same process** — a pointer hand-off plus a memcpy when needed;
* **same node, different process** — shared-memory transport;
* **different nodes** — the fabric (HDR InfiniBand on Bridges-2), with a
  rendezvous handshake above the eager threshold.

The network also prices rank migrations (Figure 8): a migration is one
large message carrying the rank's packed memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costs import CostModel


@dataclass(frozen=True)
class Endpoint:
    """Physical location of a PE: (node, OS process within the job)."""

    node: int
    process: int


class Network:
    """Stateless cost oracle for transfers between endpoints."""

    def __init__(self, costs: CostModel):
        self.costs = costs

    def regime(self, src: Endpoint, dst: Endpoint) -> str:
        if src.process == dst.process:
            return "intraprocess"
        if src.node == dst.node:
            return "intranode"
        return "internode"

    def transfer_ns(self, nbytes: int, src: Endpoint, dst: Endpoint) -> int:
        """Time for one message of ``nbytes`` between two endpoints."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        reg = self.regime(src, dst)
        if reg == "intraprocess":
            # In-process delivery: software overhead only; payload moves by
            # reference between ULTs sharing the address space.
            return self.costs.msg_overhead_ns
        if reg == "intranode":
            return self.costs.msg_overhead_ns + self.costs.net_transfer_ns(
                nbytes, inter_node=False
            )
        return self.costs.msg_overhead_ns + self.costs.net_transfer_ns(
            nbytes, inter_node=True
        )

    def migration_ns(self, nbytes: int, src: Endpoint, dst: Endpoint) -> int:
        """Time to move a packed rank of ``nbytes`` (pack cost included)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        if src == dst:
            return self.costs.migration_pack_ns
        base = self.costs.migration_pack_ns + self.costs.memcpy_ns(nbytes)
        if self.regime(src, dst) == "intraprocess":
            return base
        return base + self.transfer_ns(nbytes, src, dst)
