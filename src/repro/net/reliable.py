"""Reliable transport protocol over the cost-oracle :class:`Network`.

:class:`~repro.net.network.Network` prices a transfer; this module makes
delivery *survive faults*.  Every directed pair of virtual ranks is a
channel with its own sequence numbers; each transmission attempt is a
:class:`Frame` carrying a CRC32 header checksum; the receiver keeps a
dedup window per channel; lost or corrupt frames time out at the sender
and are retransmitted with exponential backoff — all on the simulated
clock, through :meth:`JobScheduler.add_timer
<repro.charm.scheduler.JobScheduler.add_timer>` timers.

Fault decisions come from the job's :class:`~repro.ft.plan.FaultInjector`
(one draw per *attempt*, not per MPI send), so a run is deterministic in
the plan seed: same seed, same drops, same retransmission schedule,
byte-identical timeline.  The payload itself is delivered exactly once,
bit-intact, and *in channel order* — a corrupt frame is discarded on
checksum mismatch and retransmitted, and a later frame that overtakes
the retransmission is held at the receiver until the gap fills
(:meth:`ReliableTransport._complete`), preserving MPI's non-overtaking
guarantee — so numerics always match a failure-free run and only
latency is lost.  This replaces the flat
:meth:`~repro.ft.plan.FaultInjector.message_penalty_ns` lump of the
``transport="priced"`` path, which stays available for back-compat.

Local rollback recovery rewinds channels through :meth:`snapshot
<ReliableTransport.seq_snapshot>`/:meth:`rewind
<ReliableTransport.rewind>`: recovering senders reuse their checkpointed
sequence numbers, so their replayed re-sends land below survivors' dedup
windows and are suppressed instead of double-delivered; per-channel
epochs squash retransmission timers that belong to the rolled-back
timeline.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import FaultUnrecoverableError
from repro.perf.counters import (
    CounterSet,
    EV_ACK,
    EV_CKSUM_FAIL,
    EV_DEDUP_DROP,
    EV_FAULT,
    EV_MSG_FAULT_CORRUPT,
    EV_MSG_FAULT_DROP,
    EV_MSG_FAULT_DUP,
    EV_REORDER_HOLD,
    EV_RETRANS,
    EV_RTO_CANCEL,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.messages import Message
    from repro.charm.scheduler import JobScheduler
    from repro.ft.plan import FaultInjector
    from repro.trace.recorder import TraceRecorder

#: a sender gives up (and the job fails, structured) after this many
#: transmission attempts of one frame — only reachable with drop/corrupt
#: probabilities at or near 1.0
MAX_ATTEMPTS = 64

#: exponent cap for the retransmission backoff: rto * 2**min(attempt, cap)
BACKOFF_CAP = 4


def header_checksum(src_vp: int, dst_vp: int, seq: int, tag: int,
                    nbytes: int) -> int:
    """CRC32 over the deterministic wire encoding of a frame header."""
    return zlib.crc32(struct.pack("<qqqqq", src_vp, dst_vp, seq, tag,
                                  nbytes))


@dataclass(slots=True)
class Frame:
    """One transmission attempt of a channel sequence number."""

    src_vp: int
    dst_vp: int
    seq: int          #: channel sequence number (shared by all attempts)
    tag: int
    nbytes: int
    checksum: int     #: as transmitted — differs from the header CRC
                      #: when the fault plan corrupted this attempt
    attempt: int
    sent_at: int

    def checksum_ok(self) -> bool:
        return self.checksum == header_checksum(
            self.src_vp, self.dst_vp, self.seq, self.tag, self.nbytes
        )


class SeqWindow:
    """Receiver-side dedup window: the set of delivered sequence numbers,
    compressed as a low watermark plus a sparse set above it.  With
    in-order release (see :meth:`ReliableTransport._complete`) delivery
    is contiguous and the watermark does all the work; the sparse set
    survives for rewound channels, whose watermark restarts at 0."""

    __slots__ = ("low", "seen")

    def __init__(self) -> None:
        self.low = 0
        self.seen: set[int] = set()

    def __contains__(self, seq: int) -> bool:
        return seq < self.low or seq in self.seen

    def add(self, seq: int) -> None:
        self.seen.add(seq)
        while self.low in self.seen:
            self.seen.remove(self.low)
            self.low += 1

    def reset(self) -> None:
        self.low = 0
        self.seen.clear()


class ChannelState:
    """Per-(src_vp, dst_vp) protocol state."""

    __slots__ = ("next_seq", "window", "epoch", "deliver_next", "pending")

    def __init__(self) -> None:
        self.next_seq = 0        #: sender: next sequence number to assign
        self.window = SeqWindow()  #: receiver: delivered seqs (dedup)
        self.epoch = 0           #: bumped on rollback to squash timers
        self.deliver_next = 0    #: receiver: next seq releasable in order
        #: frames that arrived ahead of a retransmitted predecessor,
        #: held until the gap fills: seq -> (msg, arrival, deliver, pid)
        self.pending: dict[int, tuple[Any, int, Callable, int]] = {}


class ReliableTransport:
    """Executes the seq/ack/retransmit protocol for one job.

    The simulator's send path stays push-based: :meth:`send` runs the
    first attempt immediately and either invokes ``deliver(msg)`` (the
    job's delivery hook) with the final arrival time, or schedules a
    retransmission timer on the scheduler and delivers from the timer
    callback chain.  Acks are modelled as bookkeeping (counter + trace):
    the sender's window is large enough that it never blocks on one, so
    an ack's only protocol effect — cancelling the RTO — is folded into
    not scheduling it.
    """

    def __init__(self, scheduler: "JobScheduler", counters: CounterSet,
                 injector: "FaultInjector | None" = None,
                 rto_ns: int = 50_000,
                 trace: "TraceRecorder | None" = None):
        self.scheduler = scheduler
        self.counters = counters
        self.injector = injector
        self.rto_ns = max(1, int(rto_ns))
        self.trace = trace
        self._channels: dict[tuple[int, int], ChannelState] = {}

    def channel(self, src_vp: int, dst_vp: int) -> ChannelState:
        key = (src_vp, dst_vp)
        ch = self._channels.get(key)
        if ch is None:
            ch = self._channels[key] = ChannelState()
        return ch

    def rto(self, attempt: int) -> int:
        """Retransmission timeout before attempt ``attempt + 1``."""
        return self.rto_ns * (2 ** min(attempt, BACKOFF_CAP))

    # -- the protocol ---------------------------------------------------------------

    def send(self, msg: "Message", transfer_ns: int,
             deliver: Callable[["Message"], None],
             trace_pid: int = 0) -> bool:
        """Transmit ``msg`` (its ``src_vp``/``dst_vp``/``sent_at`` must be
        set); assigns ``msg.chan_seq``.

        Returns False when the channel sequence number was already
        delivered — a replayed re-send after local rollback — in which
        case ``deliver`` is never called (the receiver consumed the
        original before the crash).  Otherwise the frame is delivered
        now or after retransmissions, exactly once.
        """
        ch = self.channel(msg.src_vp, msg.dst_vp)
        seq = ch.next_seq
        ch.next_seq = seq + 1
        msg.chan_seq = seq
        if seq in ch.window:
            self.counters.incr(EV_DEDUP_DROP)
            if self.trace is not None:
                self.trace.instant(
                    "net:dedup-resend", "net", msg.sent_at, pid=trace_pid,
                    tid=msg.src_vp, args={"dst_vp": msg.dst_vp, "seq": seq},
                )
            return False
        self._attempt(ch, msg, transfer_ns, deliver, 0, msg.sent_at,
                      trace_pid)
        return True

    def _attempt(self, ch: ChannelState, msg: "Message", transfer_ns: int,
                 deliver: Callable[["Message"], None], attempt: int,
                 at_ns: int, trace_pid: int) -> None:
        if attempt >= MAX_ATTEMPTS:
            raise FaultUnrecoverableError(
                f"reliable transport gave up on channel "
                f"{msg.src_vp}->{msg.dst_vp} seq {msg.chan_seq} after "
                f"{attempt} attempts",
                reason="retrans-exhausted",
            )
        fault = (self.injector.next_message_fault()
                 if self.injector is not None else None)
        good_sum = header_checksum(msg.src_vp, msg.dst_vp, msg.chan_seq,
                                   msg.tag, msg.nbytes)
        frame = Frame(
            src_vp=msg.src_vp, dst_vp=msg.dst_vp, seq=msg.chan_seq,
            tag=msg.tag, nbytes=msg.nbytes,
            checksum=good_sum ^ 0xFFFFFFFF if fault == "corrupt"
            else good_sum,
            attempt=attempt, sent_at=at_ns,
        )
        counters = self.counters
        tr = self.trace
        if fault is not None:
            counters.incr(EV_FAULT)
            counters.incr({
                "drop": EV_MSG_FAULT_DROP,
                "duplicate": EV_MSG_FAULT_DUP,
                "corrupt": EV_MSG_FAULT_CORRUPT,
            }[fault])
            if tr is not None:
                tr.instant(
                    f"fault:msg-{fault}", "ft", at_ns, pid=trace_pid,
                    tid=msg.src_vp,
                    args={"dst_vp": msg.dst_vp, "seq": msg.chan_seq,
                          "attempt": attempt},
                )

        if fault == "drop":
            self._schedule_retransmit(ch, msg, transfer_ns, deliver,
                                      attempt, at_ns, trace_pid)
            return
        if fault == "corrupt":
            # The frame traverses the wire but fails its checksum at the
            # receiver, which discards it silently; the sender's RTO
            # fires as if it were dropped.
            assert not frame.checksum_ok()
            counters.incr(EV_CKSUM_FAIL)
            if tr is not None:
                tr.instant(
                    "net:checksum-fail", "net", at_ns + transfer_ns,
                    pid=trace_pid, tid=msg.dst_vp,
                    args={"src_vp": msg.src_vp, "seq": msg.chan_seq},
                )
            self._schedule_retransmit(ch, msg, transfer_ns, deliver,
                                      attempt, at_ns, trace_pid)
            return
        if fault == "duplicate":
            # Two copies of the same good frame arrive; the second is
            # inside the dedup window by then and is dropped.
            counters.incr(EV_DEDUP_DROP)
            if tr is not None:
                tr.instant(
                    "net:dedup-drop", "net", at_ns + transfer_ns,
                    pid=trace_pid, tid=msg.dst_vp,
                    args={"src_vp": msg.src_vp, "seq": msg.chan_seq},
                )
        self._complete(ch, msg, at_ns + transfer_ns, deliver, trace_pid)

    def _schedule_retransmit(self, ch: ChannelState, msg: "Message",
                             transfer_ns: int,
                             deliver: Callable[["Message"], None],
                             attempt: int, at_ns: int,
                             trace_pid: int) -> None:
        epoch = ch.epoch
        fire_at = at_ns + self.rto(attempt)

        def retransmit() -> None:
            if ch.epoch != epoch:
                return  # channel rolled back; this timeline is gone
            self.counters.incr(EV_RETRANS)
            if self.trace is not None:
                self.trace.instant(
                    "net:retransmit", "net", fire_at, pid=trace_pid,
                    tid=msg.src_vp,
                    args={"dst_vp": msg.dst_vp, "seq": msg.chan_seq,
                          "attempt": attempt + 1},
                )
            self._attempt(ch, msg, transfer_ns, deliver, attempt + 1,
                          fire_at, trace_pid)

        self.scheduler.add_timer(fire_at, retransmit)

    def _complete(self, ch: ChannelState, msg: "Message", arrival: int,
                  deliver: Callable[["Message"], None],
                  trace_pid: int) -> None:
        """A good frame reached the receiver: ack it, then release it —
        and any frames queued behind it — in sequence order.

        The ack (counter + trace) belongs to the physical arrival, so
        the fault-draw accounting identity (draws == acks + drops +
        corrupts) holds regardless of reordering.  Delivery is gated on
        ``deliver_next``: a frame that overtook a retransmitted
        predecessor is *held* rather than delivered, because MPI
        guarantees non-overtaking per channel — an overtaking halo frame
        would match the wrong iteration's posted receive and silently
        corrupt numerics.  The gap always fills (the sender retries the
        missing seq until it lands or dies retrans-exhausted), at which
        point the contiguous run of held frames flushes with a monotone
        release clock.
        """
        self.counters.incr(EV_ACK)
        if self.trace is not None:
            self.trace.instant(
                "net:ack", "net", arrival, pid=trace_pid, tid=msg.dst_vp,
                args={"src_vp": msg.src_vp, "seq": msg.chan_seq},
            )
        if msg.chan_seq != ch.deliver_next:
            self.counters.incr(EV_REORDER_HOLD)
            if self.trace is not None:
                self.trace.instant(
                    "net:reorder-hold", "net", arrival, pid=trace_pid,
                    tid=msg.dst_vp,
                    args={"src_vp": msg.src_vp, "seq": msg.chan_seq,
                          "awaiting": ch.deliver_next},
                )
            ch.pending[msg.chan_seq] = (msg, arrival, deliver, trace_pid)
            return
        self._release(ch, msg, arrival, deliver)
        floor = arrival
        while ch.deliver_next in ch.pending:
            held, held_at, held_deliver, held_pid = ch.pending.pop(
                ch.deliver_next)
            floor = max(floor, held_at)
            if self.trace is not None:
                self.trace.instant(
                    "net:reorder-release", "net", floor, pid=held_pid,
                    tid=held.dst_vp,
                    args={"src_vp": held.src_vp, "seq": held.chan_seq},
                )
            self._release(ch, held, floor, held_deliver)

    def _release(self, ch: ChannelState, msg: "Message", arrival: int,
                 deliver: Callable[["Message"], None]) -> None:
        """Hand one frame to the job, in order.  The dedup window only
        records *released* seqs: a held-but-undelivered frame must not
        suppress its own replayed re-send after a rollback."""
        ch.window.add(msg.chan_seq)
        ch.deliver_next = msg.chan_seq + 1
        msg.arrival = arrival
        deliver(msg)

    # -- crash support ------------------------------------------------------------------

    def on_crash(self, dead_vps: set[int]) -> int:
        """Suppress pending RTO chains touching dead endpoints.

        Called by the recovery manager the moment a node crash is
        detected — *before* recoverability is even decided — so that
        retransmission timers aimed at (or armed by) a dead rank stop
        firing immediately instead of burning attempts, and fault draws,
        toward the :data:`MAX_ATTEMPTS` cap against an endpoint that no
        longer exists.  Without this, a caught-and-continued
        unrecoverable run can be re-classified as ``retrans-exhausted``
        by a stale timer chain, and recovery pricing depends on how many
        zombie retransmissions happened to fire first.

        Bumping the channel epoch is the cancellation mechanism (the
        same one :meth:`rewind` uses): the timer callbacks remain in the
        scheduler heap but become no-ops.  Fresh sends on the channel —
        e.g. a recovered rank replaying — capture the new epoch and
        retransmit normally.  Returns the number of channels squashed.
        """
        squashed = 0
        for (src, dst), ch in self._channels.items():
            if src in dead_vps or dst in dead_vps:
                ch.epoch += 1
                squashed += 1
        if squashed:
            self.counters.incr(EV_RTO_CANCEL, squashed)
        return squashed

    # -- local-rollback support -------------------------------------------------------

    def seq_snapshot(self) -> dict[tuple[int, int], int]:
        """Sender-side next_seq per channel (checkpoint state for the
        message log)."""
        return {key: ch.next_seq for key, ch in self._channels.items()}

    def rewind(self, vps: set[int],
               send_seqs: dict[tuple[int, int], int]) -> None:
        """Roll the channels of recovering ranks ``vps`` back.

        Channels *from* a recovering rank resume at their checkpointed
        sequence number, so replayed re-sends reuse the original seqs
        and survivors' dedup windows suppress them; frames of theirs
        held for reordering belong to the lost timeline and are dropped
        (the replay re-sends them).  Channels *to* a recovering rank
        clear their window (the receiver's mailbox was reset;
        re-deliveries during replay are legitimate) and restart their
        in-order cursor at the sender's post-rewind ``next_seq`` — the
        lowest seq that will actually arrive on the wire, whether the
        sender is a co-recovering rank replaying from its checkpointed
        cursor or a survivor continuing where it left off (the message
        log re-delivers anything older without touching the transport).
        Every touched channel's epoch is bumped, squashing in-flight
        retransmission timers from the lost timeline.
        """
        for (src, dst), ch in self._channels.items():
            if src in vps:
                ch.next_seq = send_seqs.get((src, dst), 0)
                ch.pending.clear()
                ch.epoch += 1
            if dst in vps:
                ch.window.reset()
                ch.pending.clear()
                ch.deliver_next = ch.next_seq
                ch.epoch += 1

    # -- global-rollback support --------------------------------------------------------

    def resync(self) -> None:
        """Resynchronize every channel after a *global* rollback.

        Global recovery flushes the scheduler outright, so every
        in-flight retransmission chain dies with its timers; the ranks
        then replay from their checkpoints and re-send with *fresh*
        sequence numbers (``next_seq`` is not checkpointed on this
        path).  A seq that was mid-retransmission at the crash will
        therefore never complete — without this hook it would pin
        ``deliver_next`` forever and every post-rollback frame on the
        channel would be held as "out of order".  Jump each receive
        cursor to the channel's send cursor, drop frames held for the
        dead timeline, and bump epochs as belt-and-braces against any
        surviving timer callback.
        """
        for ch in self._channels.values():
            ch.epoch += 1
            ch.pending.clear()
            ch.deliver_next = ch.next_seq
