"""Global Offset Table model.

The GOT is the indirection table PIC code uses to reach global data and
(via the PLT) external functions.  Two privatization methods hang off it:

* **Swapglobals** keeps one GOT *copy per virtual rank*, each pointing at
  that rank's private copies of the global variables, and swaps the active
  GOT at every ULT context switch.  Static variables never have GOT
  entries — that is precisely why Swapglobals cannot privatize them.
* **PIEglobals** must *fix up* GOT entries after manually copying a PIE's
  code+data segments, because the entries still point into the original
  segments mapped by the system loader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LinkError


@dataclass(frozen=True)
class GotSlot:
    """One GOT entry: which symbol it resolves."""

    symbol: str
    is_func: bool = False   #: PLT-style entry for a function


class GotTemplate:
    """Linker-produced GOT layout: ordered slots, one per referenced symbol."""

    def __init__(self) -> None:
        self._slots: list[GotSlot] = []
        self._index: dict[str, int] = {}

    def add(self, symbol: str, is_func: bool = False) -> int:
        """Add a slot for ``symbol`` (idempotent); returns its index."""
        if symbol in self._index:
            return self._index[symbol]
        idx = len(self._slots)
        self._slots.append(GotSlot(symbol, is_func))
        self._index[symbol] = idx
        return idx

    def index_of(self, symbol: str) -> int:
        try:
            return self._index[symbol]
        except KeyError:
            raise LinkError(f"no GOT slot for symbol {symbol!r}") from None

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[GotSlot]:
        return iter(self._slots)

    @property
    def size_bytes(self) -> int:
        return 8 * len(self._slots)

    def instantiate(self) -> "GotInstance":
        return GotInstance(self)


class GotInstance:
    """One materialized GOT: slot index -> resolved simulated address."""

    __slots__ = ("template", "addresses")

    def __init__(self, template: GotTemplate):
        self.template = template
        self.addresses: list[int] = [0] * len(template)

    def resolve(self, symbol: str, address: int) -> None:
        self.addresses[self.template.index_of(symbol)] = address

    def address_of(self, symbol: str) -> int:
        addr = self.addresses[self.template.index_of(symbol)]
        if addr == 0:
            raise LinkError(f"GOT slot for {symbol!r} is unresolved")
        return addr

    def entries(self) -> Iterator[tuple[GotSlot, int]]:
        return zip(iter(self.template), self.addresses)

    def clone(self) -> "GotInstance":
        inst = GotInstance(self.template)
        inst.addresses = list(self.addresses)
        return inst

    def rebase(self, old_base: int, old_end: int, delta: int) -> int:
        """Shift every entry pointing into [old_base, old_end) by ``delta``.

        Returns the number of entries updated.  This is the *precise* GOT
        fixup; PIEglobals in the paper instead scans raw data memory for
        pointer-looking values (see
        :meth:`repro.privatization.pieglobals.PieGlobals`), which this
        method serves as ground truth for in tests.
        """
        n = 0
        for i, a in enumerate(self.addresses):
            if old_base <= a < old_end:
                self.addresses[i] = a + delta
                n += 1
        return n
