"""Static linker: compile units -> one ELF image.

The linker's job here is to produce the structures the privatization
methods depend on:

* which variables get **GOT entries** (PIC globals — not statics, not
  const data), with the Swapglobals caveat that modern ``ld`` optimizes
  the GOT reference away at each access unless the binary is linked with
  an old or patched linker;
* which variables live in the **TLS segment** (tagged ``thread_local``);
* ABS64 relocations for address-initialized data (``int *p = &x;``);
* the **code/data/rodata layouts** whose sizes drive copy, migration and
  icache costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError, UnsupportedToolchain
from repro.elf.got import GotTemplate
from repro.elf.image import ElfImage, ElfType
from repro.elf.relocation import Relocation, RelocKind
from repro.elf.symbols import Symbol, SymbolBinding, SymbolKind, SymbolTable
from repro.machine import Toolchain
from repro.mem.segments import CodeImage, FuncDef, SegmentImage, SegmentKind, VarDef


@dataclass
class CompileUnit:
    """One translation unit handed to the linker."""

    name: str
    functions: list[FuncDef] = field(default_factory=list)
    variables: list[VarDef] = field(default_factory=list)
    static_ctors: list[str] = field(default_factory=list)
    #: `int *p = &x;`-style initializations: var name -> target symbol
    addr_inits: dict[str, str] = field(default_factory=dict)
    #: symbols this unit references but does not define
    undefined_refs: list[str] = field(default_factory=list)


class StaticLinker:
    """Links compile units into an :class:`ElfImage`."""

    def __init__(self, toolchain: Toolchain):
        self.toolchain = toolchain

    def link(
        self,
        name: str,
        units: list[CompileUnit],
        *,
        pie: bool = True,
        swapglobals_got: bool = False,
        entry: str = "main",
        pad_code_to: int = 0,
        needed: list[str] | None = None,
        allow_undefined: frozenset[str] | None = None,
    ) -> ElfImage:
        """Produce a linked image.

        Parameters
        ----------
        pie:
            Build as ET_DYN (Position Independent Executable).  Required
            by PIP/FS/PIEglobals.
        swapglobals_got:
            Keep a GOT reference at *every* global-variable access, the
            Swapglobals prerequisite.  Raises
            :class:`UnsupportedToolchain` when the linker would optimize
            those references away (ld > 2.23 without the patch).
        pad_code_to:
            Grow .text to at least this many bytes (models real code
            size: e.g. ADCIRC's ~14 MB segment).
        allow_undefined:
            Symbols that may stay unresolved at static-link time because
            the dynamic loader (or the AMPI function-pointer shim) will
            provide them.
        """
        if swapglobals_got and not self.toolchain.linker_keeps_got_refs:
            raise UnsupportedToolchain(
                f"Swapglobals needs ld <= 2.23 or a patched linker; this "
                f"toolchain has ld {'.'.join(map(str, self.toolchain.linker_version))} "
                f"which optimizes out the GOT reference at each global access"
            )
        if pie and not self.toolchain.supports_pie:
            raise UnsupportedToolchain("toolchain cannot produce PIE binaries")

        symbols = SymbolTable()
        funcs: list[FuncDef] = []
        data_vars: list[VarDef] = []
        ro_vars: list[VarDef] = []
        tls_vars: list[VarDef] = []
        ctors: list[str] = []
        addr_inits: dict[str, str] = {}
        relocations: list[Relocation] = []

        for unit in units:
            for f in unit.functions:
                symbols.define(
                    Symbol(f.name, SymbolKind.FUNC, SymbolBinding.GLOBAL,
                           "text", f.code_bytes),
                    unit=unit.name,
                )
                funcs.append(f)
            for v in unit.variables:
                binding = (SymbolBinding.LOCAL if v.static
                           else SymbolBinding.GLOBAL)
                if v.tls:
                    kind, section = SymbolKind.TLS, "tls"
                    tls_vars.append(v)
                elif v.const:
                    kind, section = SymbolKind.OBJECT, "rodata"
                    ro_vars.append(v)
                else:
                    kind, section = SymbolKind.OBJECT, "data"
                    data_vars.append(v)
                symbols.define(Symbol(v.name, kind, binding, section, v.size),
                               unit=unit.name)
            ctors.extend(unit.static_ctors)
            addr_inits.update(unit.addr_inits)
            for ref in unit.undefined_refs:
                if ref not in symbols:
                    symbols.define(
                        Symbol(ref, SymbolKind.FUNC, SymbolBinding.GLOBAL,
                               "text", defined=False)
                    )

        # Undefined-symbol check.
        allowed = allow_undefined or frozenset()
        missing = [s for s in symbols.undefined() if s not in allowed]
        if missing:
            raise LinkError(f"undefined symbols: {', '.join(sorted(missing))}")

        for c in ctors:
            if not any(f.name == c for f in funcs):
                raise LinkError(f"static ctor {c!r} has no definition")
        if entry and not any(f.name == entry for f in funcs):
            raise LinkError(f"entry point {entry!r} has no definition")

        # --- GOT construction -------------------------------------------------
        got = GotTemplate()
        pic = pie or swapglobals_got
        for v in data_vars:
            if v.static:
                continue  # statics are local: PC-relative, never in the GOT
            if pic or swapglobals_got:
                got.add(v.name)
                relocations.append(Relocation(RelocKind.GOT_ENTRY, v.name))
        for v in tls_vars:
            relocations.append(Relocation(RelocKind.TPOFF, v.name))
        for var, target in addr_inits.items():
            tgt = symbols.lookup(target)
            if tgt is None:
                raise LinkError(
                    f"address initializer of {var!r} references undefined "
                    f"symbol {target!r}"
                )
            relocations.append(
                Relocation(RelocKind.ABS64, target, where=f"data:{var}")
            )

        code = CodeImage(funcs, pad_to=pad_code_to)
        data = SegmentImage(SegmentKind.DATA, data_vars)
        rodata = SegmentImage(SegmentKind.RODATA, ro_vars)
        tls = SegmentImage(SegmentKind.TLS, tls_vars)

        return ElfImage(
            name=name,
            etype=ElfType.ET_DYN if pie else ElfType.ET_EXEC,
            code=code,
            data=data,
            rodata=rodata,
            tls=tls,
            got=got,
            symbols=symbols,
            relocations=relocations,
            static_ctors=ctors,
            needed=list(needed or []),
            entry=entry,
            link_base=0 if pie else 0x40_0000,
            addr_inits=addr_inits,
        )
