"""Symbol tables for the simulated ELF format."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LinkError


class SymbolKind(enum.Enum):
    FUNC = "func"
    OBJECT = "object"   # data variable
    TLS = "tls"


class SymbolBinding(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"     # static linkage: invisible to other units, NOT in the GOT
    WEAK = "weak"


@dataclass(frozen=True)
class Symbol:
    name: str
    kind: SymbolKind
    binding: SymbolBinding
    section: str          #: "text", "data", "rodata", "tls"
    size: int = 8
    defined: bool = True


class SymbolTable:
    """Name -> Symbol with ELF-style binding resolution.

    Strong (GLOBAL) duplicate definitions are a link error; a strong
    definition overrides weak ones; LOCAL symbols are kept under a
    unit-qualified key so different units can each have a ``static count``.
    """

    def __init__(self) -> None:
        self._syms: dict[str, Symbol] = {}

    def define(self, sym: Symbol, unit: str = "") -> str:
        """Add a symbol; returns the key it was stored under."""
        key = sym.name
        if sym.binding is SymbolBinding.LOCAL:
            key = f"{unit}::{sym.name}" if unit else sym.name
            if key in self._syms:
                raise LinkError(f"duplicate local symbol {key!r}")
            self._syms[key] = sym
            return key

        existing = self._syms.get(key)
        if existing is None or not existing.defined:
            self._syms[key] = sym
            return key
        if not sym.defined:
            return key  # reference to an already-defined symbol
        if existing.binding is SymbolBinding.WEAK and sym.binding is SymbolBinding.GLOBAL:
            self._syms[key] = sym
            return key
        if sym.binding is SymbolBinding.WEAK:
            return key  # keep the existing strong/weak definition
        raise LinkError(f"duplicate strong symbol {sym.name!r}")

    def lookup(self, name: str) -> Symbol | None:
        return self._syms.get(name)

    def require(self, name: str) -> Symbol:
        s = self._syms.get(name)
        if s is None or not s.defined:
            raise LinkError(f"undefined symbol {name!r}")
        return s

    def __contains__(self, name: str) -> bool:
        return name in self._syms

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._syms.values())

    def __len__(self) -> int:
        return len(self._syms)

    def globals_(self) -> list[Symbol]:
        return [s for s in self._syms.values()
                if s.binding is not SymbolBinding.LOCAL]

    def undefined(self) -> list[str]:
        return [k for k, s in self._syms.items() if not s.defined]
