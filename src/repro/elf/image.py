"""Linked ELF image model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.elf.got import GotTemplate
from repro.elf.relocation import Relocation
from repro.elf.symbols import SymbolTable
from repro.mem.segments import CodeImage, SegmentImage


class ElfType(enum.Enum):
    ET_EXEC = "exec"   #: fixed-address executable
    ET_DYN = "dyn"     #: PIE or shared object (relocatable anywhere)


ELF_HEADER_BYTES = 4096  #: headers + phdrs + misc sections, rounded up


@dataclass
class ElfImage:
    """The static linker's output: segment layouts + tables.

    Instances of the segments are created at load time (by the dynamic
    loader) or by privatization methods making extra copies.
    """

    name: str
    etype: ElfType
    code: CodeImage
    data: SegmentImage
    rodata: SegmentImage
    tls: SegmentImage
    got: GotTemplate
    symbols: SymbolTable
    relocations: list[Relocation] = field(default_factory=list)
    static_ctors: list[str] = field(default_factory=list)
    needed: list[str] = field(default_factory=list)   #: DT_NEEDED sonames
    entry: str = "main"
    link_base: int = 0        #: preferred base; 0 for ET_DYN
    #: data variables initialized with the address of another symbol
    #: (`int *p = &x;`): var name -> symbol name.  These land as ABS64
    #: relocations and are what the PIEglobals pointer scan must find.
    addr_inits: dict[str, str] = field(default_factory=dict)

    @property
    def is_pie(self) -> bool:
        return self.etype is ElfType.ET_DYN

    @property
    def load_size(self) -> int:
        """Bytes of address space one instance occupies."""
        return self.code.size + self.data.size + self.rodata.size

    @property
    def file_size(self) -> int:
        """On-disk size (what FSglobals copies per rank)."""
        return ELF_HEADER_BYTES + self.load_size + self.tls.size + self.got.size_bytes

    @property
    def runtime_reloc_count(self) -> int:
        return sum(1 for r in self.relocations if r.needs_runtime_work)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.etype.value}, "
            f"text={self.code.size}B data={self.data.size}B "
            f"rodata={self.rodata.size}B tls={self.tls.size}B "
            f"got={len(self.got)} entries, "
            f"{len(self.relocations)} relocs, "
            f"{len(self.static_ctors)} static ctors, "
            f"file={self.file_size}B"
        )
