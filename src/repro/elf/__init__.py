"""Simulated ELF object format and GNU-flavoured dynamic loader.

This package models exactly the pieces of the ELF/glibc machinery the
paper's privatization methods exploit: Position Independent Executables,
the Global Offset Table, TLS segments, ``dlopen``, ``dlmopen`` with
link-map namespaces (and glibc's 12-namespace practical limit), ``dlsym``,
and ``dl_iterate_phdr``.
"""

from repro.elf.symbols import Symbol, SymbolKind, SymbolBinding, SymbolTable
from repro.elf.got import GotTemplate, GotInstance
from repro.elf.relocation import Relocation, RelocKind
from repro.elf.image import ElfImage, ElfType
from repro.elf.linker import StaticLinker, CompileUnit
from repro.elf.loader import DynamicLoader, LinkMap, LM_ID_BASE, LM_ID_NEWLM

__all__ = [
    "Symbol",
    "SymbolKind",
    "SymbolBinding",
    "SymbolTable",
    "GotTemplate",
    "GotInstance",
    "Relocation",
    "RelocKind",
    "ElfImage",
    "ElfType",
    "StaticLinker",
    "CompileUnit",
    "DynamicLoader",
    "LinkMap",
    "LM_ID_BASE",
    "LM_ID_NEWLM",
]
