"""Relocations for the simulated ELF format.

Only the relocation *kinds* that matter to the paper's techniques are
modelled; the loader charges a per-entry processing cost, which is part of
why ``dlmopen``-per-rank startup (PIPglobals) costs more than mapping the
segments once (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RelocKind(enum.Enum):
    #: data symbol reached through a GOT slot (PIC global access)
    GOT_ENTRY = "got"
    #: function call through the PLT
    PLT_CALL = "plt"
    #: absolute 64-bit address patched into data (e.g. a global holding
    #: the address of another global: `int *p = &x;`)
    ABS64 = "abs64"
    #: PC-relative access (PIE direct data access; no runtime work)
    PC_REL = "pcrel"
    #: TLS offset relative to the thread pointer
    TPOFF = "tpoff"
    #: copy relocation: a fixed-address executable gets its own copy of a
    #: shared object's data symbol at load time.  Against a *writable*
    #: symbol this silently forks the state the library keeps updating —
    #: the same shared-mutable-state bug class privatization closes, so
    #: the sanitizer flags it.
    COPY = "copy"


@dataclass(frozen=True)
class Relocation:
    kind: RelocKind
    symbol: str
    #: where the relocation is applied: "got", or "data:<varname>" for
    #: ABS64 slots inside the data segment
    where: str = "got"

    @property
    def needs_runtime_work(self) -> bool:
        """PC-relative references are resolved by construction."""
        return self.kind is not RelocKind.PC_REL
