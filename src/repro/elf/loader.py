"""GNU-flavoured dynamic loader for the simulated ELF format.

Implements the four loader facilities the paper's methods are built on:

``dlopen``
    Map one instance of an image into the process (refcounted: opening the
    same image again returns the same link map — the "open once per
    process" behaviour PIEglobals relies on in SMP mode).
``dlmopen``
    glibc extension: load into a fresh link-map *namespace*, duplicating
    code and data segments.  Stock glibc supports ~12 usable namespaces;
    the limit lives in :class:`repro.machine.Toolchain` and exceeding it
    raises :class:`~repro.errors.NamespaceLimitError` (PIPglobals' cap).
``dlsym``
    Resolve a symbol inside one link map.
``dl_iterate_phdr``
    Iterate program headers of everything loaded — how PIEglobals finds
    the freshly mapped PIE's code/data segment boundaries by diffing the
    iteration before and after its ``dlopen`` call.

Crucially, all segment mappings created here are flagged
``via_loader=True``: they come from the loader's *internal* mmap, which
Isomalloc cannot intercept.  Any rank whose private memory includes such
mappings is unmigratable — the PIPglobals/FSglobals limitation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import LoaderError, NamespaceLimitError, SymbolNotFound
from repro.elf.got import GotInstance
from repro.elf.image import ElfImage
from repro.elf.relocation import RelocKind
from repro.elf.symbols import SymbolKind
from repro.machine import Toolchain
from repro.mem.address_space import MapKind, Mapping, VirtualMemory
from repro.mem.heap import Allocation
from repro.mem.layout import LOADER_AREA_BASE, LOADER_AREA_END, page_align_up
from repro.mem.segments import CodeInstance, SegmentInstance
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.perf.counters import CounterSet, EV_DLMOPEN, EV_DLOPEN
from repro.trace.recorder import TraceRecorder

LM_ID_BASE = 0
LM_ID_NEWLM = -1

#: where the loader's pseudo-heap for static-constructor allocations lives
_CTOR_HEAP_BASE = LOADER_AREA_END - (1 << 32)


@dataclass
class LinkMap:
    """One loaded object in one namespace."""

    handle: int
    lmid: int
    image: ElfImage
    code: CodeInstance
    data: SegmentInstance
    rodata: SegmentInstance
    got: GotInstance
    mappings: list[Mapping] = field(default_factory=list)
    ctor_allocations: list[Allocation] = field(default_factory=list)
    refcount: int = 1

    @property
    def base(self) -> int:
        return self.code.base

    def segment_span(self) -> tuple[int, int]:
        """(start, end) covering code+data+rodata, in load order."""
        return self.code.base, self.rodata.end


@dataclass(frozen=True)
class PhdrInfo:
    """What one dl_iterate_phdr callback invocation reports."""

    name: str
    lmid: int
    code_start: int
    code_size: int
    data_start: int
    data_size: int
    rodata_start: int
    rodata_size: int


class LoaderCtx:
    """Execution context handed to static constructors (C++ global ctors).

    Constructors run at ``dlopen`` time — *before* any privatization can
    intercept them — so their heap allocations land on the loader's own
    pseudo-heap.  PIEglobals later replicates these allocations per rank
    and rebases any stored pointers.
    """

    def __init__(self, loader: "DynamicLoader", linkmap: LinkMap):
        self._loader = loader
        self._lm = linkmap
        self.data = linkmap.data
        self.rodata = linkmap.rodata

    def addr_of(self, symbol: str) -> int:
        return self._loader.dlsym(self._lm, symbol)

    def malloc(
        self,
        nbytes: int,
        data: Any = None,
        tag: str = "",
        ptr_slots: dict[str, int] | None = None,
        fn_ptr_slots: dict[str, int] | None = None,
    ) -> Allocation:
        alloc = self._loader._ctor_malloc(nbytes, data, tag)
        if ptr_slots:
            alloc.ptr_slots.update(ptr_slots)
        if fn_ptr_slots:
            alloc.fn_ptr_slots.update(fn_ptr_slots)
        self._lm.ctor_allocations.append(alloc)
        return alloc


class DynamicLoader:
    """Per-OS-process dynamic loader instance."""

    def __init__(
        self,
        vm: VirtualMemory,
        toolchain: Toolchain,
        costs: CostModel,
        clock: SimClock | None = None,
        counters: CounterSet | None = None,
        trace: TraceRecorder | None = None,
        trace_pid: int = 0,
    ):
        self.vm = vm
        self.toolchain = toolchain
        self.costs = costs
        self.clock = clock or SimClock()
        self.counters = counters if counters is not None else CounterSet()
        self.trace = trace
        self.trace_pid = trace_pid
        self._handles = itertools.count(1)
        #: lmid -> {image name -> LinkMap}
        self._namespaces: dict[int, dict[str, LinkMap]] = {}
        self._load_order: list[LinkMap] = []
        self._next_base = LOADER_AREA_BASE
        self._ctor_bump = _CTOR_HEAP_BASE

    # -- address-space carving ----------------------------------------------

    def _place_segments(self, image: ElfImage, rank_tag: str) -> tuple[int, list[Mapping]]:
        """Map code, data, rodata contiguously (PIE layout: data directly
        after code, which is why IP-relative global access works)."""
        base = self._next_base
        if not image.is_pie:
            base = image.link_base
        total = page_align_up(image.code.size) + page_align_up(image.data.size) \
            + page_align_up(image.rodata.size)
        if image.is_pie:
            self._next_base = page_align_up(base + total)
            if self._next_base > LOADER_AREA_END:
                raise LoaderError("loader address area exhausted")

        maps = []
        cursor = base
        for kind, size in (
            (MapKind.CODE, image.code.size),
            (MapKind.DATA, image.data.size),
            (MapKind.DATA, image.rodata.size),
        ):
            m = self.vm.map_at(
                cursor,
                page_align_up(size),
                kind,
                via_loader=True,
                tag=f"{image.name}:{kind.value}{rank_tag}",
            )
            maps.append(m)
            cursor = m.end
        return base, maps

    # -- relocation + construction --------------------------------------------

    def _materialize(self, image: ElfImage, lmid: int) -> LinkMap:
        base, maps = self._place_segments(image, f"@ns{lmid}")
        code = image.code.instantiate(base)
        data = image.data.instantiate(maps[0].end)
        rodata = image.rodata.instantiate(maps[1].end)
        got = image.got.instantiate()
        lm = LinkMap(
            handle=next(self._handles),
            lmid=lmid,
            image=image,
            code=code,
            data=data,
            rodata=rodata,
            got=got,
            mappings=maps,
        )
        maps[0].payload = code
        maps[1].payload = data
        maps[2].payload = rodata

        # Charge mapping + relocation processing time.
        self.clock.advance(self.costs.map_ns(image.load_size))
        self.clock.advance(self.costs.reloc_ns_per_entry * image.runtime_reloc_count)

        self._process_relocations(lm)
        self._run_static_ctors(lm)
        return lm

    def _process_relocations(self, lm: LinkMap) -> None:
        image = lm.image
        for reloc in image.relocations:
            if reloc.kind is RelocKind.GOT_ENTRY:
                lm.got.resolve(reloc.symbol, lm.data.addr_of(reloc.symbol))
            elif reloc.kind is RelocKind.PLT_CALL:
                lm.got.resolve(reloc.symbol, lm.code.addr_of(reloc.symbol))
            elif reloc.kind is RelocKind.ABS64:
                # Patch the address of `symbol` into the data slot named in
                # `where` ("data:<var>").
                _, _, var = reloc.where.partition(":")
                lm.data.write(var, self._symbol_address(lm, reloc.symbol))
            # PC_REL and TPOFF need no load-time patching here.

    def _symbol_address(self, lm: LinkMap, name: str) -> int:
        sym = lm.image.symbols.lookup(name)
        if sym is None:
            raise SymbolNotFound(f"{lm.image.name}: no symbol {name!r}")
        if sym.kind is SymbolKind.FUNC:
            return lm.code.addr_of(name)
        if sym.section == "rodata":
            return lm.rodata.addr_of(name)
        return lm.data.addr_of(name)

    def _run_static_ctors(self, lm: LinkMap) -> None:
        ctx = LoaderCtx(self, lm)
        t0 = self.clock.now
        for name in lm.image.static_ctors:
            fn = lm.code.fn(name)
            fn(ctx)
            self.clock.advance(self.costs.malloc_ns)
        if self.trace is not None and lm.image.static_ctors:
            self.trace.span(
                f"ctors:{lm.image.name}", "loader", t0, self.clock.now - t0,
                pid=self.trace_pid,
                args={"ctors": len(lm.image.static_ctors), "lmid": lm.lmid},
            )

    def _ctor_malloc(self, nbytes: int, data: Any, tag: str) -> Allocation:
        addr = self._ctor_bump
        self._ctor_bump += (nbytes + 15) & ~15
        self.clock.advance(self.costs.malloc_ns)
        return Allocation(addr=addr, nbytes=nbytes, data=data, tag=tag or "ctor")

    # -- public API -----------------------------------------------------------

    def dlopen(self, image: ElfImage) -> LinkMap:
        """Load ``image`` into the base namespace (refcounted)."""
        ns = self._namespaces.setdefault(LM_ID_BASE, {})
        existing = ns.get(image.name)
        if existing is not None:
            existing.refcount += 1
            self.clock.advance(self.costs.dlsym_ns)  # cache-hit path is cheap
            return existing
        t0 = self.clock.now
        self.clock.advance(self.costs.dlopen_base_ns)
        self.counters.incr(EV_DLOPEN)
        lm = self._materialize(image, LM_ID_BASE)
        if self.trace is not None:
            self.trace.span(
                f"dlopen:{image.name}", "loader", t0, self.clock.now - t0,
                pid=self.trace_pid,
                args={"lmid": LM_ID_BASE, "load_size": image.load_size,
                      "relocs": image.runtime_reloc_count},
            )
        ns[image.name] = lm
        self._load_order.append(lm)
        return lm

    def dlmopen(self, image: ElfImage, lmid: int = LM_ID_NEWLM) -> LinkMap:
        """Load ``image`` into a new (or given) link-map namespace."""
        if not self.toolchain.has_dlmopen:
            raise LoaderError(
                "dlmopen is a glibc extension; this system's libc "
                f"({self.toolchain.libc.value}) does not provide it"
            )
        if lmid == LM_ID_NEWLM:
            lmid = max(self._namespaces, default=LM_ID_BASE) + 1
        limit = self.toolchain.dlmopen_namespace_limit
        new_ns = lmid not in self._namespaces
        extra_namespaces = sum(1 for k in self._namespaces if k != LM_ID_BASE)
        if new_ns and extra_namespaces >= limit:
            raise NamespaceLimitError(
                f"cannot create namespace {lmid}: glibc's link-map "
                f"namespace limit ({limit}) is exhausted; PIP ships a "
                f"patched glibc to raise it"
            )
        ns = self._namespaces.setdefault(lmid, {})
        if image.name in ns:
            lm = ns[image.name]
            lm.refcount += 1
            return lm
        t0 = self.clock.now
        self.clock.advance(self.costs.dlmopen_base_ns)
        self.counters.incr(EV_DLMOPEN)
        lm = self._materialize(image, lmid)
        if self.trace is not None:
            self.trace.span(
                f"dlmopen:{image.name}", "loader", t0, self.clock.now - t0,
                pid=self.trace_pid,
                args={"lmid": lmid, "load_size": image.load_size,
                      "relocs": image.runtime_reloc_count},
            )
        ns[image.name] = lm
        self._load_order.append(lm)
        return lm

    def dlsym(self, lm: LinkMap, name: str) -> int:
        """Resolve ``name`` in ``lm``; returns a simulated address."""
        self.clock.advance(self.costs.dlsym_ns)
        try:
            return self._symbol_address(lm, name)
        except SymbolNotFound:
            raise
        except Exception as e:  # segment lookup failures -> dlsym error
            raise SymbolNotFound(f"dlsym({lm.image.name}, {name!r}): {e}") from e

    def dlclose(self, lm: LinkMap) -> None:
        lm.refcount -= 1
        if lm.refcount > 0:
            return
        ns = self._namespaces.get(lm.lmid, {})
        ns.pop(lm.image.name, None)
        if not ns and lm.lmid != LM_ID_BASE:
            # Return the namespace to the dlmopen budget.  Leaving the
            # empty dict behind made every open/close cycle permanently
            # consume one of the toolchain's ~12 namespaces, so a rank
            # pool that cycled libraries eventually hit a spurious
            # NamespaceLimitError.
            self._namespaces.pop(lm.lmid, None)
        if lm in self._load_order:
            self._load_order.remove(lm)
        for m in lm.mappings:
            self.vm.unmap(m.start)
        lm.mappings.clear()
        # Drop resolved state that pointed into the now-unmapped
        # segments.  A stale handle (or another image's GOT resolved via
        # dlsym into this one) must fail loudly at its next use instead
        # of silently reading freed addresses — the sanitizer's
        # got-dangling lint exists to catch the cross-image case.
        lm.got.addresses = [0] * len(lm.got.addresses)
        lm.ctor_allocations.clear()

    def dl_iterate_phdr(
        self, callback: Callable[[PhdrInfo], Any] | None = None
    ) -> list[PhdrInfo]:
        """Iterate program headers of every loaded object, in load order."""
        if not self.toolchain.has_dl_iterate_phdr:
            raise LoaderError(
                "dl_iterate_phdr is unavailable on this system's libc"
            )
        self.clock.advance(self.costs.phdr_iterate_ns)
        infos = []
        for lm in self._load_order:
            info = PhdrInfo(
                name=lm.image.name,
                lmid=lm.lmid,
                code_start=lm.code.base,
                code_size=lm.image.code.size,
                data_start=lm.data.base,
                data_size=lm.image.data.size,
                rodata_start=lm.rodata.base,
                rodata_size=lm.image.rodata.size,
            )
            infos.append(info)
            if callback is not None:
                callback(info)
        return infos

    # -- introspection ----------------------------------------------------------

    def namespace_count(self) -> int:
        return len(self._namespaces)

    def link_maps(self) -> Iterable[LinkMap]:
        return tuple(self._load_order)

    def loaded(self, image_name: str, lmid: int = LM_ID_BASE) -> LinkMap | None:
        return self._namespaces.get(lmid, {}).get(image_name)
