"""The AMPI function-pointer shim (paper Figure 4).

PIP/FS/PIEglobals duplicate the *application's* code per rank — but the
AMPI runtime itself must stay a single instance per OS process.  The
trick: the app is linked not against MPI functions but against a shim of
**function pointers** (one data-segment slot per MPI entry point).  At
startup, the loader utility ``dlsym``s ``AMPI_FuncPtr_Unpack`` inside each
privatized copy and hands it a transport struct of pointers into the one
runtime; the shim stores them in its (per-copy) globals.

This module builds the shim compile unit that gets linked into the user
binary, and the transport from a runtime instance.  Tests assert the
defining property: every rank's shim slots hold pointers to the *same*
runtime object even though the slots themselves are privatized.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.elf.linker import CompileUnit
from repro.mem.segments import FuncDef, VarDef
from repro.privatization._util import SHIM_PREFIX

#: The AMPI API surface carried through the shim (names as exposed on
#: :class:`~repro.ampi.api.MpiHandle`).
AMPI_API_NAMES: tuple[str, ...] = (
    "init",
    "initialized",
    "finalize",
    "rank",
    "size",
    "send",
    "recv",
    "sendrecv",
    "isend",
    "irecv",
    "wait",
    "test",
    "waitall",
    "waitany",
    "testall",
    "probe",
    "iprobe",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "scan",
    "exscan",
    "reduce_scatter",
    "op_create",
    "comm_dup",
    "comm_split",
    "comm_world",
    "migrate",
    "migrate_to",
    "resize",
    "num_pes",
    "checkpoint",
    "yield",
    "wtime",
    "abort",
)


def _unpack_body(loader_ctx: Any) -> None:
    """Placeholder body for ``AMPI_FuncPtr_Unpack``.

    The simulated loader utility performs the unpacking directly (see
    :func:`repro.privatization._util.unpack_funcptr_shim`); the symbol
    exists so dlsym can find it, exactly as Figure 4's refactored headers
    arrange.
    """


def shim_compile_unit() -> CompileUnit:
    """The translation unit ``ampi_funcptr_shim.C`` contributes."""
    variables = [
        VarDef(SHIM_PREFIX + name, init=0, write_once_same=True)
        for name in AMPI_API_NAMES
    ]
    return CompileUnit(
        name="ampi_funcptr_shim",
        functions=[FuncDef("AMPI_FuncPtr_Unpack", 192, _unpack_body)],
        variables=variables,
    )


def pack_transport(runtime: Any) -> dict[str, Callable]:
    """``AMPI_FuncPtr_Pack``: gather the runtime's API entry points.

    Returns name -> bound method on the *single* runtime instance; each
    callable takes the acting rank as its first argument.
    """
    transport: dict[str, Callable] = {}
    for name in AMPI_API_NAMES:
        impl = getattr(runtime, f"_api_{name}".replace("yield", "yield_"), None)
        if impl is None:
            raise AttributeError(
                f"runtime lacks API implementation _api_{name}"
            )
        transport[name] = impl
    return transport
