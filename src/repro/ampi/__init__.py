"""Adaptive MPI: the MPI interface over virtualized ranks.

The public entry point is :class:`~repro.ampi.runtime.AmpiJob`:

>>> from repro import ampi
>>> job = ampi.AmpiJob(source, nvp=8, method="pieglobals")
>>> result = job.run()

Inside program functions, ``ctx.mpi`` exposes an mpi4py-flavoured API
(lowercase object methods: ``send``/``recv``/``bcast``/``reduce``/...).
"""

from repro.ampi.datatypes import payload_nbytes, INT, DOUBLE, BYTE
from repro.ampi.ops import SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, MAXLOC, MINLOC
from repro.ampi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.ampi.requests import Request
from repro.ampi.runtime import AmpiJob, JobResult
from repro.ampi.checkpoint import Checkpoint

__all__ = [
    "payload_nbytes",
    "INT",
    "DOUBLE",
    "BYTE",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MAXLOC",
    "MINLOC",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "AmpiJob",
    "JobResult",
    "Checkpoint",
]
