"""Reduction operators, built-in and user-defined.

User-defined ops are where PIEglobals needs special handling: the op is
registered with a *function pointer* which, with per-rank code copies, is
a different address on every rank.  ``MPI_Op_create`` therefore stores
the offset from the creating rank's code base, and every application
rebases the offset against a rank resident on the applying PE
(Section 3.3).  Builtins are address-free and unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.node import Pe


class Op:
    """Base reduction operator."""

    commutative: bool = True
    name: str = "op"

    def apply(self, pe: "Pe", a: Any, b: Any) -> Any:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Op {self.name}>"


class BuiltinOp(Op):
    def __init__(self, name: str, fn: Callable[[Any, Any], Any],
                 commutative: bool = True):
        self.name = name
        self._fn = fn
        self.commutative = commutative

    def apply(self, pe: "Pe", a: Any, b: Any) -> Any:
        return self._fn(a, b)


def _elementwise(np_fn, py_fn):
    def fn(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(a, b)
        return py_fn(a, b)
    return fn


SUM = BuiltinOp("MPI_SUM", _elementwise(np.add, lambda a, b: a + b))
PROD = BuiltinOp("MPI_PROD", _elementwise(np.multiply, lambda a, b: a * b))
MAX = BuiltinOp("MPI_MAX", _elementwise(np.maximum, max))
MIN = BuiltinOp("MPI_MIN", _elementwise(np.minimum, min))
LAND = BuiltinOp("MPI_LAND", _elementwise(np.logical_and,
                                          lambda a, b: bool(a) and bool(b)))
LOR = BuiltinOp("MPI_LOR", _elementwise(np.logical_or,
                                        lambda a, b: bool(a) or bool(b)))
BAND = BuiltinOp("MPI_BAND", _elementwise(np.bitwise_and,
                                          lambda a, b: a & b))
BOR = BuiltinOp("MPI_BOR", _elementwise(np.bitwise_or, lambda a, b: a | b))
#: (value, location) pairs
MAXLOC = BuiltinOp("MPI_MAXLOC", lambda a, b: max(a, b))
MINLOC = BuiltinOp("MPI_MINLOC", lambda a, b: min(a, b))


@dataclass
class UserOp(Op):
    """A user-defined operator created via ``op_create``.

    Exactly one of ``fn_addr`` (methods with shared code) or
    ``fn_offset`` (PIEglobals-style per-rank code copies, rebased through
    ``rebase``) is used.
    """

    name: str
    commutative: bool
    fn_addr: int | None = None
    fn_offset: int | None = None
    #: ``rebase(pe, offset) -> address`` — provided by the privatization
    #: method; raises ReductionOffsetError on an empty PE.
    rebase: Callable[["Pe", int], int] | None = None
    #: ``invoke(pe, addr, a, b) -> value`` — provided by the runtime: runs
    #: the function at ``addr`` in the context of a rank resident on ``pe``.
    invoke: Callable[["Pe", int, Any, Any], Any] | None = None

    def apply(self, pe: "Pe", a: Any, b: Any) -> Any:
        if self.invoke is None:
            raise MpiError(f"user op {self.name!r} is not bound to a runtime")
        if self.fn_offset is not None:
            if self.rebase is None:
                raise MpiError(
                    f"user op {self.name!r} stores an offset but has no "
                    "rebase hook"
                )
            addr = self.rebase(pe, self.fn_offset)
        elif self.fn_addr is not None:
            addr = self.fn_addr
        else:
            raise MpiError(f"user op {self.name!r} has no function")
        return self.invoke(pe, addr, a, b)
