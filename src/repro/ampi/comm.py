"""Communicators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property

from repro.charm.messages import ANY_SOURCE, ANY_TAG  # re-exported
from repro.errors import MpiError

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator"]

_comm_ids = itertools.count(0)


@dataclass(frozen=True)
class Communicator:
    """An ordered group of virtual ranks with a private tag space."""

    cid: int
    group: tuple[int, ...]    #: position (comm rank) -> vp
    name: str = "comm"

    @staticmethod
    def world(nvp: int) -> "Communicator":
        return Communicator(cid=next(_comm_ids), group=tuple(range(nvp)),
                            name="MPI_COMM_WORLD")

    @property
    def size(self) -> int:
        return len(self.group)

    @cached_property
    def _rank_by_vp(self) -> dict[int, int]:
        # The linear tuple.index scan here was O(nvp) per send — at
        # paper-scale VP counts that made membership lookup quadratic
        # job-wide.  The group is immutable, so invert it once.
        return {vp: i for i, vp in enumerate(self.group)}

    def rank_of_vp(self, vp: int) -> int:
        try:
            return self._rank_by_vp[vp]
        except KeyError:
            raise MpiError(
                f"vp {vp} is not a member of {self.name}"
            ) from None

    def vp_of_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise MpiError(
                f"rank {rank} out of range for {self.name} (size {self.size})"
            )
        return self.group[rank]

    def __contains__(self, vp: int) -> bool:
        return vp in self._rank_by_vp

    def derive(self, group: tuple[int, ...], name: str) -> "Communicator":
        if not group:
            raise MpiError("cannot create an empty communicator")
        return Communicator(cid=next(_comm_ids), group=group, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator({self.name}, size={self.size})"
