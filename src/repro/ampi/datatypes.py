"""Datatypes and payload sizing.

Payloads are ordinary Python objects (numpy arrays for the fast path,
pickleable objects otherwise, mpi4py-style); the simulator only needs
their *simulated byte size* to price transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Datatype:
    name: str
    extent: int

    def __mul__(self, count: int) -> int:
        return self.extent * count


INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)
BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)

_SCALAR_BYTES = 8


def payload_nbytes(obj: Any) -> int:
    """Simulated wire size of a payload object.

    numpy arrays report their true buffer size; containers sum their
    elements plus a small per-element envelope; scalars cost 8 bytes.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, np.generic):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Unknown object: a conservative envelope.
    return 64
