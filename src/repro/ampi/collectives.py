"""Collective communication engine.

Collectives are synchronizing rendezvous: each participating rank enters
with a contribution and blocks until the operation's completion rule
releases it.  Cost models are tree-based (``ceil(log2 n)`` steps at the
communicator's worst latency regime, plus payload serialization), which
is what makes overdecomposition + load balancing visible in end-to-end
application timing: a barrier releases at the *latest* arrival, so
imbalance is paid at every synchronization point.

Reductions run over the Charm-style PE spanning tree
(:mod:`repro.charm.reduction`), which is what surfaces the PIEglobals
empty-PE user-op error.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.charm.reduction import reduce_over_pes, tree_depth
from repro.errors import MpiError
from repro.ampi.comm import Communicator
from repro.ampi.datatypes import payload_nbytes
from repro.ampi.ops import Op
from repro.perf.counters import EV_REPLAYED

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiJob
    from repro.charm.vrank import VirtualRank


def _copy_payload(obj: Any) -> Any:
    """Receiver-side buffer copy (each rank owns its result)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, str, bytes, bool, type(None))):
        return obj
    return copy.deepcopy(obj)


@dataclass
class CollectiveState:
    kind: str
    comm: Communicator
    seq: int
    params: dict[str, Any] = field(default_factory=dict)
    arrivals: dict[int, tuple[int, Any]] = field(default_factory=dict)
    blocked: set[int] = field(default_factory=set)
    #: comm rank -> (release time, result); filled by the last arriver
    releases: dict[int, tuple[int, Any]] = field(default_factory=dict)
    done: bool = False


class CollectiveEngine:
    def __init__(self, job: "AmpiJob"):
        self.job = job
        self._states: dict[tuple[int, int], CollectiveState] = {}
        self._seq: dict[tuple[int, int], int] = {}
        self.completed = 0

    def reset(self) -> None:
        """Forget every in-flight collective and sequence number.

        Fault-recovery rollback: ranks replay from the checkpoint, so
        their collective call numbering restarts from zero; partially
        assembled rendezvous states are garbage from the lost timeline.
        ``completed`` is cumulative history and is kept.
        """
        self._states.clear()
        self._seq.clear()

    def purge_ranks(self, vps: set[int]) -> None:
        """Retract dead ranks from in-flight rendezvous (local recovery).

        Survivors' partial states stay live — the recovering ranks
        re-arrive during replay and complete them; only the lost
        timeline's arrivals must go.
        """
        for state in self._states.values():
            comm = state.comm
            for vp in vps:
                if vp in comm.group:
                    r = comm.rank_of_vp(vp)
                    state.arrivals.pop(r, None)
                    state.blocked.discard(r)

    # -- entry point -------------------------------------------------------------

    def enter(self, rank: "VirtualRank", comm: Communicator, kind: str,
              contribution: Any = None, **params: Any) -> Any:
        """Called by the MPI layer from the rank's ULT; blocks as needed."""
        my = comm.rank_of_vp(rank.vp)
        key = (rank.vp, comm.cid)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1

        ml = self.job.msglog
        if ml is not None and ml.is_replaying(rank.vp):
            # A recovering rank re-enters a collective that completed in
            # the lost timeline.  Survivors will never re-enter it, so a
            # fresh rendezvous could not complete — replay the logged
            # result at its recorded release time instead.
            hit = ml.replay_collective(rank.vp, comm.cid, seq)
            if hit is not None:
                release, result = hit
                t_arrive = rank.clock.now
                rank.clock.advance_to(release)
                self.job.counters.incr(EV_REPLAYED)
                self._trace_phase(rank, comm, kind, seq, t_arrive,
                                  rank.clock.now)
                return result

        skey = (comm.cid, seq)
        state = self._states.get(skey)
        if state is None:
            state = CollectiveState(kind=kind, comm=comm, seq=seq,
                                    params=dict(params))
            self._states[skey] = state
        else:
            if state.kind != kind:
                raise MpiError(
                    f"collective mismatch on {comm.name} (call #{seq}): "
                    f"rank {my} called {kind} but others called {state.kind}"
                )
            for k, v in params.items():
                if k in ("root", "op") and state.params.get(k) is not v \
                        and state.params.get(k) != v:
                    raise MpiError(
                        f"{kind} on {comm.name}: inconsistent {k!r} across "
                        f"ranks ({state.params.get(k)!r} vs {v!r})"
                    )

        if my in state.arrivals:
            raise MpiError(
                f"rank {my} entered {kind} #{seq} on {comm.name} twice"
            )
        t_arrive = rank.clock.now
        state.arrivals[my] = (t_arrive, contribution)

        if len(state.arrivals) < comm.size:
            state.blocked.add(my)
            self.job.scheduler.block_current(f"MPI_{kind}")
            # woken: releases has our slot now
            release, result = state.releases[my]
            rank.clock.advance_to(release)
            self._trace_phase(rank, comm, kind, seq, t_arrive, release)
            return result

        # Last arriver completes the operation and wakes everyone.
        self._finish(state)
        state.done = True
        self.completed += 1
        del self._states[skey]
        if ml is not None:
            # Log at completion for *every* participant: logging on each
            # rank's own release would miss ranks that die while blocked,
            # and exactly those need the result during replay.
            for r, (rel, res) in state.releases.items():
                ml.log_collective(comm.vp_of_rank(r), comm.cid, seq,
                                  rel, res)
        for r in state.blocked:
            vp = comm.vp_of_rank(r)
            release, _ = state.releases[r]
            self.job.scheduler.wake(self.job.rank_of(vp), release)
        release, result = state.releases[my]
        rank.clock.advance_to(release)
        self._trace_phase(rank, comm, kind, seq, t_arrive, release)
        return result

    def _trace_phase(self, rank: "VirtualRank", comm: Communicator,
                     kind: str, seq: int, t_arrive: int,
                     release: int) -> None:
        """One rank's arrival-to-release interval inside a collective."""
        tr = self.job.trace
        if tr is None:
            return
        tr.span(f"coll:{kind}", "coll", t_arrive,
                max(0, release - t_arrive),
                pid=self.job.trace_pid_of(rank.pe), tid=rank.vp,
                args={"comm": comm.name, "seq": seq})

    # -- completion rules -----------------------------------------------------------

    def _finish(self, state: CollectiveState) -> None:
        fn = getattr(self, f"_finish_{state.kind}", None)
        if fn is None:
            raise MpiError(f"unknown collective kind {state.kind!r}")
        fn(state)

    def _regime_latency(self, comm: Communicator) -> int:
        """Worst pairwise latency among the comm's current PE placement."""
        costs = self.job.costs
        nodes = set()
        procs = set()
        for vp in comm.group:
            pe = self.job.rank_of(vp).pe
            nodes.add(pe.node_index)
            procs.add(pe.process.index)
        if len(nodes) > 1:
            return costs.net_latency_inter_ns
        if len(procs) > 1:
            return costs.net_latency_intra_ns
        return 0

    def _step_ns(self, comm: Communicator, nbytes: int = 0) -> int:
        costs = self.job.costs
        lat = self._regime_latency(comm)
        bw = (costs.net_bandwidth_inter_bpns if lat >= costs.net_latency_inter_ns
              else costs.net_bandwidth_intra_bpns)
        ser = int(nbytes / bw) if nbytes else 0
        return costs.collective_step_ns + lat + ser

    @staticmethod
    def _max_arrival(state: CollectiveState) -> int:
        return max(t for t, _ in state.arrivals.values())

    def _finish_barrier(self, state: CollectiveState) -> None:
        depth = tree_depth(state.comm.size)
        release = self._max_arrival(state) + depth * self._step_ns(state.comm)
        state.releases = {r: (release, None) for r in state.arrivals}

    def _finish_bcast(self, state: CollectiveState) -> None:
        comm = state.comm
        root = state.params["root"]
        root_time, value = state.arrivals[root]
        nbytes = payload_nbytes(value)
        depth = tree_depth(comm.size)
        ready = root_time + depth * self._step_ns(comm, nbytes)
        state.releases = {}
        for r, (t, _) in state.arrivals.items():
            if r == root:
                state.releases[r] = (max(t, root_time), value)
            else:
                state.releases[r] = (max(t, ready), _copy_payload(value))

    def _reduce_result(self, state: CollectiveState) -> tuple[Any, int]:
        """Run the PE-tree reduction; returns (result, op applications)."""
        comm = state.comm
        op: Op = state.params["op"]
        contributions: dict[int, list[Any]] = {}
        # Deterministic: contributions in comm-rank order, grouped by the
        # *current* PE of each rank (this is where migration-created empty
        # PEs become interior tree nodes).
        for r in range(comm.size):
            t, v = state.arrivals[r]
            pe = self.job.rank_of(comm.vp_of_rank(r)).pe
            contributions.setdefault(pe.index, []).append(_copy_payload(v))
        result, ops = reduce_over_pes(
            self.job.pes, contributions,
            lambda pe, a, b: op.apply(pe, a, b),
        )
        return result, ops

    def _finish_reduce(self, state: CollectiveState) -> None:
        comm = state.comm
        root = state.params["root"]
        result, ops = self._reduce_result(state)
        nbytes = payload_nbytes(result)
        depth = tree_depth(len(self.job.pes))
        T = self._max_arrival(state)
        root_release = (T + depth * self._step_ns(comm, nbytes)
                        + ops * self.job.costs.reduction_op_ns)
        state.releases = {}
        for r, (t, _) in state.arrivals.items():
            if r == root:
                state.releases[r] = (root_release, result)
            else:
                # Non-roots contribute and leave.
                state.releases[r] = (t + self._step_ns(comm), None)

    def _finish_allreduce(self, state: CollectiveState) -> None:
        comm = state.comm
        result, ops = self._reduce_result(state)
        nbytes = payload_nbytes(result)
        depth = tree_depth(len(self.job.pes))
        release = (self._max_arrival(state)
                   + 2 * depth * self._step_ns(comm, nbytes)
                   + ops * self.job.costs.reduction_op_ns)
        state.releases = {
            r: (release, _copy_payload(result)) for r in state.arrivals
        }

    def _finish_gather(self, state: CollectiveState) -> None:
        comm = state.comm
        root = state.params["root"]
        values = [state.arrivals[r][1] for r in range(comm.size)]
        total = sum(payload_nbytes(v) for v in values)
        depth = tree_depth(comm.size)
        T = self._max_arrival(state)
        root_release = T + depth * self._step_ns(comm) + int(
            total / self.job.costs.net_bandwidth_inter_bpns
        )
        state.releases = {}
        for r, (t, _) in state.arrivals.items():
            if r == root:
                state.releases[r] = (root_release,
                                     [_copy_payload(v) for v in values])
            else:
                state.releases[r] = (t + self._step_ns(comm), None)

    def _finish_allgather(self, state: CollectiveState) -> None:
        comm = state.comm
        values = [state.arrivals[r][1] for r in range(comm.size)]
        total = sum(payload_nbytes(v) for v in values)
        depth = tree_depth(comm.size)
        release = self._max_arrival(state) + depth * self._step_ns(comm, total)
        state.releases = {
            r: (release, [_copy_payload(v) for v in values])
            for r in state.arrivals
        }

    def _finish_scatter(self, state: CollectiveState) -> None:
        comm = state.comm
        root = state.params["root"]
        root_time, seq = state.arrivals[root]
        if seq is None or len(seq) != comm.size:
            raise MpiError(
                f"scatter root must contribute exactly {comm.size} items"
            )
        depth = tree_depth(comm.size)
        state.releases = {}
        for r, (t, _) in state.arrivals.items():
            chunk = seq[r]
            ready = root_time + depth * self._step_ns(
                comm, payload_nbytes(chunk)
            )
            if r == root:
                state.releases[r] = (max(t, root_time), _copy_payload(chunk))
            else:
                state.releases[r] = (max(t, ready), _copy_payload(chunk))

    def _finish_alltoall(self, state: CollectiveState) -> None:
        comm = state.comm
        n = comm.size
        for r in range(n):
            seq = state.arrivals[r][1]
            if seq is None or len(seq) != n:
                raise MpiError(
                    f"alltoall rank {r} must contribute exactly {n} items"
                )
        total = sum(
            payload_nbytes(v) for r in range(n) for v in state.arrivals[r][1]
        )
        depth = tree_depth(n)
        release = self._max_arrival(state) + depth * self._step_ns(comm, total)
        state.releases = {}
        for r in range(n):
            t, _ = state.arrivals[r]
            received = [_copy_payload(state.arrivals[j][1][r]) for j in range(n)]
            state.releases[r] = (release, received)

    def _finish_comm_dup(self, state: CollectiveState) -> None:
        comm = state.comm
        dup = comm.derive(comm.group, f"{comm.name}+dup")
        self.job.register_comm(dup)
        depth = tree_depth(comm.size)
        release_base = self._max_arrival(state) + depth * self._step_ns(comm)
        state.releases = {r: (release_base, dup) for r in state.arrivals}

    def _finish_comm_split(self, state: CollectiveState) -> None:
        comm = state.comm
        by_color: dict[Any, list[tuple[int, int]]] = {}
        for r in range(comm.size):
            color, key = state.arrivals[r][1]
            if color is not None:
                by_color.setdefault(color, []).append((key, r))
        comms: dict[Any, Communicator] = {}
        for color, members in by_color.items():
            members.sort()
            group = tuple(comm.vp_of_rank(r) for _, r in members)
            comms[color] = comm.derive(group, f"{comm.name}/split{color}")
            self.job.register_comm(comms[color])
        depth = tree_depth(comm.size)
        release = self._max_arrival(state) + depth * self._step_ns(comm)
        state.releases = {}
        for r in range(comm.size):
            color, _ = state.arrivals[r][1]
            state.releases[r] = (release, comms.get(color))

    def _finish_lb_sync(self, state: CollectiveState) -> None:
        # Load balancing is runtime policy; the job fills state.releases.
        self.job._lb_finish(state)

    def _finish_resize(self, state: CollectiveState) -> None:
        self.job._resize_finish(state)

    def _finish_checkpoint(self, state: CollectiveState) -> None:
        from repro.ampi.checkpoint import Checkpoint

        comm = state.comm
        T = self._max_arrival(state)
        barrier = tree_depth(comm.size) * self._step_ns(comm)
        bc = self.job.buddy_ckpt
        if bc is not None:
            # Double in-memory scheme: snapshots replicate to buddy
            # processes over the network, no shared-FS traffic.  A
            # request arriving inside the configured interval coalesces
            # into the previous checkpoint (barrier only).
            if bc.due(T):
                extra = bc.take(self.job, T)
                self.job.checkpoints.append(bc.checkpoint)
            else:
                bc.coalesced += 1
                extra = 0
            release = T + barrier + extra
            state.releases = {r: (release, None) for r in state.arrivals}
            return

        ckpt = Checkpoint.capture(self.job)
        self.job.checkpoints.append(ckpt)
        # Every process streams its ranks' state to the shared FS.
        io_ns = self.job.costs.fs_write_ns(
            ckpt.nbytes, max(1, self.job.layout.total_processes)
        )
        release = T + barrier + io_ns
        state.releases = {r: (release, None) for r in state.arrivals}

    def _finish_exscan(self, state: CollectiveState) -> None:
        """Exclusive prefix reduction: rank 0 receives None."""
        comm = state.comm
        op: Op = state.params["op"]
        depth = tree_depth(comm.size)
        step = self._step_ns(comm)
        state.releases = {}
        acc = None
        prefix_max_t = 0
        for r in range(comm.size):
            t, v = state.arrivals[r]
            prefix_max_t = max(prefix_max_t, t)
            state.releases[r] = (
                prefix_max_t + depth * step,
                _copy_payload(acc) if acc is not None else None,
            )
            pe = self.job.rank_of(comm.vp_of_rank(r)).pe
            acc = _copy_payload(v) if acc is None else op.apply(pe, acc, v)

    def _finish_reduce_scatter(self, state: CollectiveState) -> None:
        """Elementwise reduce of per-rank vectors; rank i keeps item i."""
        comm = state.comm
        op: Op = state.params["op"]
        n = comm.size
        for r in range(n):
            seq = state.arrivals[r][1]
            if seq is None or len(seq) != n:
                raise MpiError(
                    f"reduce_scatter rank {r} must contribute exactly "
                    f"{n} items"
                )
        depth = tree_depth(len(self.job.pes))
        T = self._max_arrival(state)
        total = sum(payload_nbytes(state.arrivals[r][1]) for r in range(n))
        release = T + depth * self._step_ns(comm, total // max(1, n))
        state.releases = {}
        ops_applied = 0
        for i in range(n):
            pe = self.job.rank_of(comm.vp_of_rank(i)).pe
            acc = _copy_payload(state.arrivals[0][1][i])
            for r in range(1, n):
                acc = op.apply(pe, acc, state.arrivals[r][1][i])
                ops_applied += 1
            state.releases[i] = (
                release + ops_applied * self.job.costs.reduction_op_ns,
                acc,
            )

    def _finish_scan(self, state: CollectiveState) -> None:
        comm = state.comm
        op: Op = state.params["op"]
        depth = tree_depth(comm.size)
        step = self._step_ns(comm)
        state.releases = {}
        acc = None
        prefix_max_t = 0
        for r in range(comm.size):
            t, v = state.arrivals[r]
            prefix_max_t = max(prefix_max_t, t)
            pe = self.job.rank_of(comm.vp_of_rank(r)).pe
            acc = _copy_payload(v) if acc is None else op.apply(pe, acc, v)
            state.releases[r] = (
                prefix_max_t + depth * step, _copy_payload(acc)
            )
