"""The MPI facade handed to program functions as ``ctx.mpi``.

Method names follow mpi4py's lowercase object-communication convention
(``send``/``recv``/``bcast``/``reduce``/...).  Every call dispatches
through the rank's *calltable*: for methods built with the function-
pointer shim (PIP/FS/PIEglobals) the table was populated by
``AMPI_FuncPtr_Unpack`` from the rank's privatized shim slots, and points
at the single per-job runtime — calling through it exercises the Figure 4
machinery for real.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.ampi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.ampi.ops import Op, SUM
from repro.ampi.requests import Request, Status
from repro.errors import MpiError
from repro.perf.counters import EV_SHIM_DISPATCH

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.vrank import VirtualRank


class MpiHandle:
    """Per-rank MPI entry object."""

    def __init__(self, rank: "VirtualRank",
                 calltable: dict[str, Callable],
                 via_shim: bool = False):
        self._rank = rank
        self._calltable = calltable
        #: True when the calltable was unpacked from the rank's privatized
        #: function-pointer shim slots (PIP/FS/PIEglobals builds)
        self.via_shim = via_shim

    def _call(self, name: str, *args: Any, **kw: Any) -> Any:
        try:
            fn = self._calltable[name]
        except KeyError:
            raise MpiError(
                f"MPI entry point {name!r} missing from the calltable "
                "(shim not unpacked?)"
            ) from None
        if self.via_shim:
            self._rank.counters.incr(EV_SHIM_DISPATCH)
        return fn(self._rank, *args, **kw)

    # -- setup / teardown ------------------------------------------------------

    def init(self) -> None:
        """MPI_Init."""
        self._call("init")

    def initialized(self) -> bool:
        return self._call("initialized")

    def finalize(self) -> None:
        """MPI_Finalize (synchronizing, like a final barrier)."""
        self._call("finalize")

    # -- identity -----------------------------------------------------------------

    def rank(self, comm: Communicator | None = None) -> int:
        """MPI_Comm_rank."""
        return self._call("rank", comm)

    def size(self, comm: Communicator | None = None) -> int:
        """MPI_Comm_size."""
        return self._call("size", comm)

    @property
    def world(self) -> Communicator:
        return self._call("comm_world")

    # -- point-to-point ---------------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0,
             comm: Communicator | None = None) -> None:
        """Blocking (eager) send."""
        self._call("send", payload, dest, tag, comm)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Communicator | None = None,
             status: Status | None = None) -> Any:
        """Blocking receive; returns the payload."""
        return self._call("recv", source, tag, comm, status)

    def sendrecv(self, payload: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 comm: Communicator | None = None) -> Any:
        return self._call("sendrecv", payload, dest, source, sendtag,
                          recvtag, comm)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              comm: Communicator | None = None) -> Request:
        return self._call("isend", payload, dest, tag, comm)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None) -> Request:
        return self._call("irecv", source, tag, comm)

    def wait(self, request: Request) -> Any:
        """Block until the request completes; returns recv payload."""
        return self._call("wait", request)

    def test(self, request: Request) -> tuple[bool, Any]:
        return self._call("test", request)

    def waitall(self, requests: Sequence[Request]) -> list[Any]:
        return self._call("waitall", requests)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None) -> Status:
        """Blocking probe."""
        return self._call("probe", source, tag, comm)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               comm: Communicator | None = None) -> Status | None:
        """Nonblocking probe; None when no matching message is queued."""
        return self._call("iprobe", source, tag, comm)

    # -- collectives -----------------------------------------------------------------------

    def barrier(self, comm: Communicator | None = None) -> None:
        self._call("barrier", comm)

    def bcast(self, value: Any = None, root: int = 0,
              comm: Communicator | None = None) -> Any:
        return self._call("bcast", value, root, comm)

    def reduce(self, value: Any, op: Op = SUM, root: int = 0,
               comm: Communicator | None = None) -> Any:
        return self._call("reduce", value, op, root, comm)

    def allreduce(self, value: Any, op: Op = SUM,
                  comm: Communicator | None = None) -> Any:
        return self._call("allreduce", value, op, comm)

    def gather(self, value: Any, root: int = 0,
               comm: Communicator | None = None) -> list[Any] | None:
        return self._call("gather", value, root, comm)

    def allgather(self, value: Any,
                  comm: Communicator | None = None) -> list[Any]:
        return self._call("allgather", value, comm)

    def scatter(self, values: Sequence[Any] | None, root: int = 0,
                comm: Communicator | None = None) -> Any:
        return self._call("scatter", values, root, comm)

    def alltoall(self, values: Sequence[Any],
                 comm: Communicator | None = None) -> list[Any]:
        return self._call("alltoall", values, comm)

    def scan(self, value: Any, op: Op = SUM,
             comm: Communicator | None = None) -> Any:
        return self._call("scan", value, op, comm)

    def exscan(self, value: Any, op: Op = SUM,
               comm: Communicator | None = None) -> Any:
        """MPI_Exscan: exclusive prefix reduction (rank 0 gets None)."""
        return self._call("exscan", value, op, comm)

    def reduce_scatter(self, values: Sequence[Any], op: Op = SUM,
                       comm: Communicator | None = None) -> Any:
        """MPI_Reduce_scatter_block: reduce vectors elementwise, rank i
        keeps element i."""
        return self._call("reduce_scatter", values, op, comm)

    def waitany(self, requests: Sequence[Request]) -> tuple[int, Any]:
        """MPI_Waitany: (index of the first completion, its payload)."""
        return self._call("waitany", requests)

    def testall(self, requests: Sequence[Request]) -> tuple[bool, list[Any]]:
        return self._call("testall", requests)

    # -- operators / communicators -------------------------------------------------------------

    def op_create(self, fn_name: str, commute: bool = True) -> Op:
        """MPI_Op_create over a *program function* (by name).

        Under PIEglobals the function's address differs per rank, so the
        op records an offset from this rank's code base (Section 3.3).
        """
        return self._call("op_create", fn_name, commute)

    def comm_dup(self, comm: Communicator | None = None) -> Communicator:
        return self._call("comm_dup", comm)

    def comm_split(self, color: int, key: int = 0,
                   comm: Communicator | None = None) -> Communicator:
        return self._call("comm_split", color, key, comm)

    # -- AMPI extensions ------------------------------------------------------------------------

    def migrate(self) -> None:
        """AMPI_Migrate: collective load-balancing sync point."""
        self._call("migrate")

    def migrate_to(self, pe_index: int) -> None:
        """AMPI_Migrate_to: move this rank to a specific PE."""
        self._call("migrate_to", pe_index)

    def yield_(self) -> None:
        """AMPI_Yield: give up the PE to the next ready rank (the
        Figure 6 context-switch microbenchmark primitive)."""
        self._call("yield")

    def resize(self, n_active_pes: int) -> None:
        """AMPI shrink/expand: collectively repack ranks onto the first
        ``n_active_pes`` PEs (or spread back out when growing)."""
        self._call("resize", n_active_pes)

    def my_pe(self) -> int:
        """CkMyPe analogue: the PE this rank currently runs on."""
        return self._rank.pe.index

    def num_pes(self) -> int:
        return self._call("num_pes")

    def checkpoint(self) -> None:
        """Collective in-memory checkpoint of all rank state."""
        self._call("checkpoint")

    # -- misc ---------------------------------------------------------------------------------------

    def wtime(self) -> float:
        """MPI_Wtime in simulated seconds."""
        return self._call("wtime")

    def abort(self, errorcode: int = 1) -> None:
        self._call("abort", errorcode)
