"""Nonblocking-communication requests."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

_req_ids = itertools.count(1)


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


@dataclass(slots=True)
class Status:
    """MPI_Status analogue filled in at completion."""

    source: int = -1
    tag: int = -1
    nbytes: int = 0


@dataclass(slots=True)
class Request:
    """Handle for an in-flight isend/irecv."""

    kind: RequestKind
    vp: int                      #: owning rank (vp)
    comm_id: int
    src: int = -1                #: recv: requested source (comm rank)
    tag: int = -1
    rid: int = field(default_factory=lambda: next(_req_ids))
    completed: bool = False
    completion_time: int = 0     #: simulated ns at which it completed
    payload: Any = None          #: recv: delivered data
    status: Status = field(default_factory=Status)

    def complete(self, when: int, payload: Any = None,
                 source: int = -1, tag: int = -1, nbytes: int = 0) -> None:
        self.completed = True
        self.completion_time = when
        self.payload = payload
        self.status = Status(source=source, tag=tag, nbytes=nbytes)
