"""The AMPI runtime: builds, starts, and runs virtualized MPI jobs.

:class:`AmpiJob` is the package's main entry point.  It owns the whole
object graph — machine topology, loaders, Isomalloc arena, privatization
method, scheduler, message plumbing, collectives, migration and load
balancing — and returns a :class:`JobResult` with simulated-time metrics
for every figure in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.ampi.api import MpiHandle
from repro.ampi.collectives import CollectiveEngine
from repro.ampi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.ampi.datatypes import payload_nbytes
from repro.ampi.funcptr import pack_transport, shim_compile_unit
from repro.ampi.ops import Op, UserOp
from repro.ampi.requests import Request, RequestKind, Status
from repro.charm.lb import RankStat, get_strategy, summarize_loads
from repro.charm.locmgr import LocationManager
from repro.charm.messages import Mailbox, Message
from repro.charm.migration import MigrationEngine, MigrationRecord
from repro.charm.node import JobLayout, build_topology
from repro.charm.reduction import tree_depth
from repro.charm.scheduler import JobScheduler
from repro.charm.vrank import VirtualRank
from repro.elf.loader import DynamicLoader
from repro.errors import (
    FaultUnrecoverableError,
    MpiAbort,
    MpiError,
    ReductionOffsetError,
    ReproError,
)
from repro.fs.sharedfs import SharedFileSystem
from repro.machine import GENERIC_LINUX, MachineModel
from repro.mem.address_space import MapKind
from repro.mem.heap import RankHeap
from repro.mem.isomalloc import IsomallocArena
from repro.mem.layout import DEFAULT_SLOT_SIZE
from repro.ft.buddy import BuddyCheckpointer, FtConfig
from repro.ft.msglog import MessageLogger
from repro.ft.plan import FaultInjector, FaultPlan
from repro.ft.recovery import LocalRecoveryManager, RecoveryManager
from repro.net.network import Network
from repro.net.reliable import ReliableTransport
from repro.perf.counters import (
    CounterSet,
    EV_DEDUP_DROP,
    EV_FAULT,
    EV_MSG_BYTES,
    EV_MSG_FAULT_CORRUPT,
    EV_MSG_FAULT_DROP,
    EV_MSG_FAULT_DUP,
    EV_MSG_SENT,
    EV_REPLAYED,
)
from repro.privatization import get_method
from repro.privatization.base import SetupEnv
from repro.privatization.pieglobals import PieGlobals
from repro.program.binary import Binary
from repro.program.compiler import Compiler, CompileOptions
from repro.program.context import ExecutionContext, FetchTracer, GlobalsView
from repro.program.source import ProgramSource
from repro.threads.ult import UserLevelThread
from repro.trace.recorder import TraceRecorder

_job_ids = itertools.count(0)


@dataclass(frozen=True)
class PeStat:
    index: int
    busy_ns: int
    idle_ns: int
    ctx_switches: int
    final_ranks: tuple[int, ...]


@dataclass(frozen=True)
class LbReport:
    at_ns: int
    strategy: str
    moves: int
    bytes_moved: int
    imbalance_before: float
    imbalance_after: float


@dataclass
class JobResult:
    method: str
    nvp: int
    layout: JobLayout
    machine: str
    exit_values: dict[int, Any]
    makespan_ns: int
    startup_ns: int
    startup_per_process: list[int]
    counters: CounterSet
    pe_stats: list[PeStat]
    migrations: list[MigrationRecord]
    lb_reports: list[LbReport]
    forwarded_messages: int
    collectives_completed: int
    rank_cpu_ns: dict[int, int]
    #: the job's trace recorder, when tracing was enabled
    trace: "TraceRecorder | None" = None
    #: completed crash recoveries (fault-tolerance subsystem)
    recoveries: int = 0
    #: which transport delivered point-to-point messages
    transport: str = "priced"
    #: rollback protocol armed for this job ("global" or "local")
    recovery: str = "global"
    #: per-vp count of times that rank was rolled back by recovery
    rollbacks: dict[int, int] = field(default_factory=dict)
    #: sanitizer findings from this job, in deterministic order
    #: (empty unless the job ran with ``sanitize=``)
    sanitize_findings: list = field(default_factory=list)
    #: structured classification when the job died unrecoverably (one of
    #: :data:`repro.errors.UNRECOVERABLE_REASONS`); None for a run that
    #: completed.  Populated by ``run(strict=False)``.
    unrecoverable_reason: str | None = None
    #: human-readable message of the fatal error (None when completed)
    error: str | None = None
    #: one entry per recovered crash, in handling order (node, at_ns,
    #: dead_vps, cascade, ckpt_fallback, recovery_ns, resume_ns) — the
    #: account chaos invariants reconcile rollback counters against
    crashes: list = field(default_factory=list)

    @property
    def app_ns(self) -> int:
        """Post-startup execution time."""
        return max(0, self.makespan_ns - self.startup_ns)

    def summary(self) -> str:
        top = sorted(self.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        highlights = " ".join(f"{k}={v}" for k, v in top[:3])
        return (
            f"[{self.method}] nvp={self.nvp} "
            f"pes={self.layout.total_pes} "
            f"startup={self.startup_ns} ns app={self.app_ns} ns "
            f"makespan={self.makespan_ns} ns "
            f"migrations={sum(1 for m in self.migrations if m.src_pe != m.dst_pe)}"
            + (f" | {highlights}" if highlights else "")
        )

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable report (gem5-style standardized results).

        Everything is plain JSON-able data; rank exit values that are not
        JSON-native are stringified.
        """
        def _jsonable(v: Any) -> Any:
            if isinstance(v, (int, float, str, bool)) or v is None:
                return v
            return repr(v)

        return {
            "method": self.method,
            "nvp": self.nvp,
            "machine": self.machine,
            "layout": {
                "nodes": self.layout.nodes,
                "processes_per_node": self.layout.processes_per_node,
                "pes_per_process": self.layout.pes_per_process,
            },
            "makespan_ns": self.makespan_ns,
            "startup_ns": self.startup_ns,
            "app_ns": self.app_ns,
            "startup_per_process_ns": list(self.startup_per_process),
            "counters": dict(sorted(self.counters.snapshot().items())),
            "pe_stats": [
                {"pe": p.index, "busy_ns": p.busy_ns, "idle_ns": p.idle_ns,
                 "ctx_switches": p.ctx_switches,
                 "final_ranks": list(p.final_ranks)}
                for p in self.pe_stats
            ],
            "migrations": [
                {"vp": m.vp, "src_pe": m.src_pe, "dst_pe": m.dst_pe,
                 "nbytes": m.nbytes, "ns": m.ns,
                 "cross_process": m.cross_process}
                for m in self.migrations
            ],
            "lb_reports": [
                {"at_ns": r.at_ns, "strategy": r.strategy, "moves": r.moves,
                 "bytes_moved": r.bytes_moved,
                 "imbalance_before": r.imbalance_before,
                 "imbalance_after": r.imbalance_after}
                for r in self.lb_reports
            ],
            "forwarded_messages": self.forwarded_messages,
            "collectives_completed": self.collectives_completed,
            "recoveries": self.recoveries,
            "transport": self.transport,
            "recovery": self.recovery,
            "rollbacks": {str(vp): n
                          for vp, n in sorted(self.rollbacks.items())},
            "status": ("ok" if self.unrecoverable_reason is None
                       else "unrecoverable"),
            "unrecoverable_reason": self.unrecoverable_reason,
            "error": self.error,
            "crashes": list(self.crashes),
            "sanitize_findings": [f.to_dict() for f in self.sanitize_findings],
            "rank_cpu_ns": {str(vp): ns
                            for vp, ns in sorted(self.rank_cpu_ns.items())},
            "exit_values": {str(vp): _jsonable(v)
                            for vp, v in sorted(self.exit_values.items())},
        }


@dataclass
class _PostedRecv:
    request: Request


class AmpiJob:
    """One virtualized MPI job on a simulated machine."""

    def __init__(
        self,
        source: ProgramSource | Binary,
        nvp: int,
        *,
        method: str | Any = "pieglobals",
        machine: MachineModel = GENERIC_LINUX,
        layout: JobLayout | None = None,
        lb_strategy: str | Any = "greedyrefine",
        optimize: int = 2,
        stack_bytes: int = 64 * 1024,
        slot_size: int = DEFAULT_SLOT_SIZE,
        placement: str = "block",
        trace_fetches: bool = False,
        trace: "TraceRecorder | bool | None" = None,
        argv: tuple[str, ...] = (),
        restore_from: "Any | None" = None,
        fault_plan: FaultPlan | None = None,
        ft: FtConfig | None = None,
        transport: str = "priced",
        recovery: str = "global",
        ult_backend: "str | Any | None" = None,
        sanitize: "bool | Any | None" = None,
    ):
        if nvp < 1:
            raise ReproError("need at least one virtual rank")
        self.job_id = next(_job_ids)
        self.nvp = nvp
        self.machine = machine
        self.costs = machine.costs
        self.method = get_method(method)
        self.layout = layout or JobLayout.single(
            min(nvp, machine.cores_per_node)
        )
        self.lb_strategy = get_strategy(lb_strategy)
        self.optimize = optimize
        self.stack_bytes = stack_bytes
        self.slot_size = slot_size
        #: how rank ULTs get their OS stacks ("thread", "pooled", a
        #: backend instance, or None for the process default) — a pure
        #: execution-speed choice with no effect on simulated timelines
        self.ult_backend = ult_backend
        if placement not in ("block", "roundrobin"):
            raise ReproError(f"unknown placement {placement!r}")
        self.placement = placement
        self.trace_fetches = trace_fetches
        #: Projections-style tracing: off unless a recorder is attached.
        if trace is True:
            trace = TraceRecorder()
        elif trace is False:
            trace = None
        self.trace: TraceRecorder | None = trace
        self._pe_pid_base = 0
        self._proc_pid_base = 0
        self.argv = tuple(argv)
        self.restore_from = restore_from
        #: fault tolerance: injector follows the plan; buddy checkpoints
        #: and the recovery manager are created by start() when enabled
        self.fault_plan = fault_plan
        self.ft = ft
        self.fault_injector = (FaultInjector(fault_plan)
                               if fault_plan is not None else None)
        self.buddy_ckpt: BuddyCheckpointer | None = None
        self.recovery: RecoveryManager | None = None
        #: message delivery discipline: "priced" charges faults as a flat
        #: latency lump; "reliable" runs the real seq/ack/retransmit
        #: protocol (repro.net.reliable)
        if transport not in ("priced", "reliable"):
            raise ReproError(f"unknown transport {transport!r}")
        if recovery not in ("global", "local"):
            raise ReproError(f"unknown recovery mode {recovery!r}")
        if recovery == "local" and transport != "reliable":
            raise ReproError(
                'recovery="local" requires transport="reliable": message '
                "logging and replay suppression key off the reliable "
                "transport's channel sequence numbers"
            )
        self.transport = transport
        self.recovery_mode = recovery
        self.reliable: ReliableTransport | None = None
        self.msglog: MessageLogger | None = None

        self.method.check_supported(machine, self.layout)
        self.binary = (source if isinstance(source, Binary)
                       else self._build(source))
        self.method.validate_binary(self.binary)

        # Populated by start():
        self.started = False
        self.world = Communicator.world(nvp)
        self._comms: dict[int, Communicator] = {self.world.cid: self.world}
        self.nodes: list = []
        self.processes: list = []
        self.pes: list = []
        self._ranks: dict[int, VirtualRank] = {}
        self.sharedfs = SharedFileSystem(self.costs)
        self.network = Network(self.costs)
        self.locmgr = LocationManager()
        self.counters = CounterSet()
        #: runtime race detection (repro.sanitize): off unless a detector
        #: is attached — same zero-overhead-when-off rule as tracing.
        #: ``True`` builds a fresh detector; an existing RaceDetector can
        #: be shared across jobs to accumulate findings over a sweep.
        if sanitize is True:
            from repro.sanitize.runtime import RaceDetector
            sanitize = RaceDetector(counters=self.counters, trace=self.trace)
        elif sanitize is False:
            sanitize = None
        self.sanitizer: Any = sanitize
        self.scheduler: JobScheduler | None = None
        self.migration_engine: MigrationEngine | None = None
        self.collectives = CollectiveEngine(self)
        self.lb_reports: list[LbReport] = []
        self.checkpoints: list = []
        #: PEs currently hosting ranks (shrink/expand); all at start
        self.active_pes: int = self.layout.total_pes

        self._mailboxes: dict[int, Mailbox] = {}
        self._posted: dict[int, list[_PostedRecv]] = {}
        self._waiting: dict[int, Request] = {}
        self._waiting_any: dict[int, set[int]] = {}
        self._probing: dict[int, tuple[int, int, int]] = {}
        self._initialized: set[int] = set()
        self._finalized: set[int] = set()
        self._user_ops: list[UserOp] = []

    # -- build ---------------------------------------------------------------------

    def _build(self, source: ProgramSource) -> Binary:
        base = CompileOptions(optimize=self.optimize)
        opts = self.method.compile_options(base, self.machine)
        extra_units = []
        if self.method.uses_funcptr_shim:
            extra_units.append(shim_compile_unit())
        return Compiler(self.machine.toolchain).compile(
            source, opts, extra_units=extra_units
        )

    # -- startup -----------------------------------------------------------------------

    def _pe_for_vp(self, vp: int) -> int:
        npes = self.layout.total_pes
        if self.placement == "roundrobin":
            return vp % npes
        return vp * npes // self.nvp

    def start(self) -> None:
        """Bring the job up: topology, privatization setup, ULTs."""
        if self.started:
            raise ReproError("job already started")
        self.started = True
        arena = IsomallocArena(self.nvp, self.slot_size)
        san = self.sanitizer
        if san is not None:
            san.attach_job(self.binary.name, arena)
        self.nodes, self.processes, self.pes = build_topology(
            self.layout, self.machine, arena
        )
        tr = self.trace
        if tr is not None:
            # One pid per PE, then one per OS process (startup track).
            base = tr.alloc_pid_block(len(self.pes) + len(self.processes))
            self._pe_pid_base = base
            self._proc_pid_base = base + len(self.pes)
            for pe in self.pes:
                tr.name_process(base + pe.index,
                                f"{self.method.name}/pe{pe.index}")
            for proc in self.processes:
                tr.name_process(self._proc_pid_base + proc.index,
                                f"{self.method.name}/proc{proc.index} startup")
        for proc in self.processes:
            proc.loader = DynamicLoader(
                proc.vm, self.machine.toolchain, self.costs,
                counters=proc.counters,
                trace=tr, trace_pid=self._proc_pid_base + proc.index,
            )
            proc.startup_clock.advance(self.costs.ampi_init_base_ns)

        # Place ranks and create their ULTs/heaps/stacks.
        for vp in range(self.nvp):
            pe = self.pes[self._pe_for_vp(vp)]
            rank = VirtualRank(vp, pe)
            self._ranks[vp] = rank
            self.locmgr.register(rank)
            self._mailboxes[vp] = Mailbox()
            self._posted[vp] = []
            proc = pe.process
            rank.heap = RankHeap(vp, proc.isomalloc)
            rank.stack_mapping = proc.isomalloc.alloc(
                vp, self.stack_bytes, MapKind.STACK, tag=f"stack[{vp}]"
            )
            rank.ult = UserLevelThread(
                f"vp{vp}", self._rank_entry, (rank,),
                stack_bytes=self.stack_bytes,
                backend=self.ult_backend,
            )
            proc.startup_clock.advance(
                self.costs.ult_create_ns + self.costs.ampi_rank_setup_ns
            )

        # Privatization setup, per process.
        transport = (pack_transport(self)
                     if self.method.uses_funcptr_shim else None)
        default_calltable = pack_transport(self)
        for proc in self.processes:
            ranks_here = sorted(proc.resident_ranks(), key=lambda r: r.vp)
            env = SetupEnv(
                process=proc,
                loader=proc.loader,
                machine=self.machine,
                layout=self.layout,
                costs=self.costs,
                sharedfs=self.sharedfs,
                concurrent_procs=self.layout.total_processes,
                job_tag=f"job{self.job_id}",
                optimized=self.optimize >= 1,
                funcptr_transport=transport,
                trace=tr,
                trace_pid=self._proc_pid_base + proc.index,
            )
            t_setup = proc.startup_clock.now
            wirings = self.method.setup_process(env, self.binary, ranks_here)
            if tr is not None:
                tr.span(
                    f"setup:{self.method.name}", "priv", t_setup,
                    proc.startup_clock.now - t_setup,
                    pid=self._proc_pid_base + proc.index,
                    args={"ranks": len(ranks_here)},
                )
            for rank in ranks_here:
                wiring = wirings[rank.vp]
                if san is None:
                    view = GlobalsView(
                        wiring.routes, self.costs, rank.ult.clock,
                        counters=rank.counters,
                        optimized=self.optimize >= 1,
                    )
                else:
                    from repro.sanitize.runtime import SanitizedGlobalsView
                    view = SanitizedGlobalsView(
                        wiring.routes, self.costs, rank.ult.clock,
                        counters=rank.counters,
                        optimized=self.optimize >= 1,
                        probe=san.bind(rank.vp, rank.ult.clock),
                    )
                tracer = FetchTracer() if self.trace_fetches else None
                rank.code = wiring.code
                rank.tls_instance = wiring.tls_instance
                calltable = wiring.shim_calltable or default_calltable
                ctx = ExecutionContext(
                    vp=rank.vp,
                    view=view,
                    code=wiring.code,
                    clock=rank.ult.clock,
                    costs=self.costs,
                    heap=rank.heap,
                    counters=rank.counters,
                    tracer=tracer,
                    argv=self.argv,
                )
                ctx.mpi = MpiHandle(
                    rank, calltable,
                    via_shim=wiring.shim_calltable is not None,
                )
                rank.ctx = ctx

        if self.restore_from is not None:
            self.restore_from.apply_to(self)

        self.migration_engine = MigrationEngine(
            self.network, self.locmgr, self.method, self.counters,
            trace=tr, trace_pid_base=self._pe_pid_base,
        )
        self.scheduler = JobScheduler(
            self.costs, self.method.context_switch_extra_ns(self.costs),
            trace=tr, trace_pid_base=self._pe_pid_base,
            trace_label=self.method.name,
        )
        if san is not None:
            self.scheduler.on_quantum = san.on_quantum
            self.migration_engine.sanitizer = san

        if self.transport == "reliable":
            mf = (self.fault_plan.message_faults
                  if self.fault_plan is not None else None)
            self.reliable = ReliableTransport(
                self.scheduler, self.counters,
                injector=self.fault_injector,
                rto_ns=mf.retry_timeout_ns if mf is not None else 50_000,
                trace=tr,
            )

        # Fault tolerance: buddy checkpointing is on whenever an FtConfig
        # is given or the fault plan can kill a node (a crash without a
        # checkpoint would be unrecoverable by construction).
        wants_ft = self.ft is not None or (
            self.fault_plan is not None and self.fault_plan.node_crashes
        )
        if wants_ft:
            self.buddy_ckpt = BuddyCheckpointer(
                self.ft or FtConfig(), self.network, self.costs,
                self.counters, trace=tr, trace_pid_base=self._pe_pid_base,
            )
        if self.fault_plan is not None and self.fault_plan.node_crashes:
            if self.recovery_mode == "local":
                # Sender-based message logging must exist before the
                # baseline checkpoint below snapshots its cursors.
                self.msglog = MessageLogger(self.counters)
                self.recovery = LocalRecoveryManager(self, self.fault_injector)
            else:
                self.recovery = RecoveryManager(self, self.fault_injector)
            self.scheduler.fault_check = self.recovery.poll
        if self.buddy_ckpt is not None:
            # Baseline checkpoint at startup: a crash before the first
            # application checkpoint restarts from the initial state, and
            # non-checkpointable methods fail here, structured and early.
            at0 = max(p.startup_clock.now for p in self.processes)
            extra = self.buddy_ckpt.take(self, at0)
            self.checkpoints.append(self.buddy_ckpt.checkpoint)
            for proc in self.processes:
                proc.startup_clock.advance(extra)

        if tr is not None:
            for proc in self.processes:
                tr.span("ampi-init", "startup", 0, proc.startup_clock.now,
                        pid=self._proc_pid_base + proc.index,
                        args={"method": self.method.name,
                              "ranks": len(proc.resident_ranks())})
        for vp in range(self.nvp):
            rank = self._ranks[vp]
            self.scheduler.register(
                rank, rank.pe.process.startup_clock.now
            )

    def _ft_reset_mpi_state(self) -> None:
        """Roll the MPI layer back to pristine (crash recovery).

        Messages in flight, posted receives, wait/probe registrations
        and in-progress collectives all belong to the timeline the crash
        destroyed; ranks replay from MPI_Init.
        """
        for vp in range(self.nvp):
            self._mailboxes[vp] = Mailbox()
            self._posted[vp] = []
        self._waiting.clear()
        self._waiting_any.clear()
        self._probing.clear()
        self._initialized.clear()
        self._finalized.clear()
        self.collectives.reset()

    def _rank_entry(self, rank: VirtualRank) -> Any:
        ctx = rank.ctx
        entry = self.binary.image.entry
        if ctx.tracer is not None:
            fdef = self.binary.image.code.funcs[entry]
            ctx.tracer.record(ctx.code.addr_of(entry), fdef.code_bytes)
        fn = ctx.code.fn(entry)
        return fn(ctx)

    # -- run --------------------------------------------------------------------------------

    def run(self, *, strict: bool = True) -> JobResult:
        """Execute the job to completion.

        ``strict=True`` (the default) propagates
        :class:`~repro.errors.FaultUnrecoverableError` to the caller.
        ``strict=False`` converts an unrecoverable death into a
        *structured* result — ``unrecoverable_reason`` carries the
        taxonomy code, ``error`` the message, and every counter reflects
        the partial execution — which is what fault campaigns compare
        across re-runs (deterministic unrecoverability: same reason,
        same counters, same timeline, every time).
        """
        try:
            if not self.started:
                self.start()
            self.scheduler.run()
        except FaultUnrecoverableError as e:
            if strict or getattr(self, "scheduler", None) is None:
                raise
            # The scheduler's run loop unwinds its ULTs on any exit path,
            # but a failure *before* the loop (e.g. a non-checkpointable
            # method dying at the baseline checkpoint) leaves the threads
            # created by start() alive — shut down explicitly (idempotent).
            self.scheduler.shutdown()
            result = self._result()
            result.unrecoverable_reason = e.reason
            result.error = str(e)
            return result
        return self._result()

    def cleanup(self) -> int:
        """Job teardown: remove per-rank artifacts left on shared storage.

        FSglobals copies the binary once per rank onto the shared
        filesystem; a polite job removes them on exit.  Returns the
        number of files unlinked.
        """
        return self.sharedfs.cleanup_prefix(f"job{self.job_id}/")

    def _result(self) -> JobResult:
        counters = CounterSet()
        counters.merge(self.counters)
        counters.merge(self.scheduler.counters)
        for proc in self.processes:
            counters.merge(proc.counters)
        for rank in self._ranks.values():
            counters.merge(rank.counters)
        startup_each = [p.startup_clock.now for p in self.processes]
        return JobResult(
            method=self.method.name,
            nvp=self.nvp,
            layout=self.layout,
            machine=self.machine.name,
            exit_values={vp: r.exit_value for vp, r in self._ranks.items()},
            makespan_ns=self.scheduler.makespan_ns(),
            startup_ns=max(startup_each),
            startup_per_process=startup_each,
            counters=counters,
            pe_stats=[
                PeStat(pe.index, pe.busy_ns, pe.idle_ns, pe.ctx_switches,
                       tuple(sorted(pe.resident)))
                for pe in self.pes
            ],
            migrations=list(self.migration_engine.records),
            lb_reports=list(self.lb_reports),
            forwarded_messages=self.locmgr.forwarded_messages,
            collectives_completed=self.collectives.completed,
            rank_cpu_ns={vp: r.total_cpu_ns for vp, r in self._ranks.items()},
            trace=self.trace,
            recoveries=self.recovery.recoveries if self.recovery else 0,
            transport=self.transport,
            recovery=self.recovery_mode,
            rollbacks=(dict(self.recovery.rollback_counts)
                       if self.recovery else {}),
            crashes=(list(self.recovery.crash_log)
                     if self.recovery else []),
            sanitize_findings=(self.sanitizer.sorted_findings()
                               if self.sanitizer is not None else []),
        )

    # -- lookups ------------------------------------------------------------------------------

    def rank_of(self, vp: int) -> VirtualRank:
        return self._ranks[vp]

    def trace_pid_of(self, pe) -> int:
        """Trace pid of a PE's timeline track (valid when tracing is on)."""
        return self._pe_pid_base + pe.index

    def ranks(self) -> list[VirtualRank]:
        return [self._ranks[vp] for vp in range(self.nvp)]

    def _resolve_comm(self, comm: Communicator | None) -> Communicator:
        return comm if comm is not None else self.world

    # =====================================================================
    # MPI API implementations (reached through the function-pointer shim or
    # directly; first argument is always the acting rank)
    # =====================================================================

    # -- lifecycle ---------------------------------------------------------------

    def _api_init(self, rank: VirtualRank) -> None:
        if rank.vp in self._initialized:
            raise MpiError(f"vp {rank.vp}: MPI_Init called twice")
        self._initialized.add(rank.vp)
        rank.clock.advance(self.costs.msg_overhead_ns)

    def _api_initialized(self, rank: VirtualRank) -> bool:
        return rank.vp in self._initialized

    def _api_finalize(self, rank: VirtualRank) -> None:
        if rank.vp in self._finalized:
            raise MpiError(f"vp {rank.vp}: MPI_Finalize called twice")
        self._finalized.add(rank.vp)
        self.collectives.enter(rank, self.world, "barrier")

    def _api_rank(self, rank: VirtualRank,
                  comm: Communicator | None = None) -> int:
        return self._resolve_comm(comm).rank_of_vp(rank.vp)

    def _api_size(self, rank: VirtualRank,
                  comm: Communicator | None = None) -> int:
        return self._resolve_comm(comm).size

    def _api_comm_world(self, rank: VirtualRank) -> Communicator:
        return self.world

    def _api_num_pes(self, rank: VirtualRank) -> int:
        return len(self.pes)

    def _api_wtime(self, rank: VirtualRank) -> float:
        return rank.clock.seconds

    def _api_abort(self, rank: VirtualRank, errorcode: int = 1) -> None:
        raise MpiAbort(errorcode, f"vp {rank.vp} called MPI_Abort({errorcode})")

    # -- point-to-point -------------------------------------------------------------

    def _transfer_plan(self, rank: VirtualRank, dst_vp: int,
                       nbytes: int) -> tuple[int, Any]:
        """Transfer duration and destination PE for a send to ``dst_vp``."""
        dest_pe, forwarded = self.locmgr.lookup_for_send(rank.vp, dst_vp)
        ns = self.network.transfer_ns(
            nbytes, rank.pe.endpoint, dest_pe.endpoint
        )
        if forwarded:
            # Stale location cache: one extra forwarding hop.
            ns += self.costs.msg_overhead_ns + self.costs.net_latency_intra_ns
        return ns, dest_pe

    def _do_send(self, rank: VirtualRank, payload: Any, dest: int, tag: int,
                 comm: Communicator | None) -> None:
        comm = self._resolve_comm(comm)
        src_cr = comm.rank_of_vp(rank.vp)
        dst_vp = comm.vp_of_rank(dest)
        nbytes = payload_nbytes(payload)
        now = rank.clock.now
        ns, dest_pe = self._transfer_plan(rank, dst_vp, nbytes)
        if self.reliable is None and self.fault_injector is not None:
            # Priced transport: the protocol is not modelled, so a fault
            # is charged as a flat latency lump on the one-and-only
            # delivery.  The reliable path never takes this branch — it
            # pays for faults through actual retransmissions instead.
            fault = self.fault_injector.next_message_fault()
            if fault is not None:
                ns += self.fault_injector.message_penalty_ns(
                    fault, ns, self.costs.msg_overhead_ns
                )
                self.counters.incr(EV_FAULT)
                self.counters.incr({
                    "drop": EV_MSG_FAULT_DROP,
                    "duplicate": EV_MSG_FAULT_DUP,
                    "corrupt": EV_MSG_FAULT_CORRUPT,
                }[fault])
                if self.trace is not None:
                    self.trace.instant(
                        f"fault:msg-{fault}", "ft", now,
                        pid=self.trace_pid_of(rank.pe), tid=rank.vp,
                        args={"dst_vp": dst_vp, "tag": tag,
                              "nbytes": nbytes},
                    )
        msg = Message(
            src=src_cr, dst=dest, tag=tag, comm_id=comm.cid,
            payload=payload, nbytes=nbytes, sent_at=now, arrival=now + ns,
            src_vp=rank.vp, dst_vp=dst_vp,
        )
        rank.clock.advance(self.costs.msg_overhead_ns)
        if nbytes > self.costs.eager_threshold_bytes:
            rank.clock.advance(self.costs.rendezvous_handshake_ns)
        self.counters.incr(EV_MSG_SENT)
        self.counters.incr(EV_MSG_BYTES, nbytes)
        if self.trace is not None:
            self.trace.instant(
                "send", "msg", now, pid=self.trace_pid_of(rank.pe),
                tid=rank.vp,
                args={"dst_vp": dst_vp, "tag": tag, "nbytes": nbytes,
                      "arrival": now + ns},
            )
        if self.reliable is not None:
            msg.dest_endpoint = dest_pe.endpoint
            delivered = self.reliable.send(
                msg, ns, self._deliver_frame,
                trace_pid=self.trace_pid_of(rank.pe),
            )
            if delivered and self.msglog is not None:
                self.msglog.log_send(msg)
        else:
            self._deliver(dst_vp, msg)

    def _deliver_frame(self, msg: Message) -> None:
        """Reliable-transport delivery hook: the final, checksum-clean
        attempt of a frame (possibly fired from a retransmission timer,
        long after the send)."""
        dst_rank = self._ranks[msg.dst_vp]
        san = self.sanitizer
        if (san is not None and msg.dest_endpoint is not None
                and dst_rank.pe.endpoint != msg.dest_endpoint):
            san.on_stale_delivery(dst_rank, msg)
        self._deliver(msg.dst_vp, msg)

    def _deliver(self, dst_vp: int, msg: Message) -> None:
        dst_rank = self._ranks[dst_vp]
        ml = self.msglog
        if ml is not None and ml.already_consumed(dst_vp, msg.src_vp,
                                                  msg.chan_seq):
            # Local-recovery duplicate: this rank already consumed the
            # channel seq from the message log while the sender's
            # re-executed copy was still in flight.  Matching it against
            # a posted receive would hand a *later* receive this stale
            # payload.
            self.counters.incr(EV_DEDUP_DROP)
            if self.trace is not None:
                self.trace.instant(
                    "replay:dedup-drop", "ft", msg.arrival,
                    pid=self.trace_pid_of(dst_rank.pe), tid=dst_vp,
                    args={"src_vp": msg.src_vp, "chan_seq": msg.chan_seq},
                )
            return
        for i, posted in enumerate(self._posted[dst_vp]):
            req = posted.request
            if msg.matches(src=req.src, tag=req.tag, comm_id=req.comm_id):
                del self._posted[dst_vp][i]
                req.complete(
                    when=msg.arrival, payload=msg.payload,
                    source=msg.src, tag=msg.tag, nbytes=msg.nbytes,
                )
                if self.msglog is not None:
                    self.msglog.on_consume(dst_vp, msg.src_vp, msg.chan_seq)
                if self.trace is not None:
                    self.trace.instant(
                        "recv-match", "msg", msg.arrival,
                        pid=self.trace_pid_of(dst_rank.pe), tid=dst_vp,
                        args={"src": msg.src, "tag": msg.tag,
                              "nbytes": msg.nbytes},
                    )
                if self._waiting.get(dst_vp) is req:
                    self.scheduler.wake(dst_rank, msg.arrival)
                elif req.rid in self._waiting_any.get(dst_vp, ()):
                    self.scheduler.wake(dst_rank, msg.arrival)
                return
        self._mailboxes[dst_vp].deliver(msg)
        probe = self._probing.get(dst_vp)
        if probe is not None and msg.matches(*probe):
            del self._probing[dst_vp]
            self.scheduler.wake(dst_rank, msg.arrival)

    def _api_send(self, rank: VirtualRank, payload: Any, dest: int,
                  tag: int = 0, comm: Communicator | None = None) -> None:
        self._do_send(rank, payload, dest, tag, comm)

    def _api_isend(self, rank: VirtualRank, payload: Any, dest: int,
                   tag: int = 0, comm: Communicator | None = None) -> Request:
        comm_r = self._resolve_comm(comm)
        req = Request(kind=RequestKind.SEND, vp=rank.vp, comm_id=comm_r.cid,
                      tag=tag)
        self._do_send(rank, payload, dest, tag, comm)
        req.complete(when=rank.clock.now)
        return req

    def _post_recv(self, rank: VirtualRank, source: int, tag: int,
                   comm: Communicator | None) -> Request:
        comm = self._resolve_comm(comm)
        req = Request(kind=RequestKind.RECV, vp=rank.vp, comm_id=comm.cid,
                      src=source, tag=tag)
        ml = self.msglog
        if ml is not None and ml.is_replaying(rank.vp):
            # A recovering rank re-executes: serve its receives from the
            # message log first.  Anything in the mailbox is a *fresh*
            # post-crash delivery with a higher channel seq — consuming
            # it before the logged history would break non-overtaking.
            src_vp = (None if source == ANY_SOURCE
                      else comm.vp_of_rank(source))
            entry = ml.replay_match(rank.vp, src_vp, tag, comm.cid)
            if entry is not None:
                sender = self._ranks[entry.src_vp]
                fetch_ns = self.network.transfer_ns(
                    entry.nbytes, sender.pe.endpoint, rank.pe.endpoint
                )
                entry.sent_at = rank.clock.now
                entry.arrival = rank.clock.now + fetch_ns
                req.complete(when=entry.arrival, payload=entry.payload,
                             source=entry.src, tag=entry.tag,
                             nbytes=entry.nbytes)
                ml.on_consume(rank.vp, entry.src_vp, entry.chan_seq)
                self.counters.incr(EV_REPLAYED)
                if self.trace is not None:
                    self.trace.instant(
                        "replay:msg", "ft", rank.clock.now,
                        pid=self.trace_pid_of(rank.pe), tid=rank.vp,
                        args={"src_vp": entry.src_vp,
                              "chan_seq": entry.chan_seq},
                    )
                return req
        while True:
            msg = self._mailboxes[rank.vp].match(source, tag, comm.cid)
            if msg is None or ml is None or not ml.already_consumed(
                    rank.vp, msg.src_vp, msg.chan_seq):
                break
            # A duplicate copy of a seq this rank already replayed from
            # the message log (see _deliver): discard and keep matching.
            self.counters.incr(EV_DEDUP_DROP)
        if msg is not None:
            req.complete(when=msg.arrival, payload=msg.payload,
                         source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
            if ml is not None:
                ml.on_consume(rank.vp, msg.src_vp, msg.chan_seq)
        else:
            self._posted[rank.vp].append(_PostedRecv(req))
        return req

    def _api_recv(self, rank: VirtualRank, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG, comm: Communicator | None = None,
                  status: Status | None = None) -> Any:
        req = self._post_recv(rank, source, tag, comm)
        return self._api_wait(rank, req, status)

    def _api_irecv(self, rank: VirtualRank, source: int = ANY_SOURCE,
                   tag: int = ANY_TAG,
                   comm: Communicator | None = None) -> Request:
        return self._post_recv(rank, source, tag, comm)

    def _api_wait(self, rank: VirtualRank, request: Request,
                  status: Status | None = None) -> Any:
        if request.vp != rank.vp:
            raise MpiError(
                f"vp {rank.vp} cannot wait on vp {request.vp}'s request"
            )
        if not request.completed:
            t_block = rank.clock.now
            self._waiting[rank.vp] = request
            self.scheduler.block_current("MPI_Wait")
            self._waiting.pop(rank.vp, None)
            if not request.completed:
                raise MpiError("woken before request completion")
            if self.trace is not None:
                self.trace.span(
                    "MPI_Wait", "msg", t_block,
                    max(0, request.completion_time - t_block),
                    pid=self.trace_pid_of(rank.pe), tid=rank.vp,
                )
        rank.clock.advance_to(request.completion_time)
        rank.clock.advance(self.costs.msg_overhead_ns)
        if status is not None:
            status.source = request.status.source
            status.tag = request.status.tag
            status.nbytes = request.status.nbytes
        return request.payload

    def _api_test(self, rank: VirtualRank,
                  request: Request) -> tuple[bool, Any]:
        rank.clock.advance(self.costs.scheduler_poll_ns)
        if request.completed and request.completion_time <= rank.clock.now:
            return True, request.payload
        return False, None

    def _api_waitall(self, rank: VirtualRank,
                     requests: Sequence[Request]) -> list[Any]:
        return [self._api_wait(rank, r) for r in requests]

    def _api_waitany(self, rank: VirtualRank,
                     requests: Sequence[Request]) -> tuple[int, Any]:
        """MPI_Waitany: block until one request completes; returns
        (index, payload)."""
        if not requests:
            raise MpiError("waitany on an empty request list")
        while True:
            done = [(i, r) for i, r in enumerate(requests) if r.completed]
            if done:
                idx, req = min(done, key=lambda t: t[1].completion_time)
                payload = self._api_wait(rank, req)
                return idx, payload
            # Block on whichever completes first: register every pending
            # recv as the waited request in turn is not expressible, so
            # wait via the scheduler with a multi-request marker.
            pending = [r for r in requests if not r.completed]
            for r in pending:
                self._waiting_any.setdefault(rank.vp, set()).add(r.rid)
            self.scheduler.block_current("MPI_Waitany")
            self._waiting_any.pop(rank.vp, None)

    def _api_testall(self, rank: VirtualRank,
                     requests: Sequence[Request]) -> tuple[bool, list[Any]]:
        rank.clock.advance(self.costs.scheduler_poll_ns)
        if all(r.completed and r.completion_time <= rank.clock.now
               for r in requests):
            return True, [r.payload for r in requests]
        return False, []

    def _api_probe(self, rank: VirtualRank, source: int = ANY_SOURCE,
                   tag: int = ANY_TAG,
                   comm: Communicator | None = None) -> Status:
        comm = self._resolve_comm(comm)
        while True:
            msg = self._mailboxes[rank.vp].peek(source, tag, comm.cid)
            if msg is not None:
                rank.clock.advance_to(msg.arrival)
                return Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
            self._probing[rank.vp] = (source, tag, comm.cid)
            self.scheduler.block_current("MPI_Probe")

    def _api_iprobe(self, rank: VirtualRank, source: int = ANY_SOURCE,
                    tag: int = ANY_TAG,
                    comm: Communicator | None = None) -> Status | None:
        comm = self._resolve_comm(comm)
        rank.clock.advance(self.costs.scheduler_poll_ns)
        msg = self._mailboxes[rank.vp].peek(source, tag, comm.cid)
        if msg is not None and msg.arrival <= rank.clock.now:
            return Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
        return None

    def _api_sendrecv(self, rank: VirtualRank, payload: Any, dest: int,
                      source: int = ANY_SOURCE, sendtag: int = 0,
                      recvtag: int = ANY_TAG,
                      comm: Communicator | None = None) -> Any:
        req = self._post_recv(rank, source, recvtag, comm)
        self._do_send(rank, payload, dest, sendtag, comm)
        return self._api_wait(rank, req)

    # -- collectives --------------------------------------------------------------------

    def _api_barrier(self, rank: VirtualRank,
                     comm: Communicator | None = None) -> None:
        self.collectives.enter(rank, self._resolve_comm(comm), "barrier")

    def _api_bcast(self, rank: VirtualRank, value: Any = None, root: int = 0,
                   comm: Communicator | None = None) -> Any:
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "bcast", value, root=root
        )

    def _api_reduce(self, rank: VirtualRank, value: Any, op: Op,
                    root: int = 0, comm: Communicator | None = None) -> Any:
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "reduce", value, root=root, op=op
        )

    def _api_allreduce(self, rank: VirtualRank, value: Any, op: Op,
                       comm: Communicator | None = None) -> Any:
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "allreduce", value, op=op
        )

    def _api_gather(self, rank: VirtualRank, value: Any, root: int = 0,
                    comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "gather", value, root=root
        )

    def _api_allgather(self, rank: VirtualRank, value: Any,
                       comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "allgather", value
        )

    def _api_scatter(self, rank: VirtualRank, values, root: int = 0,
                     comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "scatter", values, root=root
        )

    def _api_alltoall(self, rank: VirtualRank, values,
                      comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "alltoall", values
        )

    def _api_scan(self, rank: VirtualRank, value: Any, op: Op,
                  comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "scan", value, op=op
        )

    def _api_exscan(self, rank: VirtualRank, value: Any, op: Op,
                    comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "exscan", value, op=op
        )

    def _api_reduce_scatter(self, rank: VirtualRank, values, op: Op,
                            comm: Communicator | None = None):
        return self.collectives.enter(
            rank, self._resolve_comm(comm), "reduce_scatter", values, op=op
        )

    # -- operators -------------------------------------------------------------------------

    def _api_op_create(self, rank: VirtualRank, fn_name: str,
                       commute: bool = True) -> UserOp:
        addr = rank.ctx.addr_of(fn_name)
        if isinstance(self.method, PieGlobals):
            op = UserOp(
                name=fn_name, commutative=commute,
                fn_offset=self.method.fnptr_to_offset(rank, addr),
                rebase=self.method.offset_to_fnptr,
                invoke=self._invoke_user_op,
            )
        else:
            op = UserOp(name=fn_name, commutative=commute, fn_addr=addr,
                        invoke=self._invoke_user_op)
        self._user_ops.append(op)
        return op

    def _invoke_user_op(self, pe, addr: int, a: Any, b: Any) -> Any:
        host = pe.any_resident()
        if host is None:
            # Shared-code methods can run the function from any rank in
            # the same process; PIE never reaches here (rebase failed
            # earlier with ReductionOffsetError).
            ranks = pe.process.resident_ranks()
            if not ranks:
                raise ReductionOffsetError(
                    f"no rank available in process {pe.process.index} to "
                    "apply a user-defined reduction"
                )
            host = ranks[0]
        return host.ctx.call_addr(addr, a, b)

    # -- communicator management ----------------------------------------------------------------

    def _api_comm_dup(self, rank: VirtualRank,
                      comm: Communicator | None = None) -> Communicator:
        comm = self._resolve_comm(comm)
        return self.collectives.enter(rank, comm, "comm_dup")

    def _api_comm_split(self, rank: VirtualRank, color: int, key: int = 0,
                        comm: Communicator | None = None):
        comm = self._resolve_comm(comm)
        return self.collectives.enter(
            rank, comm, "comm_split", (color, key)
        )

    def register_comm(self, comm: Communicator) -> None:
        self._comms[comm.cid] = comm

    # -- AMPI extensions ---------------------------------------------------------------------------

    def _api_migrate(self, rank: VirtualRank) -> None:
        """AMPI_Migrate: collective LB sync over MPI_COMM_WORLD."""
        self.collectives.enter(rank, self.world, "lb_sync")

    def _lb_finish(self, state) -> None:
        """Runs in the last arriver's ULT: decide + migrate + release."""
        comm = state.comm
        T = max(t for t, _ in state.arrivals.values())
        stats = [
            RankStat(vp=r.vp, load_ns=r.load_ns, pe=r.pe.index)
            for r in self.ranks()
        ]
        n_pes = len(self.pes)
        before = summarize_loads(stats, n_pes)
        assignment = self.lb_strategy.assign(stats, n_pes)
        decision_ns = self.costs.scheduler_poll_ns * max(1, len(stats))

        move_ns: dict[int, int] = {}
        moved = bytes_moved = 0
        for s in stats:
            target = assignment.get(s.vp, s.pe)
            if target != s.pe and not self.pes[target].failed:
                rec = self.migration_engine.migrate(
                    self._ranks[s.vp], self.pes[target]
                )
                move_ns[s.vp] = rec.ns
                moved += 1
                bytes_moved += rec.nbytes

        after_stats = [
            RankStat(vp=r.vp, load_ns=r.load_ns, pe=r.pe.index)
            for r in self.ranks()
        ]
        after = summarize_loads(after_stats, n_pes)
        for r in self.ranks():
            r.reset_load()

        depth = tree_depth(comm.size)
        base = T + depth * self.collectives._step_ns(comm) + decision_ns
        state.releases = {}
        for cr in state.arrivals:
            vp = comm.vp_of_rank(cr)
            state.releases[cr] = (base + move_ns.get(vp, 0), None)
        self.lb_reports.append(LbReport(
            at_ns=base,
            strategy=self.lb_strategy.name,
            moves=moved,
            bytes_moved=bytes_moved,
            imbalance_before=before.imbalance,
            imbalance_after=after.imbalance,
        ))

    def _api_resize(self, rank: VirtualRank, n_active_pes: int) -> None:
        """AMPI shrink/expand: collectively evacuate (or repopulate) PEs.

        After the call only PEs ``0..n_active_pes-1`` host ranks; the
        paper lists dynamic job shrink/expand among the adaptive features
        virtualization + migration enable (Section 2.1).
        """
        if not 1 <= n_active_pes <= len(self.pes):
            raise MpiError(
                f"cannot resize to {n_active_pes} PEs (job has "
                f"{len(self.pes)})"
            )
        self.collectives.enter(rank, self.world, "resize",
                               n_active_pes)

    def _resize_finish(self, state) -> None:
        """Runs in the last arriver's ULT (like _lb_finish)."""
        comm = state.comm
        targets = {v for _, v in state.arrivals.values()}
        if len(targets) != 1:
            raise MpiError(
                f"resize: ranks disagree on the target PE count {targets}"
            )
        n_active = targets.pop()
        T = max(t for t, _ in state.arrivals.values())
        stats = [
            RankStat(vp=r.vp, load_ns=max(r.load_ns, 1), pe=r.pe.index)
            for r in self.ranks()
        ]
        assignment = self.lb_strategy.assign(
            [s if s.pe < n_active else
             RankStat(vp=s.vp, load_ns=s.load_ns, pe=s.vp % n_active)
             for s in stats],
            n_active,
        )
        move_ns: dict[int, int] = {}
        for s in stats:
            target = assignment.get(s.vp, s.vp % n_active)
            if target != s.pe and not self.pes[target].failed:
                rec = self.migration_engine.migrate(
                    self._ranks[s.vp], self.pes[target]
                )
                move_ns[s.vp] = rec.ns
        self.active_pes = n_active
        depth = tree_depth(comm.size)
        base = T + depth * self.collectives._step_ns(comm)
        state.releases = {
            cr: (base + move_ns.get(comm.vp_of_rank(cr), 0), None)
            for cr in state.arrivals
        }

    def _api_migrate_to(self, rank: VirtualRank, pe_index: int) -> None:
        """AMPI_Migrate_to: explicit self-migration."""
        if not 0 <= pe_index < len(self.pes):
            raise MpiError(f"no such PE {pe_index}")
        rec = self.migration_engine.migrate(rank, self.pes[pe_index])
        if rec.ns:
            self.scheduler.yield_current(rank.clock.now + rec.ns)

    def _api_yield_(self, rank: VirtualRank) -> None:
        """AMPI_Yield: cooperative yield to the PE scheduler."""
        self.scheduler.yield_current(rank.clock.now)

    def _api_checkpoint(self, rank: VirtualRank) -> None:
        """Collective in-memory/shared-FS checkpoint."""
        self.collectives.enter(rank, self.world, "checkpoint")
