"""Checkpoint/restart on top of migratable rank state.

Checkpointing reuses the migration machinery's view of a rank: everything
it owns is (for migratable methods) reachable through its globals routes,
TLS instance, and heap.  ``ctx.mpi.checkpoint()`` is a collective that
snapshots all ranks; a later job constructed with
``AmpiJob(..., restore_from=ckpt)`` starts with every rank's privatized
globals and heap contents restored, so a restart-aware program (one that
consults, say, ``ctx.g.cur_step`` before iterating) resumes where it
stopped.  Methods that cannot migrate cannot checkpoint either — the same
Isomalloc limitation (PIPglobals/FSglobals), reproduced as
:class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ampi.datatypes import payload_nbytes
from repro.errors import CheckpointError, MigrationUnsupportedError
from repro.privatization._util import SHIM_PREFIX

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiJob


@dataclass
class RankSnapshot:
    vp: int
    clock_ns: int
    globals_: dict[str, Any]
    heap_items: list[tuple[int, Any, str]]   #: (nbytes, data, tag)
    nbytes: int = 0                          #: packed size of this rank's state


@dataclass
class Checkpoint:
    """A job-wide state capture."""

    nvp: int
    method: str
    at_ns: int
    nbytes: int
    snapshots: dict[int, RankSnapshot] = field(default_factory=dict)

    @classmethod
    def capture(cls, job: "AmpiJob") -> "Checkpoint":
        try:
            for rank in job.ranks():
                job.method.check_migratable(rank)
        except MigrationUnsupportedError as e:
            raise CheckpointError(
                f"checkpointing requires migratable rank state: {e}"
            ) from e

        snaps: dict[int, RankSnapshot] = {}
        total = 0
        for rank in job.ranks():
            view = rank.ctx.view
            globals_: dict[str, Any] = {}
            for name, route in view.routes.items():
                if name.startswith(SHIM_PREFIX):
                    continue  # runtime entry pointers, rebuilt at restart
                var = route.instance.image.vars.get(name)
                if var is not None and var.const:
                    continue
                globals_[name] = copy.deepcopy(route.instance.values[name])
            heap_items = [
                (a.nbytes, copy.deepcopy(a.data), a.tag)
                for a in rank.heap
            ] if rank.heap is not None else []
            nbytes = (
                sum(payload_nbytes(v) for v in globals_.values())
                + sum(n for n, _, _ in heap_items)
                + (rank.stack_mapping.size if rank.stack_mapping else 0)
            )
            snap = RankSnapshot(
                vp=rank.vp,
                clock_ns=rank.clock.now,
                globals_=globals_,
                heap_items=heap_items,
                nbytes=nbytes,
            )
            snaps[rank.vp] = snap
            total += nbytes
        return cls(
            nvp=job.nvp,
            method=job.method.name,
            at_ns=max((s.clock_ns for s in snaps.values()), default=0),
            nbytes=total,
            snapshots=snaps,
        )

    def apply_to(self, job: "AmpiJob") -> None:
        """Restore captured state into a freshly started job.

        Called by :class:`~repro.ampi.runtime.AmpiJob` (via
        ``restore_from=``) after privatization wiring, before any rank
        runs.
        """
        if job.nvp != self.nvp:
            raise CheckpointError(
                f"checkpoint holds {self.nvp} ranks but the job has "
                f"{job.nvp}; shrink/expand restart needs matching "
                f"decomposition in this simulator"
            )
        if job.method.name != self.method:
            raise CheckpointError(
                f"checkpoint was taken under privatization method "
                f"{self.method!r} but the job uses {job.method.name!r}; "
                "restored globals routing would not match"
            )
        for rank in job.ranks():
            self.restore_rank(rank)

    def restore_rank(self, rank: Any, *, reset_heap: bool = False) -> None:
        """Restore one rank's globals and heap from its snapshot.

        With ``reset_heap`` the rank's current heap allocations are
        freed first — the in-run rollback path, where the rank's live
        heap must be replaced rather than added to.
        """
        snap = self.snapshots.get(rank.vp)
        if snap is None:
            raise CheckpointError(
                f"checkpoint has no snapshot for vp {rank.vp}"
            )
        view = rank.ctx.view
        for name, value in snap.globals_.items():
            route = view.routes.get(name)
            if route is None:
                raise CheckpointError(
                    f"vp {rank.vp}: checkpointed variable {name!r} "
                    "does not exist in the restarted program"
                )
            route.instance.values[name] = copy.deepcopy(value)
        if rank.heap is not None:
            if reset_heap:
                for addr in list(rank.heap.allocations):
                    rank.heap.free(addr)
            for nbytes, data, tag in snap.heap_items:
                rank.heap.malloc(nbytes, data=copy.deepcopy(data),
                                 tag=tag)
