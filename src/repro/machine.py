"""Machine and toolchain models.

The paper's portability matrix (Tables 1 and 3) is about *which method
works where*: linker versions (Swapglobals), compiler support for
``-mno-tls-direct-seg-refs`` (TLSglobals), patched compilers
(-fmpc-privatize), glibc extensions and patches (PIPglobals, PIEglobals),
and shared filesystems (FSglobals).  :class:`Toolchain` and
:class:`MachineModel` carry exactly that information so the capability
probes in the benchmark harness can *execute* the portability checks
rather than hardcode a table.

Presets model the paper's two testbeds:

* ``BRIDGES2`` — PSC Bridges-2 regular-memory nodes: 2x AMD EPYC 7742
  (128 cores), GCC 10.2, Mellanox HDR InfiniBand, Lustre shared FS.
* ``STAMPEDE2_ICX`` — TACC Stampede2 Intel Xeon Ice Lake nodes (used in
  the paper only for the instruction-cache counter study).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.perf.costs import CostModel, TEST_COSTS
from repro.perf.icache import CacheGeometry


class Arch(enum.Enum):
    X86_64 = "x86_64"
    ARM64 = "arm64"
    PPC64LE = "ppc64le"


class Os(enum.Enum):
    LINUX = "linux"
    MACOS = "macos"
    BSD = "bsd"


class Libc(enum.Enum):
    GLIBC = "glibc"
    MUSL = "musl"
    SYSTEM = "system"  #: non-GNU system libc (macOS, BSD)


@dataclass(frozen=True)
class Toolchain:
    """Compiler / linker / libc feature description."""

    compiler: str = "gcc"                 #: "gcc", "clang", "icc", ...
    compiler_version: tuple[int, int] = (10, 2)
    linker_version: tuple[int, int] = (2, 35)   #: binutils ld version
    linker_got_patch: bool = False        #: patched ld >= 2.24 keeping GOT refs
    libc: Libc = Libc.GLIBC
    glibc_patched_namespaces: bool = False  #: PIP's patched glibc (> 12 namespaces)
    supports_pie: bool = True             #: PIE is ubiquitous on modern systems
    mpc_privatize_support: bool = False   #: Intel compiler or patched GCC

    # -- feature predicates the privatization methods query -------------------

    @property
    def supports_tls_seg_refs_flag(self) -> bool:
        """GCC (any recent) or Clang >= 10 provide -mno-tls-direct-seg-refs."""
        if self.compiler == "gcc":
            return True
        if self.compiler == "clang":
            return self.compiler_version >= (10, 0)
        return False

    @property
    def linker_keeps_got_refs(self) -> bool:
        """Swapglobals needs ld <= 2.23 or a patched newer ld; otherwise the
        linker optimizes away the GOT reference at each global access."""
        return self.linker_version <= (2, 23) or self.linker_got_patch

    @property
    def has_dlmopen(self) -> bool:
        return self.libc is Libc.GLIBC

    @property
    def has_dl_iterate_phdr(self) -> bool:
        """Stable in glibc since 2005; musl ships it too."""
        return self.libc in (Libc.GLIBC, Libc.MUSL)

    @property
    def dlmopen_namespace_limit(self) -> int:
        """Usable dlmopen namespaces per process (glibc caps at 16 link-map
        namespaces; ~12 are practically available; PIP's patch lifts it)."""
        if not self.has_dlmopen:
            return 0
        return 1024 if self.glibc_patched_namespaces else 12


@dataclass(frozen=True)
class MachineModel:
    """One machine configuration: hardware + toolchain + cost model."""

    name: str
    arch: Arch = Arch.X86_64
    os: Os = Os.LINUX
    toolchain: Toolchain = field(default_factory=Toolchain)
    costs: CostModel = field(default_factory=CostModel)
    cores_per_node: int = 128
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8, 64)
    )
    l2_per_core_bytes: int = 512 * 1024
    has_shared_fs: bool = True
    #: simulated link-time base of the runtime's hot code; differences in
    #: incidental code layout across toolchains are what made the paper's
    #: icache results flip sign between testbeds (see DESIGN.md Section 4).
    runtime_code_base: int = 0x40_0000
    app_code_base: int = 0x60_0000
    #: hot-loop code-volume inflation of builds using
    #: -mno-tls-direct-seg-refs (TLSglobals): each TLS access carries an
    #: extra address-computation sequence.  Toolchain-dependent — GCC's
    #: codegen inflates noticeably more than ICC's — and the parameter
    #: behind the paper's machine-dependent Section 4.5 icache results.
    tls_code_inflation: float = 0.15

    def copy_with(self, **kw: Any) -> "MachineModel":
        return replace(self, **kw)


#: PSC Bridges-2 "regular memory" node (2x AMD EPYC 7742, GCC 10.2.0,
#: OpenMPI over Mellanox HDR InfiniBand, Lustre).
BRIDGES2 = MachineModel(
    name="bridges2",
    arch=Arch.X86_64,
    os=Os.LINUX,
    toolchain=Toolchain(
        compiler="gcc",
        compiler_version=(10, 2),
        linker_version=(2, 35),
        libc=Libc.GLIBC,
    ),
    cores_per_node=128,
    l1i=CacheGeometry(32 * 1024, 8, 64),
    l2_per_core_bytes=512 * 1024,
    runtime_code_base=0x40_0000,
    app_code_base=0x60_0000,
    tls_code_inflation=0.35,
)

#: TACC Stampede2 Intel Xeon Ice Lake node (newer GCC with MPC's patch
#: available; different code layout, larger L2, and a front-end whose
#: TLS-access code volume is leaner — the Section 4.5 comparison point).
STAMPEDE2_ICX = MachineModel(
    name="stampede2-icx",
    arch=Arch.X86_64,
    os=Os.LINUX,
    toolchain=Toolchain(
        compiler="gcc",
        compiler_version=(11, 2),
        linker_version=(2, 36),
        libc=Libc.GLIBC,
        mpc_privatize_support=True,
    ),
    cores_per_node=80,
    # Effective front-end instruction-supply capacity (L1i plus the large
    # Ice Lake decoded-uop cache): bigger than the raw 32 KiB L1i.
    l1i=CacheGeometry(48 * 1024, 12, 64),
    l2_per_core_bytes=1280 * 1024,
    runtime_code_base=0x40_0000,
    app_code_base=0x48_0000,
    tls_code_inflation=0.06,
)

#: A generic laptop-scale Linux box for examples and docs.
GENERIC_LINUX = MachineModel(
    name="generic-linux",
    cores_per_node=8,
)

#: An old cluster whose binutils predate the GOT optimization — the one
#: environment where Swapglobals still works out of the box.
LEGACY_LINUX_OLD_LD = MachineModel(
    name="legacy-linux-old-ld",
    toolchain=Toolchain(
        compiler="gcc",
        compiler_version=(4, 8),
        linker_version=(2, 23),
        libc=Libc.GLIBC,
    ),
    cores_per_node=16,
)

#: macOS: no glibc, hence no dlmopen and no PIP/PIE loader extensions.
MACOS_ARM = MachineModel(
    name="macos-arm",
    arch=Arch.ARM64,
    os=Os.MACOS,
    toolchain=Toolchain(
        compiler="clang",
        compiler_version=(14, 0),
        linker_version=(2, 0),
        libc=Libc.SYSTEM,
    ),
    cores_per_node=10,
    has_shared_fs=False,
)

#: An ARM64 HPC cluster (A64FX/Graviton-class).  The paper extended
#: TLSglobals to ARM and validated PIEglobals there.
ARM_CLUSTER = MachineModel(
    name="arm-cluster",
    arch=Arch.ARM64,
    os=Os.LINUX,
    toolchain=Toolchain(
        compiler="gcc",
        compiler_version=(11, 0),
        linker_version=(2, 36),
        libc=Libc.GLIBC,
    ),
    cores_per_node=64,
    l1i=CacheGeometry(64 * 1024, 4, 64),
    l2_per_core_bytes=1024 * 1024,
)

#: A POWER9 system (Summit-class).  PIEglobals was validated on POWER.
POWER9 = MachineModel(
    name="power9",
    arch=Arch.PPC64LE,
    os=Os.LINUX,
    toolchain=Toolchain(
        compiler="gcc",
        compiler_version=(9, 1),
        linker_version=(2, 30),
        libc=Libc.GLIBC,
    ),
    cores_per_node=42,
    l1i=CacheGeometry(32 * 1024, 8, 128),
    l2_per_core_bytes=512 * 1024,
)

#: Bridges-2 with PIP's patched glibc installed (lifts the namespace cap).
BRIDGES2_PATCHED_GLIBC = BRIDGES2.copy_with(
    name="bridges2-patched-glibc",
    toolchain=replace(BRIDGES2.toolchain, glibc_patched_namespaces=True),
)

#: Tiny deterministic machine for unit tests.
TEST_MACHINE = MachineModel(
    name="test",
    costs=TEST_COSTS,
    cores_per_node=4,
    l1i=CacheGeometry(4 * 1024, 2, 64),
    l2_per_core_bytes=64 * 1024,
)

PRESETS: dict[str, MachineModel] = {
    m.name: m
    for m in (
        BRIDGES2,
        STAMPEDE2_ICX,
        GENERIC_LINUX,
        ARM_CLUSTER,
        POWER9,
        LEGACY_LINUX_OLD_LD,
        MACOS_ARM,
        BRIDGES2_PATCHED_GLIBC,
        TEST_MACHINE,
    )
}


def get_machine(name: str) -> MachineModel:
    """Look up a preset by name (KeyError with a helpful message)."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown machine {name!r}; known presets: {known}") from None
