"""Capability probes: Tables 1 and 3, *executed* rather than transcribed.

For every privatization method the probes actually run the simulator:

* **correctness probe** — a program with a mutable global, a mutable
  static, and a TLS-tagged global; each rank writes its number into all
  three and checks what it reads back after a barrier.  What survives
  determines the automation rating (statics are Swapglobals' hole; the
  untagged global is TLSglobals' hole).
* **portability probe** — try building + starting on each machine preset.
* **SMP probe** — try an SMP-mode layout (and, for PIPglobals, more ranks
  per process than stock glibc has namespaces).
* **migration probe** — actually migrate a rank across processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ampi.runtime import AmpiJob
from repro.charm.node import JobLayout
from repro.errors import (
    CompileError,
    LoaderError,
    MigrationUnsupportedError,
    NamespaceLimitError,
    PrivatizationError,
    ReproError,
    SmpUnsupportedError,
    UnsupportedToolchain,
)
from repro.machine import (
    BRIDGES2,
    BRIDGES2_PATCHED_GLIBC,
    LEGACY_LINUX_OLD_LD,
    MACOS_ARM,
    STAMPEDE2_ICX,
    MachineModel,
    TEST_MACHINE,
)
from repro.privatization import get_method
from repro.program.source import Program, ProgramSource

#: presets the portability probe tries, in order
PORTABILITY_MACHINES: tuple[MachineModel, ...] = (
    BRIDGES2,
    LEGACY_LINUX_OLD_LD,
    STAMPEDE2_ICX,
    MACOS_ARM,
    BRIDGES2_PATCHED_GLIBC,
)


def correctness_program(language: str = "c") -> ProgramSource:
    """Mutable global + mutable static + TLS-tagged global probe."""
    p = Program("privprobe", language=language)
    p.add_global("g_var", -1)
    p.add_static("s_var", -1)
    p.add_global("t_var", -1, tls=True)
    p.add_global("ro_var", 7, const=True)

    @p.function()
    def main(ctx):
        me = ctx.mpi.rank()
        ctx.g.g_var = me
        ctx.g.s_var = me
        ctx.g.t_var = me
        ctx.mpi.barrier()
        return {
            "global": ctx.g.g_var == me,
            "static": ctx.g.s_var == me,
            "tls": ctx.g.t_var == me,
            "const": ctx.g.ro_var == 7,
        }

    return p.build()


@dataclass(frozen=True)
class CapabilityRow:
    method: str
    display_name: str
    automation: str
    portability: str
    smp_support: str
    migration: str
    #: raw probe evidence
    privatizes: dict
    works_on: tuple[str, ...]


def _probe_machine(method_name: str, language: str) -> MachineModel:
    """A machine each method can run on for the correctness probe."""
    if method_name == "swapglobals":
        return TEST_MACHINE.copy_with(toolchain=LEGACY_LINUX_OLD_LD.toolchain)
    if method_name == "mpc":
        return TEST_MACHINE.copy_with(toolchain=STAMPEDE2_ICX.toolchain)
    return TEST_MACHINE


def probe_correctness(method_name: str) -> dict:
    """Which variable classes does the method actually privatize?"""
    method = get_method(method_name)
    language = "fortran" if method_name == "photran" else "c"
    machine = _probe_machine(method_name, language)
    layout = (JobLayout(1, 2, 1) if method_name == "swapglobals"
              else JobLayout.single(2))
    job = AmpiJob(correctness_program(language), nvp=4, method=method,
                  machine=machine, layout=layout)
    result = job.run()
    verdict = {"global": True, "static": True, "tls": True, "const": True}
    for flags in result.exit_values.values():
        for k, ok in flags.items():
            verdict[k] = verdict[k] and ok
    return verdict


def probe_portability(method_name: str) -> tuple[str, ...]:
    """Machine presets on which the method builds and starts."""
    works = []
    language = "fortran" if method_name == "photran" else "c"
    for machine in PORTABILITY_MACHINES:
        method = get_method(method_name)
        layout = (JobLayout(1, 2, 1) if method_name == "swapglobals"
                  else JobLayout.single(2))
        try:
            job = AmpiJob(correctness_program(language), nvp=2,
                          method=method, machine=machine, layout=layout)
            job.start()
            job.scheduler.shutdown()
        except (UnsupportedToolchain, PrivatizationError, LoaderError,
                CompileError, SmpUnsupportedError, ReproError):
            continue
        works.append(machine.name)
    return tuple(works)


def probe_smp(method_name: str) -> str:
    """Can the method run many scheduler threads per process?"""
    method = get_method(method_name)
    language = "fortran" if method_name == "photran" else "c"
    machine = _probe_machine(method_name, language)
    try:
        # SMP mode with enough virtualization to exceed stock glibc's
        # dlmopen namespace budget in one process (the PIP pain point).
        job = AmpiJob(correctness_program(language), nvp=16, method=method,
                      machine=machine, layout=JobLayout.single(4))
        job.start()
        job.scheduler.shutdown()
        return "Yes"
    except SmpUnsupportedError:
        return "No"
    except NamespaceLimitError:
        return "Limited w/o patched glibc"
    except (UnsupportedToolchain, PrivatizationError):
        return "No"


def probe_migration(method_name: str) -> str:
    """Actually migrate a rank between OS processes."""
    method = get_method(method_name)
    language = "fortran" if method_name == "photran" else "c"
    machine = _probe_machine(method_name, language)
    p = Program("migprobe", language=language)
    p.add_global("x", 0)

    @p.function()
    def main(ctx):
        ctx.g.x = ctx.mpi.rank() * 10
        ctx.mpi.barrier()
        if ctx.mpi.rank() == 0:
            ctx.mpi.migrate_to(1)
        ctx.mpi.barrier()
        return ctx.g.x == ctx.mpi.rank() * 10

    try:
        job = AmpiJob(p.build(), nvp=2, method=method, machine=machine,
                      layout=JobLayout(1, 2, 1), slot_size=1 << 26)
        result = job.run()
    except MigrationUnsupportedError as e:
        if "never built" in str(e) or "possible" in str(e):
            return "Not implemented, but possible"
        return "No"
    ok = all(result.exit_values.values())
    moved = any(m.cross_process for m in result.migrations)
    return "Yes" if (ok and moved) else "No"


def _automation_rating(method_name: str, verdict: dict) -> str:
    method = get_method(method_name)
    caps = method.capabilities
    if method_name == "none":
        return "n/a"
    if caps.requires_source_changes:
        return caps.automation  # Poor / Fortran-specific: human-in-the-loop
    if verdict["global"] and verdict["static"]:
        return "Good"
    if verdict["global"] and not verdict["static"]:
        return "No static vars"
    if verdict["tls"] and not verdict["global"]:
        return "Mediocre"
    return "Poor"


def probe_method(method_name: str) -> CapabilityRow:
    """Run all four probes and assemble one feature-matrix row."""
    method = get_method(method_name)
    verdict = probe_correctness(method_name)
    works_on = probe_portability(method_name)
    return CapabilityRow(
        method=method_name,
        display_name=method.capabilities.method,
        automation=_automation_rating(method_name, verdict),
        portability=method.capabilities.portability,
        smp_support=probe_smp(method_name),
        migration=probe_migration(method_name),
        privatizes=verdict,
        works_on=works_on,
    )


#: Table 1's rows (existing methods) and Table 3's additions, in paper order
TABLE1_METHODS = ("manual", "photran", "swapglobals", "tlsglobals", "mpc",
                  "pipglobals")
TABLE3_METHODS = TABLE1_METHODS + ("fsglobals", "pieglobals")


def capability_table(method_names: tuple[str, ...],
                     title: str = "") -> str:
    from repro.harness.tables import format_table

    rows = []
    for name in method_names:
        r = probe_method(name)
        rows.append([r.display_name, r.automation, r.portability,
                     r.smp_support, r.migration])
    return format_table(
        ["Method", "Automation", "Portability", "SMP Mode Support",
         "Migration Support"],
        rows,
        title=title,
    )
