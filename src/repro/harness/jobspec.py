"""The canonical job specification shared by the CLI, the experiment
drivers, the bench, and the provenance store.

Every run in this repo is deterministic by contract: the simulated
timeline is a pure function of *what ran* — program, machine preset,
virtualization, placement, fault plan, transport, recovery scheme.
:class:`JobSpec` is the one value object that captures exactly that set
of inputs, with a stable JSON encoding (:meth:`JobSpec.to_dict` /
:meth:`JobSpec.from_dict`) and a content digest (:meth:`JobSpec.digest`)
over the canonical encoding.  It is deliberately *speed-agnostic*: the
ULT execution backend, tracing, and fetch tracing are runtime options of
:func:`build_job`, because none of them may change simulated timelines
(the repo-wide zero-overhead-when-off contract).

The provenance store (:mod:`repro.provenance`) keys run records by
``spec.digest()``; the future ``repro serve`` result cache will use the
same key.  :func:`run_spec` is the chokepoint every spec-built job runs
through — result hooks registered with :func:`add_result_hook` see
``(spec, job, result)`` for every run, which is how ``--provenance``
records runs without the harness importing the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.ampi.runtime import AmpiJob, JobResult
from repro.apps.adcirc import AdcircConfig, build_adcirc_program
from repro.apps.jacobi3d import JacobiConfig, build_jacobi_program
from repro.apps.memhog import MemhogConfig, build_memhog_program
from repro.apps.micro import (
    build_hello_program,
    build_pingpong_program,
    build_startup_program,
)
from repro.charm.node import JobLayout
from repro.errors import ReproError
from repro.ft.buddy import FtConfig
from repro.ft.plan import FaultPlan
from repro.machine import PRESETS, MachineModel, get_machine
from repro.mem.layout import DEFAULT_SLOT_SIZE
from repro.program.source import ProgramSource

# ---------------------------------------------------------------------------
# App registry: name + config dict -> ProgramSource
# ---------------------------------------------------------------------------

AppBuilder = Callable[[dict], ProgramSource]

_APPS: dict[str, AppBuilder] = {}


def register_app(name: str, builder: AppBuilder) -> None:
    """Register (or replace) a named program builder.

    The builder must be a pure function of its config dict so that equal
    specs build bit-identical programs.
    """
    _APPS[name] = builder


def app_names() -> list[str]:
    return sorted(_APPS)


def build_app_source(app: str, config: dict) -> ProgramSource:
    """Build a registered app's program from its config dict."""
    try:
        builder = _APPS[app]
    except KeyError:
        raise ReproError(
            f"unknown app {app!r}; registered: {app_names()}"
        ) from None
    return builder(dict(config))


register_app("jacobi3d", lambda cfg: build_jacobi_program(JacobiConfig(**cfg)))
register_app("adcirc", lambda cfg: build_adcirc_program(AdcircConfig(**cfg)))
register_app("memhog", lambda cfg: build_memhog_program(MemhogConfig(**cfg)))
register_app("startup", lambda cfg: build_startup_program(**cfg))
register_app("pingpong", lambda cfg: build_pingpong_program(**cfg))
register_app("hello", lambda cfg: build_hello_program(**cfg))


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobSpec:
    """Everything that determines a job's simulated timeline.

    ``app`` names a registered program builder and ``app_config`` holds
    its keyword arguments (JSON-able scalars only).  ``machine`` is a
    preset name (:data:`repro.machine.PRESETS`); custom machine models
    are not spec-able — callers with one fall back to constructing
    :class:`AmpiJob` directly and lose recordability.
    """

    app: str
    nvp: int
    app_config: dict = field(default_factory=dict)
    method: str = "pieglobals"
    machine: str = "generic-linux"
    layout: tuple[int, int, int] = (1, 1, 1)
    lb_strategy: str = "greedyrefine"
    optimize: int = 2
    stack_bytes: int = 64 * 1024
    slot_size: int = DEFAULT_SLOT_SIZE
    placement: str = "block"
    argv: tuple[str, ...] = ()
    #: :meth:`FaultPlan.to_dict` encoding, or None for a fault-free run
    fault_plan: dict | None = None
    #: ``FtConfig.ckpt_interval_ns`` or None for no explicit FT config
    ft_interval_ns: int | None = None
    transport: str = "priced"
    recovery: str = "global"
    #: run under the shared-state race detector (timeline-neutral)
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.nvp < 1:
            raise ReproError("spec needs at least one virtual rank")
        object.__setattr__(self, "layout", tuple(int(x) for x in self.layout))
        if len(self.layout) != 3:
            raise ReproError(f"layout must be (nodes, procs/node, pes/proc), "
                             f"got {self.layout!r}")
        object.__setattr__(self, "argv", tuple(str(a) for a in self.argv))
        object.__setattr__(self, "app_config", dict(self.app_config))

    # -- encoding -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        d = {
            "app": self.app,
            "app_config": dict(self.app_config),
            "nvp": self.nvp,
            "method": self.method,
            "machine": self.machine,
            "layout": list(self.layout),
            "lb_strategy": self.lb_strategy,
            "optimize": self.optimize,
            "stack_bytes": self.stack_bytes,
            "slot_size": self.slot_size,
            "placement": self.placement,
            "argv": list(self.argv),
            "fault_plan": self.fault_plan,
            "ft_interval_ns": self.ft_interval_ns,
            "transport": self.transport,
            "recovery": self.recovery,
            "sanitize": self.sanitize,
        }
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ReproError(f"unknown JobSpec fields: {sorted(unknown)}")
        kw = dict(d)
        if "layout" in kw:
            kw["layout"] = tuple(kw["layout"])
        if "argv" in kw:
            kw["argv"] = tuple(kw["argv"])
        return cls(**kw)

    def canonical(self) -> str:
        """The canonical encoding the digest is computed over: JSON with
        sorted keys and no whitespace.  Stable across processes and
        Python versions (no hash randomization, no float formatting
        ambiguity for the repr-round-trippable values specs hold)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical encoding — the content address."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    # -- materialization ----------------------------------------------------

    def build_source(self) -> ProgramSource:
        return build_app_source(self.app, self.app_config)

    def job_layout(self) -> JobLayout:
        n, ppn, pes = self.layout
        return JobLayout(nodes=n, processes_per_node=ppn,
                         pes_per_process=pes)


def machine_preset_name(machine: MachineModel) -> str | None:
    """The preset name of ``machine`` if it *is* a preset, else None
    (a copy_with-customized model is not serializable by name)."""
    preset = PRESETS.get(machine.name)
    return machine.name if preset == machine else None


def default_layout(nvp: int, machine: MachineModel) -> tuple[int, int, int]:
    """The layout :class:`AmpiJob` would pick when given none."""
    return (1, 1, min(nvp, machine.cores_per_node))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def build_job(
    spec: JobSpec,
    *,
    trace: Any = None,
    sanitize: Any = None,
    ult_backend: Any = None,
    trace_fetches: bool = False,
) -> AmpiJob:
    """Materialize a spec into a runnable :class:`AmpiJob`.

    The keyword arguments are the runtime (non-spec) options: none of
    them may change the simulated timeline.  ``sanitize`` overrides the
    spec's flag when given (e.g. to share one detector across a sweep).
    """
    if sanitize is None and spec.sanitize:
        sanitize = True
    plan = (FaultPlan.from_dict(spec.fault_plan)
            if spec.fault_plan is not None else None)
    ft = (FtConfig(ckpt_interval_ns=spec.ft_interval_ns)
          if spec.ft_interval_ns is not None else None)
    return AmpiJob(
        spec.build_source(), spec.nvp,
        method=spec.method,
        machine=get_machine(spec.machine),
        layout=spec.job_layout(),
        lb_strategy=spec.lb_strategy,
        optimize=spec.optimize,
        stack_bytes=spec.stack_bytes,
        slot_size=spec.slot_size,
        placement=spec.placement,
        argv=spec.argv,
        fault_plan=plan,
        ft=ft,
        transport=spec.transport,
        recovery=spec.recovery,
        trace=trace,
        sanitize=sanitize,
        ult_backend=ult_backend,
        trace_fetches=trace_fetches,
    )


#: the hook signature: fn(spec, job, result)
ResultHook = Callable[[JobSpec, AmpiJob, JobResult], None]

#: process-global hooks fired after every spec-built run
_result_hooks: list[ResultHook] = []

#: (hooks, exclusive) visible only to the current thread/task — the
#: scoped alternative the serve worker pool uses so one tenant's
#: recording hooks never fire for another tenant's jobs
_hook_scope: ContextVar[tuple[tuple[ResultHook, ...], bool]] = ContextVar(
    "repro_result_hook_scope", default=((), False))

_log = logging.getLogger(__name__)


def add_result_hook(fn: ResultHook) -> None:
    _result_hooks.append(fn)


def remove_result_hook(fn: ResultHook) -> None:
    try:
        _result_hooks.remove(fn)
    except ValueError:
        pass


@contextmanager
def result_hook_scope(*fns: ResultHook,
                      exclusive: bool = False) -> Iterator[None]:
    """Fire ``fns`` for spec-built runs inside this context only.

    Scoped hooks are carried in a :class:`~contextvars.ContextVar`, so
    they are invisible to other threads and asyncio tasks — two tenants
    recording into different stores cannot cross-contaminate the way
    they would through the process-global :func:`add_result_hook` list.
    ``exclusive=True`` additionally suppresses the process-global hooks
    for runs inside the scope (the serve workers run with an exclusive
    scope so a ``--provenance`` auto-recorder in the same process never
    double-records service jobs).
    """
    hooks, excl = _hook_scope.get()
    token = _hook_scope.set((hooks + fns, excl or exclusive))
    try:
        yield
    finally:
        _hook_scope.reset(token)


def run_spec_job(spec: JobSpec, **runtime: Any) -> tuple[AmpiJob, JobResult]:
    """Build and run a spec; returns (job, result) and fires the result
    hooks (the provenance auto-recorder attaches here).

    ``strict=False`` returns a structured result (with
    ``unrecoverable_reason`` set) instead of raising
    :class:`~repro.errors.FaultUnrecoverableError`; the result hooks
    fire for such runs too, so unrecoverable scenarios are recordable
    and replayable provenance like any other run.

    Hooks are observers, never participants: a raising hook is logged
    and skipped, so a *completed* job can never be made to look failed
    by its recorder — and every remaining hook still fires.
    """
    strict = runtime.pop("strict", True)
    job = build_job(spec, **runtime)
    result = job.run(strict=strict)
    scoped, exclusive = _hook_scope.get()
    hooks = scoped if exclusive else (*_result_hooks, *scoped)
    for fn in hooks:
        try:
            fn(spec, job, result)
        except Exception:
            _log.exception("result hook %r failed; run result is "
                           "unaffected", fn)
    return job, result


def run_spec(spec: JobSpec, **runtime: Any) -> JobResult:
    """Build and run a spec; returns the result."""
    return run_spec_job(spec, **runtime)[1]


# ---------------------------------------------------------------------------
# Code version
# ---------------------------------------------------------------------------

_code_version_cache: str | None = None


def code_version() -> str:
    """Digest of the installed ``repro`` source tree.

    Stored in every provenance record, fault-sweep row, and bench
    payload so results are attributable to the code that produced them.
    Computed over the relative path and bytes of every ``.py`` file
    under the package root, in sorted order.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for p in sorted(root.rglob("*.py")):
            h.update(p.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(p.read_bytes())
            h.update(b"\0")
        _code_version_cache = h.hexdigest()
    return _code_version_cache
