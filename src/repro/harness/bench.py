"""Wall-clock performance harness (``repro bench``).

Everything else in this repo measures *simulated* time; this module
measures *real* time — how fast the event loop itself executes on the
host — so regressions in the scheduler hot path or the ULT execution
backends show up as numbers, not vibes.

Three stages, written to ``BENCH_scale.json``:

``ult_churn``
    Pure backend lifecycle cost: create N ULTs, run each through a
    couple of yields, join.  This isolates exactly the work the pooled
    backend eliminates (OS-thread spawn/join per ULT), so it is the
    stage where the backend speedup is visible undiluted.

``jacobi``
    End-to-end scale smoke: Jacobi-3D at paper-scale VP counts under
    each backend.  The ratio here is bounded by the simulation model
    work that both backends share; the stage also checks the
    determinism contract — both backends must produce byte-identical
    simulated timelines (same scheduling order, same makespan).

``ctx_sweep``
    Figure-6-style context-switch sweep: a yield ping-pong program at
    increasing VP counts on one PE, reporting real switches/second.

``serve`` (``--serve``)
    Load-generator for the ``repro serve`` job service: a client fleet
    submits the pinned-scenario corpus against a fresh store (cold
    pass, every spec executes) and again (warm pass, every spec must be
    a cache hit with a byte-identical record), plus a single-flight
    burst (N identical submissions must coalesce onto one execution)
    — all while the service's own gc janitor cycles concurrently.
    Reports cold/warm throughput, warm/cold speedup and hit rate.

Wall-clock methodology: per measurement we take the best of ``reps``
runs with the garbage collector disabled inside the timed window (GC
pauses over the simulated-machine object graph otherwise dominate at
1k+ VPs and are attributed to whatever allocation triggers them).  The
pooled backend is prewarmed and each stage gets one untimed warmup run,
so numbers reflect steady state, not first-touch costs.
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.apps.jacobi3d import JacobiConfig
from repro.harness.jobspec import JobSpec, build_job, code_version, run_spec_job
from repro.perf.counters import EV_CTX_SWITCH
from repro.threads import UserLevelThread, get_backend
from repro.trace.stream import timeline_sha

#: the two execution backends every stage compares
BACKENDS = ("thread", "pooled")


@dataclass
class BackendSample:
    """Wall-clock samples for one backend in one stage."""

    wall_s: list[float] = field(default_factory=list)
    ops: int = 0                 #: stage-defined unit count per run
    makespan_ns: int | None = None
    timeline_sha: str | None = None

    @property
    def min_s(self) -> float:
        return min(self.wall_s) if self.wall_s else float("inf")

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.min_s if self.wall_s and self.min_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "wall_s": [round(t, 6) for t in self.wall_s],
            "min_s": round(self.min_s, 6),
            "ops": self.ops,
            "ops_per_s": round(self.ops_per_s, 1),
        }
        if self.makespan_ns is not None:
            d["makespan_ns"] = self.makespan_ns
        if self.timeline_sha is not None:
            d["timeline_sha256"] = self.timeline_sha
        return d


def _timed(fn: Callable[[], int], reps: int, sample: BackendSample) -> None:
    """Run ``fn`` ``reps`` times with GC off, recording wall seconds.

    ``fn`` returns the stage's op count for the run (lifecycles, context
    switches, ...); the last run's count is kept.
    """
    gc_was_on = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()  # repro: allow(det-wallclock) real host wall-clock is the measurement
            ops = fn()
            sample.wall_s.append(time.perf_counter() - t0)  # repro: allow(det-wallclock) real host wall-clock is the measurement
            sample.ops = ops
    finally:
        if gc_was_on:
            gc.enable()


def _reset_pool() -> None:
    """Drop the shared pooled backend so the next stage starts clean."""
    get_backend("pooled").close()


# ---------------------------------------------------------------------------
# Stage 1: ULT lifecycle churn
# ---------------------------------------------------------------------------

def bench_ult_churn(
    n_ults: int = 1024, yields: int = 2, reps: int = 3
) -> dict[str, Any]:
    """Create/run/join ``n_ults`` ULTs per rep under each backend.

    The op unit is one full ULT lifecycle.  The thread backend pays an
    OS-thread spawn + join per lifecycle; the pooled backend reuses a
    warm worker, which is the whole point of pooling.
    """
    def one_batch(backend: str) -> int:
        def body(u: UserLevelThread) -> None:
            for _ in range(yields):
                u.yield_("spin")

        ults = []
        for i in range(n_ults):
            u = UserLevelThread(f"churn{i}", lambda: None, backend=backend)
            u.target = body
            u.args = (u,)
            ults.append(u)
            u.start()
        live = ults
        while live:
            nxt = []
            for u in live:
                u.switch_in()
                if not u.finished:
                    nxt.append(u)
            live = nxt
        for u in ults:
            u.join_thread()
        return n_ults

    samples: dict[str, BackendSample] = {}
    for backend in BACKENDS:
        if backend == "pooled":
            get_backend("pooled").prewarm(n_ults)
        s = samples[backend] = BackendSample()
        one_batch(backend)  # untimed warmup
        _timed(lambda: one_batch(backend), reps, s)
    _reset_pool()

    ratio = samples["thread"].min_s / samples["pooled"].min_s
    return {
        "name": "ult_churn",
        "unit": "ULT lifecycles",
        "params": {"n_ults": n_ults, "yields": yields, "reps": reps},
        "backends": {b: s.to_dict() for b, s in samples.items()},
        "speedup_pooled_vs_thread": round(ratio, 2),
    }


# ---------------------------------------------------------------------------
# Stage 2: Jacobi scale smoke + determinism contract
# ---------------------------------------------------------------------------

def _run_jacobi_job(spec: JobSpec, backend: str) -> tuple[int, int, str]:
    """One Jacobi job; returns (ctx_switches, makespan_ns, timeline sha).

    The backend is a runtime option (zero-overhead-when-off contract),
    so one spec covers both backends — which is exactly the determinism
    claim this stage verifies.
    """
    job, result = run_spec_job(spec, ult_backend=backend)
    return (result.counters[EV_CTX_SWITCH], result.makespan_ns,
            timeline_sha(job.scheduler.timeline))


def bench_jacobi(
    nvp: int = 1024, n: int = 16, iters: int = 1, reps: int = 3
) -> dict[str, Any]:
    """End-to-end Jacobi-3D at ``nvp`` ranks under each backend.

    The op unit is one scheduler quantum (context switch).  Also
    verifies the backend determinism contract: identical simulated
    timelines and makespans across backends.
    """
    cfg = JacobiConfig(n=n, iters=iters, reduce_every=max(1, iters))
    spec = JobSpec(app="jacobi3d", nvp=nvp, app_config=dict(cfg.__dict__),
                   method="pieglobals", machine="generic-linux",
                   layout=(2, 2, 4))

    samples: dict[str, BackendSample] = {}
    shas: dict[str, list[str]] = {b: [] for b in BACKENDS}
    for backend in BACKENDS:
        if backend == "pooled":
            get_backend("pooled").prewarm(nvp)
        s = samples[backend] = BackendSample()
        _run_jacobi_job(spec, backend)  # untimed warmup

        def one_job(backend: str = backend, s: BackendSample = s) -> int:
            switches, makespan, sha = _run_jacobi_job(spec, backend)
            s.makespan_ns = makespan
            s.timeline_sha = sha
            shas[backend].append(sha)
            return switches

        _timed(one_job, reps, s)
    _reset_pool()

    # Determinism contract, both directions: every rep of one backend
    # must replay the same timeline (no hidden host-time dependence),
    # and the two backends must agree with each other.
    identical = (
        len({sha for reps_shas in shas.values() for sha in reps_shas}) == 1
        and samples["thread"].makespan_ns == samples["pooled"].makespan_ns
    )
    ratio = samples["thread"].min_s / samples["pooled"].min_s
    return {
        "name": "jacobi",
        "unit": "scheduler quanta",
        "params": {"nvp": nvp, "n": n, "iters": iters, "reps": reps},
        "backends": {b: s.to_dict() for b, s in samples.items()},
        "speedup_pooled_vs_thread": round(ratio, 2),
        "trace_identical": identical,
    }


# ---------------------------------------------------------------------------
# Stage 3: figure-6-style context-switch sweep
# ---------------------------------------------------------------------------

def bench_ctx_sweep(
    vps: Sequence[int] = (2, 64, 256),
    yields_per_rank: int = 200,
    backend: str = "pooled",
) -> dict[str, Any]:
    """Real switches/second of the yield ping-pong at growing VP counts.

    One PE, so every quantum is a scheduler-mediated baton handoff —
    the figure 6 microbenchmark measured in host time instead of
    simulated time.
    """
    if backend == "pooled":
        get_backend("pooled").prewarm(max(vps))
    rows = []
    for nvp in vps:
        spec = JobSpec(app="pingpong", nvp=nvp,
                       app_config={"yields_per_rank": yields_per_rank,
                                   "name": "bench_ctxswitch"},
                       method="none", machine="generic-linux",
                       layout=(1, 1, 1), slot_size=1 << 26)
        job = build_job(spec, ult_backend=backend)
        gc.collect()
        gc_was_on = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()  # repro: allow(det-wallclock) real host wall-clock is the measurement
            result = job.run()
            wall = time.perf_counter() - t0  # repro: allow(det-wallclock) real host wall-clock is the measurement
        finally:
            if gc_was_on:
                gc.enable()
        switches = result.counters[EV_CTX_SWITCH]
        rows.append({
            "nvp": nvp,
            "wall_s": round(wall, 6),
            "switches": switches,
            "switches_per_s": round(switches / wall, 1),
        })
    _reset_pool()
    return {
        "name": "ctx_sweep",
        "unit": "context switches",
        "params": {"yields_per_rank": yields_per_rank, "backend": backend},
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Stage 4 (opt-in): serve load generator
# ---------------------------------------------------------------------------

def _serve_corpus(limit: int | None = None) -> list[JobSpec]:
    """The pinned-scenario specs (the committed regression corpus), or a
    synthetic ping-pong ladder when no manifest is checked out."""
    from repro.provenance import DEFAULT_MANIFEST, load_manifest

    entries = load_manifest(DEFAULT_MANIFEST)
    specs = [e.spec for _, e in sorted(entries.items())]
    if not specs:
        specs = [
            JobSpec(app="pingpong", nvp=n,
                    app_config={"yields_per_rank": 60,
                                "name": f"serve-bench-{n}"},
                    method="none", machine="generic-linux",
                    layout=(1, 1, 1), slot_size=1 << 24)
            for n in (2, 4, 8)
        ]
    return specs[:limit] if limit else specs


def _latency_pcts(replies) -> dict[str, float]:
    """Client-observed p50/p95/p99 round-trip latency in ms."""
    walls = sorted(r.wall_s for r in replies)
    if not walls:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}

    def pct(q: float) -> float:
        idx = min(len(walls) - 1, int(q * len(walls)))
        return round(walls[idx] * 1000.0, 3)

    return {"p50_ms": pct(0.50), "p95_ms": pct(0.95), "p99_ms": pct(0.99)}


def bench_serve(
    *,
    workers: int = 2,
    worker_mode: str = "process",
    clients: int = 8,
    coalesce_n: int = 6,
    gc_every_s: float = 0.05,
    spec_limit: int | None = None,
) -> dict[str, Any]:
    """Load-generate against a private ``repro serve`` instance.

    Fresh store and socket in a temp dir, the service's gc janitor
    cycling every ``gc_every_s`` throughout (age budget 7 days, so it
    scans concurrently with worker writes but must evict nothing).
    The stage's ``ok`` is correctness, not speed: every cold submit
    succeeds, N identical concurrent submissions execute exactly once,
    every warm submit is a cache hit, and warm records are
    byte-identical to cold ones.  The warm/cold speedup is reported
    (the acceptance target is >= 50x for the pinned corpus).
    """
    import concurrent.futures
    import json
    import tempfile
    from collections import Counter
    from pathlib import Path

    from repro.provenance.store import ProvenanceStore
    from repro.serve import JobService, ServeClient, ServiceThread

    specs = _serve_corpus(spec_limit)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        store = ProvenanceStore(Path(tmp) / "store")
        service = JobService(
            store, workers=workers, worker_mode=worker_mode,
            socket_path=Path(tmp) / "serve.sock",
            gc_every_s=gc_every_s, gc_max_age_s=7 * 86400.0,
        )
        client = ServeClient(socket_path=Path(tmp) / "serve.sock")

        def submit_all() -> tuple[list, float]:
            t0 = time.perf_counter()  # repro: allow(det-wallclock) real host wall-clock is the measurement
            with concurrent.futures.ThreadPoolExecutor(clients) as ex:
                replies = list(ex.map(client.submit, specs))
            return replies, time.perf_counter() - t0  # repro: allow(det-wallclock) real host wall-clock is the measurement

        with ServiceThread(service):
            client.ping()
            cold, cold_s = submit_all()

            # Single-flight burst: a spec the corpus has not seen yet,
            # submitted coalesce_n times at once — exactly one execution.
            burst_spec = JobSpec(
                app="pingpong", nvp=4,
                app_config={"yields_per_rank": 40,
                            "name": "serve-bench-burst"},
                method="none", machine="generic-linux",
                layout=(1, 1, 1), slot_size=1 << 24)
            executed_before = client.stats()["executed"]
            with concurrent.futures.ThreadPoolExecutor(coalesce_n) as ex:
                burst = list(ex.map(
                    lambda _: client.submit(burst_spec), range(coalesce_n)))
            executed_delta = client.stats()["executed"] - executed_before

            warm, warm_s = submit_all()

            # Batch verb: the whole corpus in ONE round trip (all hits
            # by now) — amortizes the protocol over the job list.
            t0 = time.perf_counter()  # repro: allow(det-wallclock) real host wall-clock is the measurement
            batch = client.submit_many(specs)
            batch_s = time.perf_counter() - t0  # repro: allow(det-wallclock) real host wall-clock is the measurement

            stats = client.stats()
        records_after = len(store)

    def canon(reply) -> str:
        return json.dumps(reply.record, sort_keys=True)

    cold_by_id = {r.run_id: canon(r) for r in cold if r.ok}
    identical = (
        all(r.ok for r in cold) and all(r.ok for r in warm)
        and all(cold_by_id.get(r.run_id) == canon(r) for r in warm)
    )
    warm_hits = sum(1 for r in warm if r.hit)
    n = len(specs)
    expected_records = len(cold_by_id) + (1 if any(r.ok for r in burst)
                                          else 0)
    batch_hits = sum(1 for r in batch if r.hit)
    pool = stats.get("pool", {})
    ok = (
        identical
        and warm_hits == n
        and executed_delta == 1
        and all(r.ok for r in burst)
        and all(r.ok for r in batch)
        and batch_hits == n
        and stats["gc_errors"] == 0
        and stats["gc_cycles"] >= 1
        and records_after == expected_records
    )
    speedup = round(cold_s / warm_s, 2) if warm_s > 0 else float("inf")
    return {
        "name": "serve",
        "unit": "jobs",
        "params": {"workers": workers, "worker_mode": worker_mode,
                   "clients": clients, "n_specs": n,
                   "coalesce_n": coalesce_n, "gc_every_s": gc_every_s},
        "cold": {"jobs": n, "total_s": round(cold_s, 6),
                 "jobs_per_s": round(n / cold_s, 2),
                 "caches": dict(Counter(r.cache for r in cold)),
                 **_latency_pcts(cold)},
        "warm": {"jobs": n, "total_s": round(warm_s, 6),
                 "jobs_per_s": round(n / warm_s, 2),
                 "hit_rate": round(warm_hits / n, 4) if n else 0.0,
                 **_latency_pcts(warm)},
        "batch": {"jobs": n, "total_s": round(batch_s, 6),
                  "jobs_per_s": round(n / batch_s, 2) if batch_s > 0
                  else float("inf"),
                  "hit_rate": round(batch_hits / n, 4) if n else 0.0,
                  **_latency_pcts(batch)},
        "speedup_warm_vs_cold": speedup,
        "coalesce": {"burst": coalesce_n, "executed_delta": executed_delta,
                     "caches": dict(Counter(r.cache for r in burst))},
        "resilience": {
            "queue_depth": stats.get("inflight", 0),
            "max_queue": stats.get("max_queue"),
            "shed": stats.get("shed", 0),
            "deadline_exceeded": stats.get("deadline_exceeded", 0),
            "quarantined": stats.get("quarantined", 0),
            "retries": pool.get("retries", 0),
            "respawns": pool.get("respawns", 0),
            "lease_waits": stats.get("lease_waits", 0),
            "lease_takeovers": stats.get("lease_takeovers", 0),
        },
        "gc": {"cycles": stats["gc_cycles"], "errors": stats["gc_errors"],
               "records_after": records_after,
               "expected_records": expected_records},
        "records_identical": identical,
        "ok": ok,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_bench(quick: bool = False, *, nvp: int | None = None,
              reps: int | None = None, serve: bool = False) -> dict[str, Any]:
    """Run all stages; returns the ``BENCH_scale.json`` payload.

    ``quick`` shrinks every stage for CI smoke use (a few seconds
    total); the full run targets the paper-scale 1k-VP smoke.
    ``serve`` appends the opt-in job-service load-gen stage (thread
    workers under ``quick``, real worker processes otherwise).
    """
    if quick:
        churn_n, jacobi_nvp, sweep_vps = 128, 64, (2, 16, 64)
        nreps = reps or 2
    else:
        churn_n, jacobi_nvp, sweep_vps = 1024, nvp or 1024, (2, 64, 256)
        nreps = reps or 3
    if nvp is not None:
        jacobi_nvp = nvp
    stages = [
        bench_ult_churn(n_ults=churn_n, reps=nreps),
        bench_jacobi(nvp=jacobi_nvp, reps=nreps),
        bench_ctx_sweep(vps=sweep_vps),
    ]
    if serve:
        if quick:
            stages.append(bench_serve(worker_mode="thread", workers=2,
                                      clients=4, spec_limit=3))
        else:
            stages.append(bench_serve(worker_mode="process", workers=2,
                                      clients=8))
    return {
        "bench": "scale_smoke",
        "quick": quick,
        "python": sys.version.split()[0],
        "code_version": code_version(),
        "stages": stages,
    }
