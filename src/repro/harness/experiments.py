"""Experiment drivers for every figure in the paper's evaluation.

Each driver returns plain rows (dataclasses) so that benchmarks print the
paper's tables and tests assert on the shapes:

* :func:`startup_experiment` — Figure 5
* :func:`context_switch_experiment` — Figure 6
* :func:`jacobi_access_experiment` — Figure 7 (+ the -O0 ablation)
* :func:`migration_experiment` — Figure 8
* :func:`icache_experiment` — Section 4.5
* :func:`adcirc_scaling_experiment` — Table 2 and Figure 9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.ampi.runtime import AmpiJob, JobResult
from repro.apps.adcirc import AdcircConfig
from repro.apps.jacobi3d import JacobiConfig
from repro.apps.memhog import MemhogConfig
from repro.charm.node import JobLayout
from repro.harness.jobspec import (
    JobSpec,
    build_app_source,
    machine_preset_name,
    run_spec_job,
)
from repro.machine import BRIDGES2, STAMPEDE2_ICX, MachineModel
from repro.mem.layout import DEFAULT_SLOT_SIZE
from repro.perf.counters import EV_CTX_SWITCH
from repro.perf.icache import SetAssociativeCache
from repro.trace.recorder import TraceRecorder

#: methods compared in Figures 5-7 (Swapglobals "we were unable to get
#: working on this system", exactly as on Bridges-2)
FIGURE_METHODS = ("none", "tlsglobals", "pipglobals", "fsglobals",
                  "pieglobals")


def _spec_run(
    app: str,
    app_config: dict,
    nvp: int,
    *,
    machine: MachineModel,
    layout: JobLayout,
    method: str | Any = "pieglobals",
    lb_strategy: str | Any = "greedyrefine",
    optimize: int = 2,
    slot_size: int = DEFAULT_SLOT_SIZE,
    trace: TraceRecorder | None = None,
    sanitize: Any = None,
    trace_fetches: bool = False,
) -> tuple[AmpiJob, JobResult]:
    """Run one experiment data point through the canonical spec.

    Every driver funnels through here so that ``--provenance`` records
    each point of a sweep.  A non-preset machine model or a method /
    strategy passed as an instance is not spec-able; those fall back to
    direct :class:`AmpiJob` construction (same timeline, no record).
    """
    preset = machine_preset_name(machine)
    if preset is not None and isinstance(method, str) \
            and isinstance(lb_strategy, str):
        spec = JobSpec(
            app=app, nvp=nvp, app_config=app_config, method=method,
            machine=preset,
            layout=(layout.nodes, layout.processes_per_node,
                    layout.pes_per_process),
            lb_strategy=lb_strategy, optimize=optimize,
            slot_size=slot_size,
        )
        return run_spec_job(spec, trace=trace, sanitize=sanitize,
                            trace_fetches=trace_fetches)
    job = AmpiJob(build_app_source(app, app_config), nvp, method=method,
                  machine=machine, layout=layout, lb_strategy=lb_strategy,
                  optimize=optimize, slot_size=slot_size, trace=trace,
                  sanitize=sanitize, trace_fetches=trace_fetches)
    return job, job.run()


# ---------------------------------------------------------------------------
# Figure 5: startup / initialization overhead
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StartupRow:
    method: str
    nodes: int
    ranks_per_process: int
    startup_ns: int
    overhead_pct: float      #: vs. the no-privatization baseline


def startup_experiment(
    methods: Sequence[str] = FIGURE_METHODS,
    *,
    ranks_per_process: int = 8,
    nodes: int = 1,
    machine: MachineModel = BRIDGES2,
    code_bytes: int = 256 * 1024,
    trace: TraceRecorder | None = None,
    sanitize: Any = None,
) -> list[StartupRow]:
    """Figure 5: AMPI init time with 8x virtualization, per method."""
    layout = JobLayout(nodes=nodes, processes_per_node=1, pes_per_process=1)
    nvp = ranks_per_process * layout.total_processes
    rows: list[StartupRow] = []
    baseline = None
    for method in methods:
        _, result = _spec_run(
            "startup", {"code_bytes": code_bytes}, nvp, method=method,
            machine=machine, layout=layout, slot_size=1 << 26,
            trace=trace, sanitize=sanitize)
        if method == "none":
            baseline = result.startup_ns
        pct = (100.0 * (result.startup_ns - baseline) / baseline
               if baseline else 0.0)
        rows.append(StartupRow(method, nodes, ranks_per_process,
                               result.startup_ns, pct))
    return rows


# ---------------------------------------------------------------------------
# Figure 6: ULT context-switch time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SwitchRow:
    method: str
    switches: int
    ns_per_switch: float
    delta_vs_baseline_ns: float


def context_switch_experiment(
    methods: Sequence[str] = FIGURE_METHODS,
    *,
    yields_per_rank: int = 100_000,
    machine: MachineModel = BRIDGES2,
    trace: TraceRecorder | None = None,
    sanitize: Any = None,
) -> list[SwitchRow]:
    """Figure 6: two ULTs on one PE yielding back and forth.

    ``ns_per_switch`` is app time divided by measured context switches —
    the same averaging over 100 000 switches the paper uses.
    """
    rows: list[SwitchRow] = []
    baseline = None
    for method in methods:
        _, result = _spec_run(
            "pingpong", {"yields_per_rank": yields_per_rank}, 2,
            method=method, machine=machine, layout=JobLayout.single(1),
            slot_size=1 << 26, trace=trace, sanitize=sanitize)
        switches = result.counters[EV_CTX_SWITCH]
        ns = result.app_ns / max(1, switches)
        if method == "none":
            baseline = ns
        rows.append(SwitchRow(
            method, switches, ns,
            (ns - baseline) if baseline is not None else 0.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 7: privatized variable access overhead (Jacobi-3D)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AccessRow:
    method: str
    optimize: int
    exec_ns: int
    rel_to_baseline: float


def jacobi_access_experiment(
    methods: Sequence[str] = FIGURE_METHODS,
    *,
    cfg: JacobiConfig = JacobiConfig(n=20, iters=8),
    nvp: int = 8,
    machine: MachineModel = BRIDGES2,
    optimize: int = 2,
    trace: TraceRecorder | None = None,
    sanitize: Any = None,
) -> list[AccessRow]:
    """Figure 7 at -O2 (no hidden per-access cost); run with
    ``optimize=0`` for the ablation where TLS indirection shows up.

    Each method gets the build its users would produce: TLSglobals users
    tag the inner-loop globals ``thread_local``; everyone else's build
    leaves them as plain globals (-fmpc-privatize tags them itself).
    """
    rows: list[AccessRow] = []
    baseline = None
    for method in methods:
        tagged = method in ("tlsglobals",)
        _, result = _spec_run(
            "jacobi3d", {**cfg.__dict__, "tag_tls": tagged}, nvp,
            method=method, machine=machine,
            layout=JobLayout.single(min(nvp, 8)), optimize=optimize,
            slot_size=1 << 27, trace=trace, sanitize=sanitize)
        if method == "none":
            baseline = result.app_ns
        rows.append(AccessRow(
            method, optimize, result.app_ns,
            result.app_ns / baseline if baseline else 1.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 8: migration time vs. per-rank memory
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MigrationRow:
    method: str
    heap_mb: int
    migrate_ns: int
    bytes_moved: int


def migration_experiment(
    methods: Sequence[str] = ("tlsglobals", "pieglobals"),
    *,
    heap_mbs: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 100),
    code_bytes: int = 14 * 1024 * 1024,
    machine: MachineModel = BRIDGES2,
    trace: TraceRecorder | None = None,
    sanitize: Any = None,
) -> list[MigrationRow]:
    """Figure 8: migrate one rank across nodes as its heap grows.

    ``code_bytes`` defaults to ADCIRC's ~14 MB segment, the extra payload
    PIEglobals must move but TLSglobals does not.
    """
    rows: list[MigrationRow] = []
    for heap_mb in heap_mbs:
        cfg = MemhogConfig(heap_mb=heap_mb, code_bytes=code_bytes)
        for method in methods:
            _, result = _spec_run(
                "memhog", dict(cfg.__dict__), 2, method=method,
                machine=machine,
                layout=JobLayout(nodes=2, processes_per_node=1,
                                 pes_per_process=1),
                slot_size=1 << 28, trace=trace, sanitize=sanitize,
            )
            cross = [m for m in result.migrations if m.cross_process]
            rows.append(MigrationRow(
                method, heap_mb,
                migrate_ns=result.exit_values[0],
                bytes_moved=cross[0].nbytes if cross else 0,
            ))
    return rows


# ---------------------------------------------------------------------------
# Section 4.5: L1 instruction-cache misses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IcacheRow:
    machine: str
    method: str
    accesses: int
    misses: int
    miss_rate: float


#: simulated footprint of the scheduler/runtime code touched per switch
SCHEDULER_CODE_BYTES = 6 * 1024


def _build_fetch_trace(job: AmpiJob, machine: MachineModel,
                       tls_build: bool, pe_index: int = 0
                       ) -> list[tuple[int, int]]:
    """Reconstruct PE ``pe_index``'s instruction-fetch span sequence.

    Uses the real scheduler timeline (which rank ran when) and each
    rank's real traced spans, splitting them evenly across its quanta.
    TLS builds inflate span sizes by the machine's toolchain-dependent
    factor (extra address computation at each TLS-routed access).
    """
    inflate = 1.0 + (machine.tls_code_inflation if tls_build else 0.0)
    quanta: list[tuple[int, int]] = [
        (vp, i) for i, (pe, vp, _) in enumerate(job.scheduler.timeline)
        if pe == pe_index
    ]
    per_vp_quanta: dict[int, int] = {}
    for vp, _ in quanta:
        per_vp_quanta[vp] = per_vp_quanta.get(vp, 0) + 1
    spans_of: dict[int, list[tuple[int, int]]] = {
        vp: list(job.rank_of(vp).ctx.tracer.spans)
        for vp in per_vp_quanta
    }
    seen: dict[int, int] = {vp: 0 for vp in per_vp_quanta}
    trace: list[tuple[int, int]] = []
    for vp, _ in quanta:
        # Scheduler code runs at every switch.
        trace.append((machine.runtime_code_base, SCHEDULER_CODE_BYTES))
        spans = spans_of[vp]
        nq = per_vp_quanta[vp]
        i = seen[vp]
        lo = i * len(spans) // nq
        hi = (i + 1) * len(spans) // nq
        seen[vp] += 1
        for addr, nbytes in spans[lo:hi]:
            trace.append((addr, int(nbytes * inflate)))
    return trace


def icache_experiment(
    machines: Sequence[MachineModel] = (BRIDGES2, STAMPEDE2_ICX),
    *,
    cfg: JacobiConfig = JacobiConfig(n=18, iters=12, reduce_every=1),
    nvp: int = 8,
    methods: Sequence[str] = ("tlsglobals", "pieglobals"),
) -> list[IcacheRow]:
    """Section 4.5: run Jacobi-3D fetch traces through each machine's L1i.

    All ranks share one PE (maximum interleaving).  The TLSglobals build
    shares one copy of the code but carries the toolchain's TLS access
    inflation; the PIEglobals build has per-rank copies at distinct
    addresses with lean IP-relative access.
    """
    rows: list[IcacheRow] = []
    for machine in machines:
        for method in methods:
            job, _ = _spec_run(
                "jacobi3d", dict(cfg.__dict__), nvp, method=method,
                machine=machine, layout=JobLayout.single(1),
                slot_size=1 << 27, trace_fetches=True)
            trace = _build_fetch_trace(
                job, machine, tls_build=(method == "tlsglobals")
            )
            cache = SetAssociativeCache(machine.l1i)
            for addr, nbytes in trace:
                cache.access_block(addr, nbytes)
            rows.append(IcacheRow(
                machine.name, method, cache.accesses, cache.misses,
                cache.miss_rate,
            ))
    return rows


# ---------------------------------------------------------------------------
# Table 2 / Figure 9: ADCIRC strong scaling with virtualization + LB
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdcircRow:
    cores: int
    virtualization: int     #: VPs per core (1 == the baseline)
    lb: bool
    exec_ns: int


@dataclass(frozen=True)
class AdcircSummary:
    cores: int
    best_ratio: int
    baseline_ns: int
    best_ns: int

    @property
    def speedup_pct(self) -> int:
        """The paper's Table 2 metric: percent improvement of the best
        virtualization ratio over the non-virtualized baseline."""
        if self.best_ns <= 0:
            return 0
        return round(100.0 * (self.baseline_ns - self.best_ns) / self.best_ns)


_ADCIRC_CACHE: dict = {}


def adcirc_scaling_experiment(
    cores_list: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ratios: Sequence[int] = (1, 2, 4, 8),
    *,
    cfg: AdcircConfig = AdcircConfig(),
    machine: MachineModel = BRIDGES2,
    method: str = "pieglobals",
    lb_strategy: str = "greedyrefine",
) -> tuple[list[AdcircRow], list[AdcircSummary]]:
    """Memoized front-end: Table 2 and Figure 9 share one sweep."""
    key = (tuple(cores_list), tuple(ratios), cfg, machine.name, method,
           lb_strategy)
    if key not in _ADCIRC_CACHE:
        _ADCIRC_CACHE[key] = _adcirc_scaling_experiment(
            cores_list, ratios, cfg=cfg, machine=machine, method=method,
            lb_strategy=lb_strategy,
        )
    return _ADCIRC_CACHE[key]


def _adcirc_scaling_experiment(
    cores_list: Sequence[int],
    ratios: Sequence[int],
    *,
    cfg: AdcircConfig,
    machine: MachineModel,
    method: str,
    lb_strategy: str,
) -> tuple[list[AdcircRow], list[AdcircSummary]]:
    """Strong scaling: same global problem, cores x virtualization sweep.

    Baseline is 1 VP/core without LB; virtualized runs add GreedyRefineLB
    at the app's LB period (the paper's ADCIRC setup).  The storm-surge
    load front evolves over many steps, so measured loads predict the
    near future and refinement-based balancing pays off.
    """
    rows: list[AdcircRow] = []
    summaries: list[AdcircSummary] = []
    for cores in cores_list:
        per_core: dict[int, int] = {}
        for ratio in ratios:
            nvp = cores * ratio
            if nvp > cfg.height:   # cannot split rows thinner than 1
                continue
            lb = ratio > 1
            run_cfg = AdcircConfig(**{
                **cfg.__dict__,
                "lb_period": (cfg.lb_period or 5) if lb else 0,
                "l2_bytes": machine.l2_per_core_bytes,
            })
            layout = _square_layout(cores, machine)
            _, result = _spec_run(
                "adcirc", dict(run_cfg.__dict__), nvp, method=method,
                machine=machine, layout=layout, lb_strategy=lb_strategy,
                slot_size=1 << 26)
            rows.append(AdcircRow(cores, ratio, lb, result.app_ns))
            per_core[ratio] = result.app_ns
        if 1 in per_core:
            best_ratio = min(per_core, key=per_core.get)
            summaries.append(AdcircSummary(
                cores=cores,
                best_ratio=best_ratio,
                baseline_ns=per_core[1],
                best_ns=per_core[best_ratio],
            ))
    return rows, summaries


def _square_layout(cores: int, machine: MachineModel) -> JobLayout:
    """Spread cores over nodes like a real allocation (1 proc per node,
    up to the machine's cores per node)."""
    per_node = min(cores, machine.cores_per_node)
    nodes = (cores + per_node - 1) // per_node
    return JobLayout(nodes=nodes, processes_per_node=1,
                     pes_per_process=per_node)


# ---------------------------------------------------------------------------
# Fault-tolerance overhead sweep: failure-free vs. k node crashes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRow:
    k: int                    #: injected node crashes
    seed: int
    status: str               #: "ok" or "unrecoverable: <reason code>"
    makespan_ns: int
    overhead_pct: float       #: vs. the failure-free (k=0) run
    recovery_ns: int          #: total simulated recovery time (counter)
    faults: int               #: EV_FAULT
    checkpoints: int          #: EV_CKPT (incl. the startup baseline)
    ckpt_bytes: int           #: EV_CKPT_BYTES
    migrations: int           #: cross-PE moves (recovery re-mapping)
    residual: float | None    #: final Jacobi residual (None if failed)
    transport: str = "priced"
    recovery: str = "global"
    retransmissions: int = 0  #: EV_RETRANS (reliable transport only)
    replayed: int = 0         #: EV_REPLAYED (local recovery only)
    rollbacks: int = 0        #: ranks rolled back across all recoveries
    #: :meth:`FaultPlan.to_dict` of the plan this row ran under (None for
    #: the failure-free baseline) — embedding it makes each row
    #: self-reproducible: ``FaultPlan.from_dict(row.plan)`` + the row's
    #: seed/transport/recovery rebuilds the exact run.
    plan: dict | None = None
    #: digest of the sources that produced this row (see
    #: :func:`repro.harness.jobspec.code_version`) — a replayed plan is
    #: only expected to be bit-identical under the same code version.
    code_version: str = ""
    #: structured classification from
    #: :data:`repro.errors.UNRECOVERABLE_REASONS` (None when ok) — the
    #: machine-checkable field; ``status`` is its human rendering
    unrecoverable_reason: str | None = None
    #: fatal error message for an unrecoverable run (None when ok)
    error: str | None = None


def fault_overhead_experiment(
    kmax: int = 2,
    *,
    seed: int = 20220822,
    nvp: int = 8,
    nodes: int = 4,
    method: str = "pieglobals",
    machine: MachineModel = None,
    cfg: JacobiConfig | None = None,
    ckpt_interval_ns: int = 0,
    trace: TraceRecorder | None = None,
    transport: str = "priced",
    recovery: str = "global",
    message_faults: Any = None,
) -> list[FaultRow]:
    """Runtime overhead of surviving ``k`` node crashes, k = 0..kmax.

    A restart-aware Jacobi-3D (checkpointing every ``ckpt_period``
    iterations) runs once failure-free to calibrate the crash window
    (inside the application phase, away from the edges), then once per
    ``k`` with :meth:`FaultPlan.random_crashes`.  Everything is seeded —
    rerunning the sweep reproduces it bit-for-bit.  A run whose crashes
    destroy both snapshot copies reports
    ``status="unrecoverable: <reason>"`` — with the machine-checkable
    code on ``unrecoverable_reason`` — instead of raising.

    ``transport``/``recovery`` select the point-to-point transport and
    the rollback scheme (see :class:`repro.ampi.runtime.AmpiJob`);
    ``message_faults`` (a :class:`repro.ft.MessageFaults`) adds
    drop/duplicate/corrupt probabilities to every plan in the sweep,
    including the failure-free baseline, so overhead is measured against
    the same wire conditions.
    """
    from repro.apps.jacobi3d import run_jacobi
    from repro.ft import FaultPlan, FtConfig
    from repro.machine import GENERIC_LINUX
    from repro.perf.counters import (
        EV_CKPT,
        EV_CKPT_BYTES,
        EV_FAULT,
        EV_RECOVERY_NS,
        EV_REPLAYED,
        EV_RETRANS,
    )

    if kmax < 0:
        raise ValueError("kmax must be >= 0")
    machine = machine or GENERIC_LINUX
    cfg = cfg or JacobiConfig(n=16, iters=16, reduce_every=4,
                              ckpt_period=2, compute_ns_per_cell=2000.0)
    if not cfg.ckpt_period:
        raise ValueError("fault sweep needs a checkpointing app "
                         "(cfg.ckpt_period > 0)")
    per_node = max(1, min(machine.cores_per_node,
                          (nvp + nodes - 1) // nodes))
    layout = JobLayout(nodes=nodes, processes_per_node=1,
                       pes_per_process=per_node)
    ft = FtConfig(ckpt_interval_ns=ckpt_interval_ns)

    def one(plan) -> JobResult:
        # strict=False: an unrecoverable run comes back as a structured
        # result (unrecoverable_reason set) rather than an exception.
        return run_jacobi(cfg, nvp, method=method, machine=machine,
                          layout=layout, fault_plan=plan, ft=ft,
                          trace=trace, transport=transport,
                          recovery=recovery, strict=False)

    mf = message_faults
    base_plan = (FaultPlan(seed=seed, message_faults=mf)
                 if mf is not None and mf.any else None)
    base = one(base_plan)
    base_span = base.makespan_ns
    # Crash window: the middle of the application phase.
    lo = base.startup_ns + base.app_ns // 10
    hi = base.startup_ns + (base.app_ns * 8) // 10
    if hi <= lo:
        hi = lo + 1

    from repro.harness.jobspec import code_version

    code_ver = code_version()

    def row(k: int, result: JobResult, plan=None) -> FaultRow:
        plan_dict = plan.to_dict() if plan is not None else None
        reason = result.unrecoverable_reason
        status = "ok" if reason is None else f"unrecoverable: {reason}"
        c = result.counters
        return FaultRow(
            k=k, seed=seed, status=status,
            makespan_ns=result.makespan_ns,
            overhead_pct=round(
                100.0 * (result.makespan_ns - base_span) / base_span, 4),
            recovery_ns=c[EV_RECOVERY_NS],
            faults=c[EV_FAULT],
            checkpoints=c[EV_CKPT],
            ckpt_bytes=c[EV_CKPT_BYTES],
            migrations=sum(1 for m in result.migrations
                           if m.src_pe != m.dst_pe),
            residual=result.exit_values.get(0),
            transport=transport,
            recovery=recovery,
            retransmissions=c[EV_RETRANS],
            replayed=c[EV_REPLAYED],
            rollbacks=sum(result.rollbacks.values()),
            plan=plan_dict,
            code_version=code_ver,
            unrecoverable_reason=reason,
            error=result.error,
        )

    rows = [row(0, base, base_plan)]
    for k in range(1, kmax + 1):
        plan = FaultPlan.random_crashes(seed, k, nodes, (lo, hi),
                                        message_faults=mf)
        rows.append(row(k, one(plan), plan))
    return rows


# ---------------------------------------------------------------------------
# Recovery-scheme comparison: global rollback vs. message-logging local
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryRow:
    mode: str                 #: "none" (failure-free) | "global" | "local"
    makespan_ns: int
    recovery_ns: int          #: EV_RECOVERY_NS
    rollbacks: int            #: ranks rolled back (all recoveries summed)
    survivor_rollbacks: int   #: rollbacks of ranks that never died
    replayed: int             #: EV_REPLAYED (messages + collectives)
    residual: float | None    #: final Jacobi residual


def recovery_comparison_experiment(
    *,
    seed: int = 3,
    nvp: int = 8,
    nodes: int = 4,
    method: str = "pieglobals",
    machine: MachineModel = None,
    cfg: JacobiConfig | None = None,
) -> list[RecoveryRow]:
    """Cost of surviving one node crash: global rollback vs. local.

    The same crash plan runs under ``recovery="global"`` (every rank
    rolls back to the last buddy checkpoint) and ``recovery="local"``
    (only the dead node's ranks roll back; survivors keep running and
    the recovering ranks re-execute from the sender-based message log).
    Both runs use ``transport="reliable"`` so the only variable is the
    rollback scheme.  The failure-free run rides along as the baseline;
    all three produce identical numerics.
    """
    from repro.apps.jacobi3d import run_jacobi
    from repro.ft import FaultPlan, NodeCrash
    from repro.machine import GENERIC_LINUX
    from repro.perf.counters import EV_RECOVERY_NS, EV_REPLAYED

    machine = machine or GENERIC_LINUX
    cfg = cfg or JacobiConfig(n=12, iters=8, reduce_every=2,
                              ckpt_period=2, compute_ns_per_cell=2000.0)
    if not cfg.ckpt_period:
        raise ValueError("recovery comparison needs a checkpointing app "
                         "(cfg.ckpt_period > 0)")
    per_node = max(1, min(machine.cores_per_node,
                          (nvp + nodes - 1) // nodes))
    layout = JobLayout(nodes=nodes, processes_per_node=1,
                       pes_per_process=per_node)

    def one(plan, recovery) -> JobResult:
        return run_jacobi(cfg, nvp, method=method, machine=machine,
                          layout=layout, fault_plan=plan,
                          transport="reliable", recovery=recovery)

    base = one(None, "global")
    crash_at = base.startup_ns + base.app_ns // 2
    plan = FaultPlan(seed=seed, node_crashes=(
        NodeCrash(at_ns=crash_at, node=nodes // 2),))

    runs = [("none", base)]
    for mode in ("global", "local"):
        runs.append((mode, one(plan, mode)))

    # Under local recovery exactly the dead ranks roll back, so its
    # rollback keys identify the crash casualties for every row.
    dead = set(dict(runs[2][1].rollbacks))

    rows = []
    for mode, res in runs:
        rows.append(RecoveryRow(
            mode=mode,
            makespan_ns=res.makespan_ns,
            recovery_ns=res.counters[EV_RECOVERY_NS],
            rollbacks=sum(res.rollbacks.values()),
            survivor_rollbacks=sum(n for vp, n in res.rollbacks.items()
                                   if vp not in dead),
            replayed=res.counters[EV_REPLAYED],
            residual=res.exit_values.get(0),
        ))
    return rows
