"""Experiment harness shared by the benchmarks, examples, and docs:
capability probes (Tables 1/3), table formatting, and the per-figure
experiment drivers."""

from repro.harness.tables import format_table, format_markdown_table
from repro.harness.capabilities import CapabilityRow, probe_method, capability_table
from repro.harness.jobspec import (
    JobSpec,
    add_result_hook,
    app_names,
    build_app_source,
    build_job,
    code_version,
    register_app,
    remove_result_hook,
    run_spec,
    run_spec_job,
)
from repro.harness.experiments import (
    FaultRow,
    adcirc_scaling_experiment,
    context_switch_experiment,
    fault_overhead_experiment,
    icache_experiment,
    jacobi_access_experiment,
    migration_experiment,
    startup_experiment,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "JobSpec",
    "add_result_hook",
    "app_names",
    "build_app_source",
    "build_job",
    "code_version",
    "register_app",
    "remove_result_hook",
    "run_spec",
    "run_spec_job",
    "CapabilityRow",
    "probe_method",
    "capability_table",
    "startup_experiment",
    "FaultRow",
    "fault_overhead_experiment",
    "context_switch_experiment",
    "jacobi_access_experiment",
    "migration_experiment",
    "icache_experiment",
    "adcirc_scaling_experiment",
]
