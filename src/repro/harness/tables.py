"""Plain-text and markdown table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Sequence


def _cell(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Fixed-width table with a box, like the paper's result tables."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(
        "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) + "|"
    )
    out.append(sep)
    for r in cells:
        out.append(
            "|" + "|".join(f" {v:<{w}} " for v, w in zip(r, widths)) + "|"
        )
    out.append(sep)
    return "\n".join(out)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    cells = [[_cell(v) for v in row] for row in rows]
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for r in cells:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)
